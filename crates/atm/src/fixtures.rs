//! The paper's running examples, shared by tests, benchmarks and
//! examples.
//!
//! * [`figure3_spec`] — the flexible transaction of Figure 3: a travel
//!   style scenario over eight subtransactions on three autonomous
//!   databases, with compensatable `{T1, T5, T6}`, pivot
//!   `{T2, T4, T8}`, retriable `{T3, T7}` and the preference-ordered
//!   paths `p1 = T1 T2 T4 T5 T6 T8`, `p2 = T1 T2 T4 T7`,
//!   `p3 = T1 T2 T3`.
//! * [`linear_saga`] — a parameterised linear saga of `n` steps, each
//!   writing a marker record on its own database.
//! * `register_*_programs` — install the forward and compensation
//!   programs the fixtures reference into a registry, wiring each to
//!   the failure injector under its own step name (so tests can
//!   script aborts like `injector.set_plan("T4", FailurePlan::Always)`).

use crate::flexible::{FlexSpec, FlexStep};
use crate::saga::SagaSpec;
use crate::spec::StepSpec;
use std::sync::Arc;
use txn_substrate::{KvProgram, MultiDatabase, ProgramRegistry, Value};

/// Step names of the Figure 3 transaction, in numeric order.
pub const FIGURE3_STEPS: [&str; 8] = ["T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"];

/// The flexible transaction of Figure 3.
pub fn figure3_spec() -> FlexSpec {
    FlexSpec::new(
        "figure3",
        vec![
            FlexStep::compensatable("T1", "prog_T1", "comp_T1"),
            FlexStep::pivot("T2", "prog_T2"),
            FlexStep::retriable("T3", "prog_T3"),
            FlexStep::pivot("T4", "prog_T4"),
            FlexStep::compensatable("T5", "prog_T5", "comp_T5"),
            FlexStep::compensatable("T6", "prog_T6", "comp_T6"),
            FlexStep::retriable("T7", "prog_T7"),
            FlexStep::pivot("T8", "prog_T8"),
        ],
        vec![
            vec!["T1", "T2", "T4", "T5", "T6", "T8"],
            vec!["T1", "T2", "T4", "T7"],
            vec!["T1", "T2", "T3"],
        ],
    )
}

/// Registers the Figure 3 programs: `prog_Ti` writes `Ti = 1` (and
/// `comp_Ti` writes `Ti = -1`) on a database chosen round-robin from
/// the federation members `site_a`, `site_b`, `site_c`, which are
/// created if absent. Each forward program consults the injector under
/// the label `Ti`, compensations under `comp_Ti`.
pub fn register_figure3_programs(fed: &Arc<MultiDatabase>, registry: &ProgramRegistry) {
    for site in ["site_a", "site_b", "site_c"] {
        if fed.db(site).is_none() {
            fed.add_database(site);
        }
    }
    for (i, name) in FIGURE3_STEPS.iter().enumerate() {
        let site = ["site_a", "site_b", "site_c"][i % 3];
        registry.register(Arc::new(
            KvProgram::write(&format!("prog_{name}"), site, name, 1i64).with_label(name),
        ));
        registry.register(Arc::new(KvProgram::write(
            &format!("comp_{name}"),
            site,
            name,
            Value::Int(-1),
        )));
    }
}

/// A linear saga of `n` compensatable steps `S1 … Sn`; step `Si` runs
/// program `do_Si` (writing `Si = 1` on database `saga_db`) with
/// compensation `undo_Si` (writing `Si = -1`).
pub fn linear_saga(name: &str, n: usize) -> SagaSpec {
    SagaSpec::linear(
        name,
        (1..=n)
            .map(|i| {
                StepSpec::compensatable(
                    &format!("S{i}"),
                    &format!("do_S{i}"),
                    &format!("undo_S{i}"),
                )
            })
            .collect(),
    )
}

/// Registers the programs for [`linear_saga`] (forward programs
/// consult the injector under the step name `Si`; compensations under
/// `undo_Si`). Creates the database `saga_db` if absent.
pub fn register_saga_programs(fed: &Arc<MultiDatabase>, registry: &ProgramRegistry, n: usize) {
    if fed.db("saga_db").is_none() {
        fed.add_database("saga_db");
    }
    for i in 1..=n {
        let step = format!("S{i}");
        registry.register(Arc::new(
            KvProgram::write(&format!("do_S{i}"), "saga_db", &step, 1i64).with_label(&step),
        ));
        registry.register(Arc::new(KvProgram::write(
            &format!("undo_S{i}"),
            "saga_db",
            &step,
            Value::Int(-1),
        )));
    }
}

/// Reads the marker value a fixture program wrote (`1` committed,
/// `-1` compensated, `None` never ran) from whichever site holds it.
pub fn marker(fed: &Arc<MultiDatabase>, key: &str) -> Option<i64> {
    for site in fed.names() {
        if let Some(v) = fed.db(&site).and_then(|db| db.peek(key)) {
            return v.as_int();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_substrate::{FailurePlan, ProgramContext};

    #[test]
    fn figure3_shape_matches_paper() {
        let spec = figure3_spec();
        assert_eq!(spec.steps.len(), 8);
        assert_eq!(spec.paths.len(), 3);
        assert!(spec.class_of("T1").is_compensatable());
        assert!(spec.class_of("T2").is_pivot());
        assert!(spec.class_of("T3").is_retriable());
        assert!(spec.class_of("T4").is_pivot());
        assert!(spec.class_of("T5").is_compensatable());
        assert!(spec.class_of("T6").is_compensatable());
        assert!(spec.class_of("T7").is_retriable());
        assert!(spec.class_of("T8").is_pivot());
    }

    #[test]
    fn figure3_programs_run_and_respect_injection() {
        let fed = MultiDatabase::new(0);
        let registry = ProgramRegistry::new();
        register_figure3_programs(&fed, &registry);
        let mut ctx = ProgramContext::new(Arc::clone(&fed));
        assert!(registry.invoke("prog_T1", &mut ctx).is_committed());
        assert_eq!(marker(&fed, "T1"), Some(1));
        // Injection under the step name.
        fed.injector().set_plan("T2", FailurePlan::Always);
        assert!(!registry.invoke("prog_T2", &mut ctx).is_committed());
        assert_eq!(marker(&fed, "T2"), None);
        // Compensation flips the marker.
        assert!(registry.invoke("comp_T1", &mut ctx).is_committed());
        assert_eq!(marker(&fed, "T1"), Some(-1));
    }

    #[test]
    fn saga_fixture_registers_all_programs() {
        let fed = MultiDatabase::new(0);
        let registry = ProgramRegistry::new();
        register_saga_programs(&fed, &registry, 3);
        for i in 1..=3 {
            assert!(registry.contains(&format!("do_S{i}")));
            assert!(registry.contains(&format!("undo_S{i}")));
        }
        let spec = linear_saga("s", 3);
        assert_eq!(spec.len(), 3);
        assert!(spec.is_linear());
    }
}
