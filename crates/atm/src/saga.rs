//! Saga specifications (§4.1).
//!
//! A linear saga `T1; T2; …; Tn` with compensations `C1 … Cn`
//! guarantees (García-Molina & Salem, as quoted by the paper): either
//! `T1, T2, …, Tn` executes, or `T1, …, Tj; Cj, …, C2, C1` for some
//! `0 ≤ j < n`.
//!
//! The parallel generalisation groups steps into *stages*: steps in
//! one stage are independent and may run concurrently; stages run in
//! order. A linear saga is the special case of singleton stages.

use crate::spec::{SpecError, StepSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A saga: ordered stages of compensatable subtransactions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SagaSpec {
    /// Saga name.
    pub name: String,
    /// Stages in execution order; steps within a stage are
    /// independent.
    pub stages: Vec<Vec<StepSpec>>,
}

impl SagaSpec {
    /// A linear saga (one step per stage).
    pub fn linear(name: &str, steps: Vec<StepSpec>) -> Self {
        Self {
            name: name.to_owned(),
            stages: steps.into_iter().map(|s| vec![s]).collect(),
        }
    }

    /// A parallel saga with explicit stages.
    pub fn staged(name: &str, stages: Vec<Vec<StepSpec>>) -> Self {
        Self {
            name: name.to_owned(),
            stages,
        }
    }

    /// All steps in stage order (stage-internal order preserved).
    pub fn steps(&self) -> impl Iterator<Item = &StepSpec> {
        self.stages.iter().flatten()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// True if the saga has no steps.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if every stage has exactly one step.
    pub fn is_linear(&self) -> bool {
        self.stages.iter().all(|s| s.len() == 1)
    }

    /// Looks up a step by name.
    pub fn step(&self, name: &str) -> Option<&StepSpec> {
        self.steps().find(|s| s.name == name)
    }

    /// Structural errors: duplicate step names.
    pub fn structural_errors(&self) -> Vec<SpecError> {
        let mut seen = BTreeSet::new();
        let mut errors = Vec::new();
        for s in self.steps() {
            if !seen.insert(s.name.clone()) {
                errors.push(SpecError::DuplicateStep(s.name.clone()));
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three() -> SagaSpec {
        SagaSpec::linear(
            "book-trip",
            vec![
                StepSpec::compensatable("T1", "book_flight", "cancel_flight"),
                StepSpec::compensatable("T2", "book_hotel", "cancel_hotel"),
                StepSpec::compensatable("T3", "book_car", "cancel_car"),
            ],
        )
    }

    #[test]
    fn linear_shape() {
        let s = three();
        assert_eq!(s.len(), 3);
        assert!(s.is_linear());
        assert!(!s.is_empty());
        assert_eq!(
            s.steps().map(|x| x.name.as_str()).collect::<Vec<_>>(),
            vec!["T1", "T2", "T3"]
        );
        assert_eq!(s.step("T2").unwrap().program, "book_hotel");
        assert!(s.step("T9").is_none());
    }

    #[test]
    fn staged_is_not_linear() {
        let s = SagaSpec::staged(
            "par",
            vec![
                vec![StepSpec::compensatable("A", "pa", "ca")],
                vec![
                    StepSpec::compensatable("B1", "pb1", "cb1"),
                    StepSpec::compensatable("B2", "pb2", "cb2"),
                ],
            ],
        );
        assert!(!s.is_linear());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn duplicate_names_detected() {
        let s = SagaSpec::linear(
            "dup",
            vec![
                StepSpec::compensatable("T1", "p", "c"),
                StepSpec::compensatable("T1", "q", "d"),
            ],
        );
        assert_eq!(
            s.structural_errors(),
            vec![SpecError::DuplicateStep("T1".into())]
        );
    }
}
