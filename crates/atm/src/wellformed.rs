//! Well-formedness rules for the transaction models.
//!
//! §4.2 of the paper summarises the Mehrotra et al. / Zhang et al.
//! conditions and then notes the full rules "are beyond the scope of
//! this paper". This module implements the checkable core the paper
//! does state, documented rule by rule:
//!
//! **Sagas** (§4.1):
//! * S1 — every subtransaction has a compensating transaction.
//! * S2 — step names are unique; the saga is non-empty.
//!
//! **Flexible transactions** (§4.2):
//! * F1 — structural sanity (steps exist, no duplicates, at least one
//!   non-empty path).
//! * F2 — class/compensation consistency: compensatable steps declare
//!   a compensation program; non-compensatable steps do not.
//! * F3 — *"the path between any two pivot subtransactions must
//!   contain only compensatable transactions"* (verbatim from the
//!   paper; retriable steps never abort so they are also admissible).
//! * F4 — guaranteed completion of the **last** path: after its last
//!   pivot (or from its start when it has no pivot and the whole
//!   transaction may still need to commit past an earlier pivot),
//!   every step is retriable — the paper's "if nothing else works, T3
//!   can be retried until it commits".
//! * F5 — a way out of every abandoned suffix: when path *k* fails and
//!   execution switches to path *k+1*, the steps of *k* beyond the
//!   common prefix that may already have committed (i.e. all but the
//!   failing one) must be compensatable, otherwise the switch cannot
//!   undo them. Retriable steps never abort and are exempt as failure
//!   points but must still be compensatable if they can *precede* the
//!   failure point.
//!
//! F5 is the pragmatic closure of the paper's "a pivot subtransaction
//! must always be associated with a way out"; the Figure 3 example
//! passes all five rules, and the mutation tests below show each rule
//! rejecting a minimally broken variant.

use crate::flexible::FlexSpec;
use crate::saga::SagaSpec;
use crate::spec::SpecError;
use std::fmt;

/// One well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WellFormedError {
    /// Structural problem (duplicate/unknown steps, empty spec).
    Structure(String),
    /// S1: a saga step lacks a compensation.
    SagaStepNotCompensatable { step: String },
    /// F2: class and compensation declaration disagree.
    CompensationMismatch { step: String, has: bool },
    /// F3: a non-compensatable, non-retriable step sits between two
    /// pivots (or before the first pivot) of a path.
    NonCompensatableBetweenPivots { path: usize, step: String },
    /// F4: the least-preferred path cannot guarantee completion.
    LastPathNotGuaranteed { step: String },
    /// F5: switching away from a path would strand a committed,
    /// non-compensatable step.
    NoWayOut { path: usize, step: String },
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormedError::Structure(s) => write!(f, "structural error: {s}"),
            WellFormedError::SagaStepNotCompensatable { step } => {
                write!(f, "saga step {step:?} has no compensating transaction")
            }
            WellFormedError::CompensationMismatch { step, has } => {
                if *has {
                    write!(f, "step {step:?} declares a compensation but is not compensatable")
                } else {
                    write!(f, "compensatable step {step:?} declares no compensation")
                }
            }
            WellFormedError::NonCompensatableBetweenPivots { path, step } => write!(
                f,
                "path {path}: step {step:?} between pivots is neither compensatable nor retriable"
            ),
            WellFormedError::LastPathNotGuaranteed { step } => write!(
                f,
                "last path cannot guarantee completion: step {step:?} after its last pivot is not retriable"
            ),
            WellFormedError::NoWayOut { path, step } => write!(
                f,
                "path {path}: abandoning it may strand committed non-compensatable step {step:?}"
            ),
        }
    }
}

impl std::error::Error for WellFormedError {}

impl From<SpecError> for WellFormedError {
    fn from(e: SpecError) -> Self {
        WellFormedError::Structure(e.to_string())
    }
}

/// Checks a saga (rules S1–S2). Returns all violations.
pub fn check_saga(spec: &SagaSpec) -> Vec<WellFormedError> {
    let mut errors: Vec<WellFormedError> = spec
        .structural_errors()
        .into_iter()
        .map(Into::into)
        .collect();
    if spec.is_empty() {
        errors.push(WellFormedError::Structure("saga has no steps".into()));
    }
    for step in spec.steps() {
        if !step.class.is_compensatable() || step.compensation.is_none() {
            errors.push(WellFormedError::SagaStepNotCompensatable {
                step: step.name.clone(),
            });
        }
    }
    errors
}

/// Checks a flexible transaction (rules F1–F5). Returns all
/// violations.
pub fn check_flex(spec: &FlexSpec) -> Vec<WellFormedError> {
    let mut errors: Vec<WellFormedError> = spec
        .structural_errors()
        .into_iter()
        .map(Into::into)
        .collect();
    // F1 continued: at least one non-empty path.
    if spec.paths.is_empty() || spec.paths.iter().any(Vec::is_empty) {
        errors.push(WellFormedError::Structure(
            "a flexible transaction needs at least one non-empty path".into(),
        ));
    }
    if !errors.is_empty() {
        // Later rules dereference step names; stop at structure errors.
        return errors;
    }

    // F2: compensation declarations match classes.
    for s in &spec.steps {
        let declared = s.compensation.is_some();
        if s.class.is_compensatable() != declared {
            errors.push(WellFormedError::CompensationMismatch {
                step: s.name.clone(),
                has: declared,
            });
        }
    }

    // F3: between pivots (and before the first pivot), only
    // compensatable or retriable steps.
    for (pi, path) in spec.paths.iter().enumerate() {
        let last_pivot = path.iter().rposition(|n| spec.class_of(n).is_pivot());
        for (i, name) in path.iter().enumerate() {
            let class = spec.class_of(name);
            if class.is_pivot() {
                continue;
            }
            let before_last_pivot = last_pivot.map(|lp| i < lp).unwrap_or(false);
            if before_last_pivot && !class.is_compensatable() && !class.is_retriable() {
                errors.push(WellFormedError::NonCompensatableBetweenPivots {
                    path: pi,
                    step: name.clone(),
                });
            }
        }
    }

    // F4: the last path guarantees completion. Once its FIRST pivot
    // commits, the transaction is committed to committing — there is
    // no later alternative and nothing after a pivot can be rolled
    // back — so every step after the first pivot must be retriable.
    // With no pivot at all, the whole path may still be backed out, so
    // steps need only be retriable or compensatable.
    if let Some(last) = spec.paths.last() {
        let first_pivot = last.iter().position(|n| spec.class_of(n).is_pivot());
        let start = first_pivot.map(|p| p + 1).unwrap_or(0);
        for name in &last[start..] {
            let class = spec.class_of(name);
            let guaranteed = if first_pivot.is_some() {
                class.is_retriable()
            } else {
                class.is_retriable() || class.is_compensatable()
            };
            if !guaranteed {
                errors.push(WellFormedError::LastPathNotGuaranteed { step: name.clone() });
            }
        }
    }

    // F5: when path k is abandoned for path k+1, execution backs out
    // of k's suffix beyond the common prefix. The step that *caused*
    // the switch aborted (never committed), and retriable steps never
    // abort, so the possible failure points are exactly the suffix's
    // non-retriable steps. For every such failure point, everything
    // committed before it within the suffix must be compensatable —
    // the paper's "a pivot subtransaction must always be associated
    // with a way out".
    for k in 0..spec.paths.len().saturating_sub(1) {
        let cur = &spec.paths[k];
        let next = &spec.paths[k + 1];
        let prefix = FlexSpec::common_prefix_len(cur, next);
        let suffix = &cur[prefix..];
        for (i, failure_point) in suffix.iter().enumerate() {
            if spec.class_of(failure_point).is_retriable() {
                continue; // never aborts
            }
            for name in &suffix[..i] {
                let class = spec.class_of(name);
                // Retriable-only steps committed before the failure
                // point also need undoing; only compensatable ones can
                // be backed out.
                if !class.is_compensatable() {
                    let err = WellFormedError::NoWayOut {
                        path: k,
                        step: name.clone(),
                    };
                    if !errors.contains(&err) {
                        errors.push(err);
                    }
                }
            }
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::spec::StepSpec;

    #[test]
    fn figure3_is_well_formed() {
        assert_eq!(check_flex(&fixtures::figure3_spec()), vec![]);
    }

    #[test]
    fn linear_saga_is_well_formed() {
        assert_eq!(check_saga(&fixtures::linear_saga("s", 4)), vec![]);
    }

    #[test]
    fn saga_without_compensation_rejected() {
        let spec = SagaSpec::linear(
            "bad",
            vec![
                StepSpec::compensatable("T1", "p1", "c1"),
                StepSpec::pivot("T2", "p2"),
            ],
        );
        let errs = check_saga(&spec);
        assert!(errs.iter().any(
            |e| matches!(e, WellFormedError::SagaStepNotCompensatable { step } if step == "T2")
        ));
    }

    #[test]
    fn empty_saga_rejected() {
        let errs = check_saga(&SagaSpec::linear("empty", vec![]));
        assert!(errs
            .iter()
            .any(|e| matches!(e, WellFormedError::Structure(_))));
    }

    #[test]
    fn f2_compensation_mismatch() {
        let mut spec = fixtures::figure3_spec();
        // T2 is a pivot; give it a compensation anyway.
        spec.steps
            .iter_mut()
            .find(|s| s.name == "T2")
            .unwrap()
            .compensation = Some("c2".into());
        assert!(check_flex(&spec).iter().any(
            |e| matches!(e, WellFormedError::CompensationMismatch { step, has: true } if step == "T2")
        ));
        // And strip a compensatable step's compensation.
        let mut spec2 = fixtures::figure3_spec();
        spec2
            .steps
            .iter_mut()
            .find(|s| s.name == "T1")
            .unwrap()
            .compensation = None;
        assert!(check_flex(&spec2).iter().any(
            |e| matches!(e, WellFormedError::CompensationMismatch { step, has: false } if step == "T1")
        ));
    }

    #[test]
    fn f3_pivot_between_pivots_needs_compensatable() {
        // Make T5 (between pivots T4 and T8 on path 0) a pivot — the
        // path then has a non-compensatable step between pivots.
        let mut spec = fixtures::figure3_spec();
        let t5 = spec.steps.iter_mut().find(|s| s.name == "T5").unwrap();
        t5.class = txn_substrate::StepClass::Pivot;
        t5.compensation = None;
        let errs = check_flex(&spec);
        // T5 itself is a pivot now, exempt from F3; but T6 between the
        // pivots T5 and T8 is fine (compensatable)… instead the F5
        // rule fires: abandoning path 0 can strand committed T5.
        assert!(errs
            .iter()
            .any(|e| matches!(e, WellFormedError::NoWayOut { step, .. } if step == "T5")));
    }

    #[test]
    fn f4_last_path_must_be_retriable_after_pivot() {
        // Replace retriable T3 with a pivot in the last path: no
        // guarantee of completion remains.
        let mut spec = fixtures::figure3_spec();
        let t3 = spec.steps.iter_mut().find(|s| s.name == "T3").unwrap();
        t3.class = txn_substrate::StepClass::Compensatable;
        t3.compensation = Some("c3".into());
        let errs = check_flex(&spec);
        assert!(errs
            .iter()
            .any(|e| matches!(e, WellFormedError::LastPathNotGuaranteed { step } if step == "T3")));
    }

    #[test]
    fn f4_pivot_after_pivot_in_last_path_rejected() {
        // A pivot as the last step of the last path, after an earlier
        // pivot: once T2 commits the transaction must commit, but a
        // failing final pivot leaves no retriable way forward and no
        // way back — caught by anchoring F4 at the *first* pivot.
        let mut spec = fixtures::figure3_spec();
        let t3 = spec.steps.iter_mut().find(|s| s.name == "T3").unwrap();
        t3.class = txn_substrate::StepClass::Pivot;
        t3.compensation = None;
        let errs = check_flex(&spec);
        assert!(errs
            .iter()
            .any(|e| matches!(e, WellFormedError::LastPathNotGuaranteed { step } if step == "T3")));
    }

    #[test]
    fn f5_non_compensatable_in_abandoned_suffix() {
        // Path 0 suffix beyond the common prefix with path 1 is
        // [T5, T6, T8]; make T6 non-compensatable: T6 may commit and
        // then T8's abort has no way out.
        let mut spec = fixtures::figure3_spec();
        let t6 = spec.steps.iter_mut().find(|s| s.name == "T6").unwrap();
        t6.class = txn_substrate::StepClass::Pivot;
        t6.compensation = None;
        let errs = check_flex(&spec);
        assert!(errs
            .iter()
            .any(|e| matches!(e, WellFormedError::NoWayOut { path: 0, step } if step == "T6")));
    }

    #[test]
    fn structure_errors_short_circuit() {
        let spec = FlexSpec::new(
            "broken",
            vec![StepSpec::pivot("T1", "p1")],
            vec![vec!["T1", "Ghost"]],
        );
        let errs = check_flex(&spec);
        assert!(errs
            .iter()
            .all(|e| matches!(e, WellFormedError::Structure(_))));
    }

    #[test]
    fn empty_paths_rejected() {
        let spec = FlexSpec::new("np", vec![StepSpec::pivot("T1", "p1")], vec![]);
        assert!(!check_flex(&spec).is_empty());
        let spec2 = FlexSpec::new("ep", vec![StepSpec::pivot("T1", "p1")], vec![vec![]]);
        assert!(!check_flex(&spec2).is_empty());
    }
}
