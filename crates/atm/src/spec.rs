//! Shared specification vocabulary for the transaction models.

use serde::{Deserialize, Serialize};
use txn_substrate::StepClass;

/// One subtransaction in a saga or flexible transaction.
///
/// A step names a *forward* program and, when compensatable, a
/// *compensation* program; both must be registered in the
/// [`txn_substrate::ProgramRegistry`] the executor (or workflow
/// engine) runs against — mirroring FlowMark, where activities can
/// only invoke registered programs (§3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepSpec {
    /// Step name, unique within the specification (e.g. `"T1"`).
    pub name: String,
    /// Registered forward program.
    pub program: String,
    /// Registered compensation program (required iff the class is
    /// compensatable).
    pub compensation: Option<String>,
    /// Subtransaction class.
    pub class: StepClass,
}

impl StepSpec {
    /// A compensatable step.
    pub fn compensatable(name: &str, program: &str, compensation: &str) -> Self {
        Self {
            name: name.to_owned(),
            program: program.to_owned(),
            compensation: Some(compensation.to_owned()),
            class: StepClass::Compensatable,
        }
    }

    /// A retriable step.
    pub fn retriable(name: &str, program: &str) -> Self {
        Self {
            name: name.to_owned(),
            program: program.to_owned(),
            compensation: None,
            class: StepClass::Retriable,
        }
    }

    /// A step that is both compensatable and retriable.
    pub fn compensatable_retriable(name: &str, program: &str, compensation: &str) -> Self {
        Self {
            name: name.to_owned(),
            program: program.to_owned(),
            compensation: Some(compensation.to_owned()),
            class: StepClass::CompensatableRetriable,
        }
    }

    /// A pivot step.
    pub fn pivot(name: &str, program: &str) -> Self {
        Self {
            name: name.to_owned(),
            program: program.to_owned(),
            compensation: None,
            class: StepClass::Pivot,
        }
    }
}

/// Errors building or referencing specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A path or order constraint references an unknown step.
    UnknownStep(String),
    /// Two steps share a name.
    DuplicateStep(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownStep(s) => write!(f, "unknown step {s:?}"),
            SpecError::DuplicateStep(s) => write!(f, "duplicate step {s:?}"),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_classes() {
        let c = StepSpec::compensatable("T1", "p1", "c1");
        assert!(c.class.is_compensatable());
        assert_eq!(c.compensation.as_deref(), Some("c1"));

        let r = StepSpec::retriable("T3", "p3");
        assert!(r.class.is_retriable());
        assert!(r.compensation.is_none());

        let cr = StepSpec::compensatable_retriable("T6", "p6", "c6");
        assert!(cr.class.is_compensatable() && cr.class.is_retriable());

        let p = StepSpec::pivot("T2", "p2");
        assert!(p.class.is_pivot());
    }

    #[test]
    fn serde_round_trip() {
        let s = StepSpec::compensatable("T1", "p1", "c1");
        let json = serde_json::to_string(&s).unwrap();
        let back: StepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
