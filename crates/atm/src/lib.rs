//! # atm — advanced transaction models
//!
//! The transaction models §4 of the reproduced paper implements on a
//! workflow system, here in their original, *native* form:
//!
//! * [`SagaSpec`] — linear sagas (García-Molina & Salem) and the
//!   parallel generalisation (steps grouped in stages): a long-lived
//!   transaction split into ACID subtransactions, each paired with a
//!   compensating transaction; either all execute, or the committed
//!   prefix is compensated in reverse order.
//! * [`FlexSpec`] — flexible transactions (multidatabase model of
//!   Elmagarmid et al. / Zhang et al.): alternative execution paths in
//!   preference order over subtransactions classified *compensatable*,
//!   *retriable* or *pivot*, with the well-formedness rules of §4.2.
//! * [`wellformed`] — the static checks ("only compensatable steps
//!   between pivots, a guaranteed way out after every pivot").
//! * [`native`] — reference executors that run the models *directly*
//!   against the transactional substrate. These are the baselines the
//!   benchmarks compare the workflow-hosted translations against, and
//!   the oracles the equivalence tests check Exotica translations
//!   with.
//! * [`fixtures`] — the paper's running examples (the Figure 3
//!   flexible transaction, parameterised linear sagas) with their
//!   program sets, shared by tests, benchmarks and examples.

pub mod fixtures;
pub mod flexible;
pub mod native;
pub mod saga;
pub mod spec;
pub mod wellformed;

pub use flexible::{FlexSpec, FlexStep};
pub use native::flex_exec::{FlexExecutor, FlexOutcome, FlexResult};
pub use native::saga_exec::{SagaExecutor, SagaOutcome, SagaResult};
pub use native::trace::{AtmEvent, AtmTrace};
pub use native::twopc::{GlobalTxn, SiteWrites, TwoPcExecutor, TwoPcOutcome, TwoPcResult};
pub use saga::SagaSpec;
pub use spec::{SpecError, StepSpec};
pub use wellformed::{check_flex, check_saga, WellFormedError};
