//! Native executors — the transaction models run *directly* against
//! the substrate, with no workflow engine involved.
//!
//! These are the baselines of the paper's argument: §4 shows the same
//! guarantees can be obtained by compiling the models onto a WFMS.
//! The equivalence tests execute both (native executor vs translated
//! workflow process) under identical failure scripts and compare the
//! final database state and compensation order.

pub mod flex_exec;
pub mod saga_exec;
pub mod trace;
pub mod twopc;
