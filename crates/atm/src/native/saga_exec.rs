//! The native saga executor (§4.1).
//!
//! Provides the García-Molina/Salem guarantee directly: either every
//! subtransaction commits, or the committed prefix is compensated in
//! reverse order. Compensations are treated as retriable ("in general
//! considered retrievable, in the sense that the compensation must be
//! executed", appendix) and retried up to a configurable bound.

use crate::native::trace::{AtmEvent, AtmTrace};
use crate::saga::SagaSpec;
use crate::wellformed::{check_saga, WellFormedError};
use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramContext, ProgramRegistry};

/// Outcome of a saga execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SagaOutcome {
    /// Every subtransaction committed.
    Committed,
    /// The saga aborted at `abort_step` and the committed prefix was
    /// compensated in reverse order.
    RolledBack {
        /// The step whose failure aborted the saga.
        abort_step: String,
    },
    /// A compensation kept failing past the retry bound — the saga
    /// guarantee is broken and an operator must intervene. (With
    /// retriable compensations, as the model assumes, this cannot
    /// happen.)
    CompensationStuck {
        /// The compensation that exceeded its retries.
        step: String,
    },
}

/// Result of a saga execution: outcome plus full trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SagaResult {
    /// What happened.
    pub outcome: SagaOutcome,
    /// Ordered trace of commits, aborts and compensations.
    pub trace: AtmTrace,
}

impl SagaResult {
    /// True if the saga committed in full.
    pub fn is_committed(&self) -> bool {
        self.outcome == SagaOutcome::Committed
    }
}

/// The native saga executor.
pub struct SagaExecutor {
    multidb: Arc<MultiDatabase>,
    registry: Arc<ProgramRegistry>,
    /// Retry bound per compensation (defence against broken
    /// compensation programs; the model itself assumes ∞).
    pub max_compensation_retries: u32,
}

impl SagaExecutor {
    /// Builds an executor over `multidb` and `registry`.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use txn_substrate::{FailurePlan, MultiDatabase, ProgramRegistry};
    /// use atm::{fixtures, SagaExecutor, SagaOutcome};
    ///
    /// let fed = MultiDatabase::new(0);
    /// let registry = Arc::new(ProgramRegistry::new());
    /// fixtures::register_saga_programs(&fed, &registry, 3);
    /// fed.injector().set_plan("S3", FailurePlan::Always);
    ///
    /// let exec = SagaExecutor::new(Arc::clone(&fed), registry);
    /// let result = exec.run(&fixtures::linear_saga("s", 3)).unwrap();
    /// assert_eq!(result.outcome, SagaOutcome::RolledBack { abort_step: "S3".into() });
    /// // T1, T2 committed then were compensated, in reverse order.
    /// assert_eq!(result.trace.compensated(), vec!["S2", "S1"]);
    /// ```
    pub fn new(multidb: Arc<MultiDatabase>, registry: Arc<ProgramRegistry>) -> Self {
        Self {
            multidb,
            registry,
            max_compensation_retries: 1_000,
        }
    }

    /// Runs `spec`. Stage steps execute sequentially in declaration
    /// order (the workflow comparison point is the flow structure, not
    /// intra-stage parallelism); a stage fails if any of its steps
    /// aborts, in which case the steps already committed — including
    /// earlier steps of the failing stage — are compensated in reverse
    /// commit order.
    ///
    /// Returns `Err` if the spec is not a well-formed saga.
    pub fn run(&self, spec: &SagaSpec) -> Result<SagaResult, Vec<WellFormedError>> {
        let errors = check_saga(spec);
        if !errors.is_empty() {
            return Err(errors);
        }
        let mut trace = AtmTrace::default();
        let mut committed: Vec<&crate::spec::StepSpec> = Vec::new();

        for stage in &spec.stages {
            let mut stage_failed = None;
            for step in stage {
                let mut ctx = ProgramContext::new(Arc::clone(&self.multidb));
                let outcome = self.registry.invoke(&step.program, &mut ctx);
                if outcome.is_committed() {
                    trace.push(AtmEvent::Committed(step.name.clone()));
                    committed.push(step);
                } else {
                    trace.push(AtmEvent::Aborted(step.name.clone(), 0));
                    stage_failed = Some(step.name.clone());
                    break;
                }
            }
            if let Some(abort_step) = stage_failed {
                // Compensate the committed prefix in reverse order —
                // T1 … Tj ; Cj … C1.
                for step in committed.iter().rev() {
                    let comp = step
                        .compensation
                        .as_deref()
                        .expect("well-formed saga steps have compensations");
                    let mut attempt = 0;
                    loop {
                        let mut ctx = ProgramContext::new(Arc::clone(&self.multidb));
                        ctx.attempt = attempt;
                        if self.registry.invoke(comp, &mut ctx).is_committed() {
                            trace.push(AtmEvent::Compensated(step.name.clone()));
                            break;
                        }
                        attempt += 1;
                        trace.push(AtmEvent::CompensationRetried(step.name.clone(), attempt));
                        if attempt > self.max_compensation_retries {
                            return Ok(SagaResult {
                                outcome: SagaOutcome::CompensationStuck {
                                    step: step.name.clone(),
                                },
                                trace,
                            });
                        }
                    }
                }
                return Ok(SagaResult {
                    outcome: SagaOutcome::RolledBack { abort_step },
                    trace,
                });
            }
        }
        Ok(SagaResult {
            outcome: SagaOutcome::Committed,
            trace,
        })
    }

    /// Parallel-saga execution (the generalisation of
    /// García-Molina et al. the paper cites alongside linear sagas):
    /// the steps of each stage run **concurrently** on their own
    /// threads against the autonomous local databases; the stage
    /// commits when every member committed. If any member aborts, all
    /// committed steps — from this and earlier stages — are
    /// compensated in reverse commit order.
    ///
    /// Trace ordering within a stage follows commit completion order
    /// (and is therefore non-deterministic across runs); compensation
    /// order is the reverse of that observed order, preserving the
    /// saga guarantee.
    pub fn run_parallel(&self, spec: &SagaSpec) -> Result<SagaResult, Vec<WellFormedError>> {
        let errors = check_saga(spec);
        if !errors.is_empty() {
            return Err(errors);
        }
        let mut trace = AtmTrace::default();
        let mut committed: Vec<&crate::spec::StepSpec> = Vec::new();

        for stage in &spec.stages {
            // Run all stage members concurrently; collect outcomes in
            // completion order.
            let (tx, rx) = crossbeam::channel::unbounded();
            std::thread::scope(|s| {
                for step in stage {
                    let tx = tx.clone();
                    let multidb = Arc::clone(&self.multidb);
                    let registry = Arc::clone(&self.registry);
                    s.spawn(move || {
                        let mut ctx = ProgramContext::new(multidb);
                        let outcome = registry.invoke(&step.program, &mut ctx);
                        let _ = tx.send((step, outcome.is_committed()));
                    });
                }
            });
            drop(tx);
            let mut failed = None;
            for (step, ok) in rx.iter() {
                if ok {
                    trace.push(AtmEvent::Committed(step.name.clone()));
                    committed.push(step);
                } else {
                    trace.push(AtmEvent::Aborted(step.name.clone(), 0));
                    failed.get_or_insert(step.name.clone());
                }
            }
            if let Some(abort_step) = failed {
                for step in committed.iter().rev() {
                    if let Err(stuck) = self.compensate_step(step, &mut trace) {
                        return Ok(SagaResult {
                            outcome: SagaOutcome::CompensationStuck { step: stuck },
                            trace,
                        });
                    }
                }
                return Ok(SagaResult {
                    outcome: SagaOutcome::RolledBack { abort_step },
                    trace,
                });
            }
        }
        Ok(SagaResult {
            outcome: SagaOutcome::Committed,
            trace,
        })
    }

    /// Runs one compensation to commit (retrying up to the bound).
    fn compensate_step(
        &self,
        step: &crate::spec::StepSpec,
        trace: &mut AtmTrace,
    ) -> Result<(), String> {
        let comp = step
            .compensation
            .as_deref()
            .expect("well-formed saga steps have compensations");
        let mut attempt = 0;
        loop {
            let mut ctx = ProgramContext::new(Arc::clone(&self.multidb));
            ctx.attempt = attempt;
            if self.registry.invoke(comp, &mut ctx).is_committed() {
                trace.push(AtmEvent::Compensated(step.name.clone()));
                return Ok(());
            }
            attempt += 1;
            trace.push(AtmEvent::CompensationRetried(step.name.clone(), attempt));
            if attempt > self.max_compensation_retries {
                return Err(step.name.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use txn_substrate::{on_attempts, FailurePlan};

    fn rig(n: usize) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
        let fed = MultiDatabase::new(0);
        let registry = Arc::new(ProgramRegistry::new());
        fixtures::register_saga_programs(&fed, &registry, n);
        (fed, registry)
    }

    #[test]
    fn all_commit_when_nothing_fails() {
        let (fed, registry) = rig(4);
        let exec = SagaExecutor::new(Arc::clone(&fed), registry);
        let res = exec.run(&fixtures::linear_saga("s", 4)).unwrap();
        assert!(res.is_committed());
        assert_eq!(res.trace.committed(), vec!["S1", "S2", "S3", "S4"]);
        assert!(res.trace.compensated().is_empty());
        for i in 1..=4 {
            assert_eq!(fixtures::marker(&fed, &format!("S{i}")), Some(1));
        }
    }

    #[test]
    fn abort_at_j_compensates_reverse_prefix() {
        let (fed, registry) = rig(5);
        fed.injector().set_plan("S4", FailurePlan::Always);
        let exec = SagaExecutor::new(Arc::clone(&fed), registry);
        let res = exec.run(&fixtures::linear_saga("s", 5)).unwrap();
        assert_eq!(
            res.outcome,
            SagaOutcome::RolledBack {
                abort_step: "S4".into()
            }
        );
        assert_eq!(res.trace.committed(), vec!["S1", "S2", "S3"]);
        assert_eq!(res.trace.compensated(), vec!["S3", "S2", "S1"]);
        // Markers: compensated steps -1, failed step absent, rest absent.
        for i in 1..=3 {
            assert_eq!(fixtures::marker(&fed, &format!("S{i}")), Some(-1));
        }
        assert_eq!(fixtures::marker(&fed, "S4"), None);
        assert_eq!(fixtures::marker(&fed, "S5"), None);
    }

    #[test]
    fn first_step_abort_compensates_nothing() {
        let (fed, registry) = rig(3);
        fed.injector().set_plan("S1", FailurePlan::Always);
        let exec = SagaExecutor::new(Arc::clone(&fed), registry);
        let res = exec.run(&fixtures::linear_saga("s", 3)).unwrap();
        assert!(matches!(res.outcome, SagaOutcome::RolledBack { .. }));
        assert!(res.trace.compensated().is_empty());
    }

    #[test]
    fn compensations_retry_until_commit() {
        let (fed, registry) = rig(3);
        fed.injector().set_plan("S3", FailurePlan::Always);
        // The compensation of S2 fails twice before committing.
        fed.injector().set_plan("undo_S2", on_attempts([0, 1]));
        let exec = SagaExecutor::new(Arc::clone(&fed), registry);
        let res = exec.run(&fixtures::linear_saga("s", 3)).unwrap();
        assert!(matches!(res.outcome, SagaOutcome::RolledBack { .. }));
        assert_eq!(res.trace.compensated(), vec!["S2", "S1"]);
        let retries = res
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, AtmEvent::CompensationRetried(s, _) if s == "S2"))
            .count();
        assert_eq!(retries, 2);
        assert_eq!(fixtures::marker(&fed, "S2"), Some(-1));
    }

    #[test]
    fn stuck_compensation_reported() {
        let (fed, registry) = rig(2);
        fed.injector().set_plan("S2", FailurePlan::Always);
        fed.injector().set_plan("undo_S1", FailurePlan::Always);
        let mut exec = SagaExecutor::new(Arc::clone(&fed), registry);
        exec.max_compensation_retries = 3;
        let res = exec.run(&fixtures::linear_saga("s", 2)).unwrap();
        assert_eq!(
            res.outcome,
            SagaOutcome::CompensationStuck { step: "S1".into() }
        );
    }

    #[test]
    fn staged_saga_compensates_partial_stage() {
        // Stage 1 = [S1]; stage 2 = [S2, S3]; S3 fails after S2
        // committed: S2 and S1 must both be compensated, reverse order.
        let (fed, registry) = rig(3);
        fed.injector().set_plan("S3", FailurePlan::Always);
        let spec = SagaSpec::staged(
            "staged",
            vec![
                vec![crate::spec::StepSpec::compensatable(
                    "S1", "do_S1", "undo_S1",
                )],
                vec![
                    crate::spec::StepSpec::compensatable("S2", "do_S2", "undo_S2"),
                    crate::spec::StepSpec::compensatable("S3", "do_S3", "undo_S3"),
                ],
            ],
        );
        let exec = SagaExecutor::new(Arc::clone(&fed), registry);
        let res = exec.run(&spec).unwrap();
        assert_eq!(res.trace.compensated(), vec!["S2", "S1"]);
    }

    #[test]
    fn parallel_stages_commit_everything() {
        let (fed, registry) = rig(6);
        let spec = SagaSpec::staged(
            "par",
            vec![
                vec![crate::spec::StepSpec::compensatable(
                    "S1", "do_S1", "undo_S1",
                )],
                (2..=5)
                    .map(|i| {
                        crate::spec::StepSpec::compensatable(
                            &format!("S{i}"),
                            &format!("do_S{i}"),
                            &format!("undo_S{i}"),
                        )
                    })
                    .collect(),
                vec![crate::spec::StepSpec::compensatable(
                    "S6", "do_S6", "undo_S6",
                )],
            ],
        );
        let exec = SagaExecutor::new(Arc::clone(&fed), registry);
        let res = exec.run_parallel(&spec).unwrap();
        assert!(res.is_committed());
        for i in 1..=6 {
            assert_eq!(fixtures::marker(&fed, &format!("S{i}")), Some(1));
        }
        // S1 committed before the parallel stage, S6 after it.
        let order = res.trace.committed();
        assert_eq!(order.first(), Some(&"S1"));
        assert_eq!(order.last(), Some(&"S6"));
    }

    #[test]
    fn parallel_stage_failure_compensates_all_committed() {
        let (fed, registry) = rig(5);
        // S3 (inside the parallel stage) always fails; the other stage
        // members may or may not have committed before the failure is
        // observed — all committed ones must be compensated.
        fed.injector().set_plan("S3", FailurePlan::Always);
        let spec = SagaSpec::staged(
            "par",
            vec![
                vec![crate::spec::StepSpec::compensatable(
                    "S1", "do_S1", "undo_S1",
                )],
                (2..=5)
                    .map(|i| {
                        crate::spec::StepSpec::compensatable(
                            &format!("S{i}"),
                            &format!("do_S{i}"),
                            &format!("undo_S{i}"),
                        )
                    })
                    .collect(),
            ],
        );
        let exec = SagaExecutor::new(Arc::clone(&fed), registry);
        let res = exec.run_parallel(&spec).unwrap();
        assert_eq!(
            res.outcome,
            SagaOutcome::RolledBack {
                abort_step: "S3".into()
            }
        );
        // Invariant: every marker is either compensated (-1) or never
        // committed (None); nothing is left at 1.
        for i in 1..=5 {
            let m = fixtures::marker(&fed, &format!("S{i}"));
            assert_ne!(m, Some(1), "S{i} left committed after rollback");
        }
        assert_eq!(
            fixtures::marker(&fed, "S1"),
            Some(-1),
            "S1 surely committed"
        );
        // Compensations happened in reverse commit order.
        let committed = res.trace.committed();
        let compensated = res.trace.compensated();
        let reversed: Vec<&str> = committed.iter().rev().copied().collect();
        assert_eq!(compensated, reversed);
    }

    #[test]
    fn parallel_agrees_with_sequential_on_linear_sagas() {
        for abort_at in [None, Some(2)] {
            let (fed_a, reg_a) = rig(3);
            let (fed_b, reg_b) = rig(3);
            if let Some(j) = abort_at {
                fed_a
                    .injector()
                    .set_plan(&format!("S{j}"), FailurePlan::Always);
                fed_b
                    .injector()
                    .set_plan(&format!("S{j}"), FailurePlan::Always);
            }
            let spec = fixtures::linear_saga("s", 3);
            let seq = SagaExecutor::new(Arc::clone(&fed_a), reg_a)
                .run(&spec)
                .unwrap();
            let par = SagaExecutor::new(Arc::clone(&fed_b), reg_b)
                .run_parallel(&spec)
                .unwrap();
            assert_eq!(seq.outcome, par.outcome);
            assert_eq!(seq.trace, par.trace, "singleton stages are deterministic");
            // Database states agree too.
            assert_eq!(
                fed_a.db("saga_db").unwrap().snapshot(),
                fed_b.db("saga_db").unwrap().snapshot()
            );
        }
    }

    #[test]
    fn ill_formed_saga_rejected() {
        let (fed, registry) = rig(1);
        let exec = SagaExecutor::new(fed, registry);
        let bad = SagaSpec::linear("bad", vec![crate::spec::StepSpec::pivot("P", "prog")]);
        assert!(exec.run(&bad).is_err());
    }
}
