//! A two-phase-commit "global transaction" baseline — the approach
//! the paper's §2 argues is a dead end in multidatabase environments:
//!
//! > "Since a local database can unilaterally abort a transaction, it
//! > is not possible to enforce the commit semantics of global
//! > transactions."
//!
//! This executor attempts exactly that: one global transaction whose
//! writes span several autonomous local databases, committed with a
//! coordinator-driven two-phase protocol. Because the local databases
//! expose **no prepared state** (they are autonomous — they can still
//! abort anything uncommitted, and once the coordinator starts phase 2
//! each site commits unilaterally), the protocol exhibits precisely
//! the failure modes that motivated sagas and flexible transactions:
//!
//! * a site aborting during phase 1 aborts the global transaction
//!   cleanly (this part works — at the price of holding locks on every
//!   site for the whole global transaction);
//! * a site failing during phase 2 leaves a **heuristic outcome**: some
//!   sites committed, others lost their updates — global atomicity is
//!   gone;
//! * a site becoming unavailable between the phases leaves the
//!   coordinator **blocked**, with locks held on every other site,
//!   stalling unrelated local work.
//!
//! The comparison tests and the report use this executor as the
//! negative baseline against the saga/flexible-transaction executors,
//! which trade global atomicity for semantic atomicity and never
//! block other sites.

use crate::native::trace::{AtmEvent, AtmTrace};
use std::sync::Arc;
use txn_substrate::{MultiDatabase, Value};

/// One site's share of a global transaction: writes applied on that
/// database.
#[derive(Debug, Clone)]
pub struct SiteWrites {
    /// Target database name.
    pub db: String,
    /// Key/value writes.
    pub writes: Vec<(String, Value)>,
}

/// A global transaction specification.
#[derive(Debug, Clone)]
pub struct GlobalTxn {
    /// Name (used as the per-site failure-injection label prefix:
    /// phase-2 failures are scripted via the db's `"<db>/commit"`
    /// label, as with any transaction).
    pub name: String,
    /// Per-site writes, committed in declaration order in phase 2.
    pub sites: Vec<SiteWrites>,
}

/// Outcome of a two-phase-commit attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwoPcOutcome {
    /// Every site committed.
    Committed,
    /// A site failed during phase 1; every site rolled back cleanly.
    Aborted {
        /// The site that refused.
        site: String,
    },
    /// Phase 2 partially succeeded: global atomicity is violated.
    Heuristic {
        /// Sites whose commit went through.
        committed: Vec<String>,
        /// Sites whose updates were lost.
        lost: Vec<String>,
    },
    /// A site became unavailable between the phases; the coordinator
    /// gave up after observing it down, releasing the other sites'
    /// locks (a real blocking coordinator would hold them
    /// indefinitely — see the blocking probe in the tests).
    Blocked {
        /// The unreachable site.
        site: String,
    },
}

/// Result of a two-phase-commit attempt.
#[derive(Debug, Clone)]
pub struct TwoPcResult {
    /// What happened.
    pub outcome: TwoPcOutcome,
    /// Site-level trace (`Committed`/`Aborted` per site).
    pub trace: AtmTrace,
}

/// The coordinator.
pub struct TwoPcExecutor {
    multidb: Arc<MultiDatabase>,
}

impl TwoPcExecutor {
    /// Builds a coordinator over `multidb`.
    pub fn new(multidb: Arc<MultiDatabase>) -> Self {
        Self { multidb }
    }

    /// Runs `global`, invoking `between_phases` after every site has
    /// prepared (locks held everywhere) and before the first commit —
    /// the window the blocking tests probe.
    pub fn run_with_probe(&self, global: &GlobalTxn, between_phases: impl FnOnce()) -> TwoPcResult {
        let mut trace = AtmTrace::default();

        // Resolve every site handle up front; the transactions below
        // borrow from this vector for the whole protocol.
        let mut handles = Vec::with_capacity(global.sites.len());
        for site in &global.sites {
            let Some(db) = self.multidb.db(&site.db) else {
                trace.push(AtmEvent::Aborted(site.db.clone(), 0));
                return TwoPcResult {
                    outcome: TwoPcOutcome::Aborted {
                        site: site.db.clone(),
                    },
                    trace,
                };
            };
            handles.push(db);
        }

        // ---- phase 1: acquire everything everywhere -----------------
        let mut prepared = Vec::new();
        for (i, site) in global.sites.iter().enumerate() {
            let mut txn = handles[i].begin();
            let mut failed = false;
            for (k, v) in &site.writes {
                if txn.put(k, v.clone()).is_err() {
                    failed = true;
                    break;
                }
            }
            if failed {
                drop(txn);
                drop(prepared); // Drop aborts every prepared txn.
                trace.push(AtmEvent::Aborted(site.db.clone(), 0));
                return TwoPcResult {
                    outcome: TwoPcOutcome::Aborted {
                        site: site.db.clone(),
                    },
                    trace,
                };
            }
            prepared.push((i, txn, site.db.clone()));
        }

        between_phases();

        // ---- phase 2: commit site by site ---------------------------
        let mut committed = Vec::new();
        let mut lost = Vec::new();
        let mut blocked_site = None;
        for (i, txn, name) in prepared {
            if handles[i].is_down() && committed.is_empty() {
                // Detected before anything committed: give up and
                // release the others (the "coordinator blocked" case;
                // a strict coordinator would wait forever here).
                blocked_site = Some(name);
                break;
            }
            match txn.commit() {
                Ok(()) => {
                    trace.push(AtmEvent::Committed(name.clone()));
                    committed.push(name);
                }
                Err(_) => {
                    trace.push(AtmEvent::Aborted(name.clone(), 0));
                    lost.push(name);
                }
            }
        }

        let outcome = if let Some(site) = blocked_site {
            TwoPcOutcome::Blocked { site }
        } else if lost.is_empty() {
            TwoPcOutcome::Committed
        } else if committed.is_empty() {
            TwoPcOutcome::Aborted {
                site: lost[0].clone(),
            }
        } else {
            TwoPcOutcome::Heuristic { committed, lost }
        };
        TwoPcResult { outcome, trace }
    }

    /// Runs `global` with no probe.
    pub fn run(&self, global: &GlobalTxn) -> TwoPcResult {
        self.run_with_probe(global, || {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_substrate::FailurePlan;

    fn global() -> GlobalTxn {
        GlobalTxn {
            name: "g".into(),
            sites: vec![
                SiteWrites {
                    db: "site_a".into(),
                    writes: vec![("x".into(), Value::Int(1))],
                },
                SiteWrites {
                    db: "site_b".into(),
                    writes: vec![("y".into(), Value::Int(2))],
                },
                SiteWrites {
                    db: "site_c".into(),
                    writes: vec![("z".into(), Value::Int(3))],
                },
            ],
        }
    }

    fn fed() -> Arc<MultiDatabase> {
        let fed = MultiDatabase::new(0);
        for s in ["site_a", "site_b", "site_c"] {
            fed.add_database(s);
        }
        fed
    }

    #[test]
    fn all_sites_commit_when_nothing_fails() {
        let fed = fed();
        let res = TwoPcExecutor::new(Arc::clone(&fed)).run(&global());
        assert_eq!(res.outcome, TwoPcOutcome::Committed);
        assert_eq!(fed.db("site_a").unwrap().peek("x"), Some(Value::Int(1)));
        assert_eq!(fed.db("site_c").unwrap().peek("z"), Some(Value::Int(3)));
    }

    #[test]
    fn phase1_failure_aborts_cleanly() {
        let fed = fed();
        fed.db("site_b").unwrap().set_down(true);
        let res = TwoPcExecutor::new(Arc::clone(&fed)).run(&global());
        assert_eq!(
            res.outcome,
            TwoPcOutcome::Aborted {
                site: "site_b".into()
            }
        );
        assert_eq!(fed.db("site_a").unwrap().peek("x"), None, "no residue");
    }

    #[test]
    fn phase2_unilateral_abort_violates_global_atomicity() {
        // site_b unilaterally aborts at its commit point — the paper's
        // core multidatabase objection, observable as a heuristic
        // outcome: site_a committed, site_b lost.
        let fed = fed();
        fed.injector()
            .set_plan("site_b/commit", FailurePlan::Always);
        let res = TwoPcExecutor::new(Arc::clone(&fed)).run(&global());
        match res.outcome {
            TwoPcOutcome::Heuristic { committed, lost } => {
                assert_eq!(committed, vec!["site_a".to_string(), "site_c".to_string()]);
                assert_eq!(lost, vec!["site_b".to_string()]);
            }
            other => panic!("expected heuristic outcome, got {other:?}"),
        }
        // The inconsistency is real: x and z exist, y does not.
        assert_eq!(fed.db("site_a").unwrap().peek("x"), Some(Value::Int(1)));
        assert_eq!(fed.db("site_b").unwrap().peek("y"), None);
        assert_eq!(fed.db("site_c").unwrap().peek("z"), Some(Value::Int(3)));
    }

    #[test]
    fn site_failure_between_phases_blocks_and_stalls_other_sites() {
        let fed = fed();
        let fed2 = Arc::clone(&fed);
        let exec = TwoPcExecutor::new(Arc::clone(&fed));
        let res = exec.run_with_probe(&global(), move || {
            // The coordinator holds locks on every site. Unrelated
            // local work on site_a now stalls: probe with a timeout.
            fed2.db("site_a").unwrap().set_down(false); // (it is up)
            let (tx, rx) = crossbeam::channel::bounded(1);
            let fed3 = Arc::clone(&fed2);
            std::thread::spawn(move || {
                let db = fed3.db("site_a").unwrap();
                let mut t = db.begin();
                let r = t.put("x", 99i64); // conflicts with the prepared write
                let _ = tx.send(r.is_ok());
            });
            assert!(
                rx.recv_timeout(std::time::Duration::from_millis(100))
                    .is_err(),
                "local transaction must be stalled behind the global lock"
            );
            // Now the coordinator's target site crashes.
            fed2.db("site_a").unwrap().set_down(true);
        });
        assert_eq!(
            res.outcome,
            TwoPcOutcome::Blocked {
                site: "site_a".into()
            }
        );
        // Our coordinator gives up and releases; the stalled local
        // transaction can eventually proceed once site_a is back.
        fed.db("site_a").unwrap().set_down(false);
    }
}
