//! The native flexible-transaction executor (§4.2).
//!
//! Executes the preference-ordered paths of a [`FlexSpec`]:
//!
//! * steps run in path order; steps already committed on a previous
//!   path (the shared prefix) are not re-executed;
//! * a **retriable** step that aborts is retried until it commits
//!   ("T3 can be retried until it commits");
//! * any other abort abandons the current path: committed steps beyond
//!   the longest committed prefix of the next path are compensated in
//!   reverse commit order, then execution continues with the next path
//!   ("In the case that T8 is the one that aborts, T5 and T6 will be
//!   compensated before T7 is executed");
//! * when no alternative remains, everything committed is compensated
//!   and the transaction aborts;
//! * compensations are retriable, as in the saga model.
//!
//! The switch rule follows the paper's narrative exactly: the failure
//! of step *s* falls through to the most preferred untried path whose
//! remaining continuation does **not** include *s* — aborting `T4`
//! jumps straight to `p3 = T1 T2 T3` (skipping `p2`, which would only
//! re-attempt `T4`), while aborting `T8` falls to `p2`'s continuation
//! `T7`.

use crate::flexible::FlexSpec;
use crate::native::trace::{AtmEvent, AtmTrace};
use crate::wellformed::{check_flex, WellFormedError};
use std::collections::BTreeSet;
use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramContext, ProgramRegistry};

/// Outcome of a flexible-transaction execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlexOutcome {
    /// The transaction committed by completing the path with this
    /// index (0 = most preferred).
    CommittedVia(usize),
    /// Every alternative failed before a pivot committed; all
    /// committed steps were compensated.
    Aborted,
    /// The execution exceeded a retry bound — only possible when a
    /// supposedly retriable program in fact never commits, i.e. the
    /// specification lied about a step's class.
    Stuck {
        /// The step that exhausted its retries.
        step: String,
    },
}

/// Result of a flexible-transaction execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlexResult {
    /// What happened.
    pub outcome: FlexOutcome,
    /// Ordered trace.
    pub trace: AtmTrace,
    /// Steps still committed at the end (the effects that persist).
    pub committed: Vec<String>,
}

impl FlexResult {
    /// True if the transaction committed via some path.
    pub fn is_committed(&self) -> bool {
        matches!(self.outcome, FlexOutcome::CommittedVia(_))
    }
}

/// The native flexible-transaction executor.
pub struct FlexExecutor {
    multidb: Arc<MultiDatabase>,
    registry: Arc<ProgramRegistry>,
    /// Retry bound for retriable steps and compensations.
    pub max_retries: u32,
}

impl FlexExecutor {
    /// Builds an executor over `multidb` and `registry`.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use txn_substrate::{FailurePlan, MultiDatabase, ProgramRegistry};
    /// use atm::{fixtures, FlexExecutor, FlexOutcome};
    ///
    /// let fed = MultiDatabase::new(0);
    /// let registry = Arc::new(ProgramRegistry::new());
    /// fixtures::register_figure3_programs(&fed, &registry);
    /// // T8 always aborts: the paper's "T5 and T6 will be compensated
    /// // before T7 is executed".
    /// fed.injector().set_plan("T8", FailurePlan::Always);
    ///
    /// let exec = FlexExecutor::new(Arc::clone(&fed), registry);
    /// let result = exec.run(&fixtures::figure3_spec()).unwrap();
    /// assert_eq!(result.outcome, FlexOutcome::CommittedVia(1)); // p2
    /// assert_eq!(result.trace.compensated(), vec!["T6", "T5"]);
    /// ```
    pub fn new(multidb: Arc<MultiDatabase>, registry: Arc<ProgramRegistry>) -> Self {
        Self {
            multidb,
            registry,
            max_retries: 1_000,
        }
    }

    /// Runs `spec`. Returns `Err` if it is not well-formed.
    pub fn run(&self, spec: &FlexSpec) -> Result<FlexResult, Vec<WellFormedError>> {
        let errors = check_flex(spec);
        if !errors.is_empty() {
            return Err(errors);
        }

        let mut trace = AtmTrace::default();
        // Commit order matters for compensation; membership checks use
        // the set.
        let mut committed_order: Vec<String> = Vec::new();
        let mut committed: BTreeSet<String> = BTreeSet::new();
        let mut k = 0usize;

        'paths: while k < spec.paths.len() {
            let path = &spec.paths[k];
            for name in path {
                if committed.contains(name) {
                    continue; // shared prefix with an earlier path
                }
                let step = spec.step(name).expect("well-formed");
                match self.run_forward(step, &mut trace) {
                    ForwardResult::Committed => {
                        committed_order.push(name.clone());
                        committed.insert(name.clone());
                    }
                    ForwardResult::Stuck => {
                        return Ok(FlexResult {
                            outcome: FlexOutcome::Stuck { step: name.clone() },
                            trace,
                            committed: committed_order,
                        });
                    }
                    ForwardResult::Failed => {
                        // Abandon this path: fall through to the most
                        // preferred untried path whose continuation
                        // does not require the failed step.
                        let fallback = ((k + 1)..spec.paths.len()).find(|&k2| {
                            !spec.paths[k2]
                                .iter()
                                .skip_while(|s| committed.contains(*s))
                                .any(|s| s == name)
                        });
                        if let Some(k2) = fallback {
                            let next = &spec.paths[k2];
                            // Longest prefix of the fallback path that
                            // is already committed, in order.
                            let keep: BTreeSet<String> = next
                                .iter()
                                .take_while(|s| committed.contains(*s))
                                .cloned()
                                .collect();
                            // Compensate everything else, reverse
                            // commit order.
                            let to_undo: Vec<String> = committed_order
                                .iter()
                                .filter(|s| !keep.contains(*s))
                                .cloned()
                                .collect();
                            for s in to_undo.iter().rev() {
                                let step = spec.step(s).expect("well-formed");
                                if let Err(stuck) = self.compensate(step, &mut trace) {
                                    return Ok(FlexResult {
                                        outcome: FlexOutcome::Stuck { step: stuck },
                                        trace,
                                        committed: committed_order,
                                    });
                                }
                                committed.remove(s);
                                committed_order.retain(|c| c != s);
                            }
                            trace.push(AtmEvent::PathSwitched { from: k, to: k2 });
                            k = k2;
                            continue 'paths;
                        }
                        // No alternative left: full abort.
                        for s in committed_order.clone().iter().rev() {
                            let step = spec.step(s).expect("well-formed");
                            if let Err(stuck) = self.compensate(step, &mut trace) {
                                return Ok(FlexResult {
                                    outcome: FlexOutcome::Stuck { step: stuck },
                                    trace,
                                    committed: committed_order,
                                });
                            }
                            committed.remove(s);
                            committed_order.retain(|c| c != s);
                        }
                        return Ok(FlexResult {
                            outcome: FlexOutcome::Aborted,
                            trace,
                            committed: committed_order,
                        });
                    }
                }
            }
            // Path completed.
            return Ok(FlexResult {
                outcome: FlexOutcome::CommittedVia(k),
                trace,
                committed: committed_order,
            });
        }
        unreachable!("loop either returns or advances k past the last path");
    }

    fn run_forward(&self, step: &crate::spec::StepSpec, trace: &mut AtmTrace) -> ForwardResult {
        let mut attempt = 0u32;
        loop {
            let mut ctx = ProgramContext::new(Arc::clone(&self.multidb));
            ctx.attempt = attempt;
            let outcome = self.registry.invoke(&step.program, &mut ctx);
            if outcome.is_committed() {
                trace.push(AtmEvent::Committed(step.name.clone()));
                return ForwardResult::Committed;
            }
            trace.push(AtmEvent::Aborted(step.name.clone(), attempt));
            if !step.class.is_retriable() {
                return ForwardResult::Failed;
            }
            attempt += 1;
            trace.push(AtmEvent::Retried(step.name.clone(), attempt));
            if attempt > self.max_retries {
                return ForwardResult::Stuck;
            }
        }
    }

    fn compensate(&self, step: &crate::spec::StepSpec, trace: &mut AtmTrace) -> Result<(), String> {
        let comp = step
            .compensation
            .as_deref()
            .expect("well-formedness guarantees compensations where needed");
        let mut attempt = 0u32;
        loop {
            let mut ctx = ProgramContext::new(Arc::clone(&self.multidb));
            ctx.attempt = attempt;
            if self.registry.invoke(comp, &mut ctx).is_committed() {
                trace.push(AtmEvent::Compensated(step.name.clone()));
                return Ok(());
            }
            attempt += 1;
            trace.push(AtmEvent::CompensationRetried(step.name.clone(), attempt));
            if attempt > self.max_retries {
                return Err(step.name.clone());
            }
        }
    }
}

enum ForwardResult {
    Committed,
    Failed,
    Stuck,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, figure3_spec, marker};
    use txn_substrate::{FailurePlan, MultiDatabase, ProgramRegistry};

    fn rig() -> (Arc<MultiDatabase>, FlexExecutor) {
        let fed = MultiDatabase::new(0);
        let registry = Arc::new(ProgramRegistry::new());
        fixtures::register_figure3_programs(&fed, &registry);
        let exec = FlexExecutor::new(Arc::clone(&fed), registry);
        (fed, exec)
    }

    #[test]
    fn happy_path_commits_via_p1() {
        let (fed, exec) = rig();
        let res = exec.run(&figure3_spec()).unwrap();
        assert_eq!(res.outcome, FlexOutcome::CommittedVia(0));
        assert_eq!(res.committed, vec!["T1", "T2", "T4", "T5", "T6", "T8"]);
        for t in ["T1", "T2", "T4", "T5", "T6", "T8"] {
            assert_eq!(marker(&fed, t), Some(1));
        }
        assert_eq!(marker(&fed, "T3"), None);
        assert_eq!(marker(&fed, "T7"), None);
    }

    #[test]
    fn t1_abort_aborts_whole_transaction() {
        // "First T1 is executed, if it aborts, then the entire
        // transaction is considered to be aborted."
        let (fed, exec) = rig();
        fed.injector().set_plan("T1", FailurePlan::Always);
        let res = exec.run(&figure3_spec()).unwrap();
        assert_eq!(res.outcome, FlexOutcome::Aborted);
        assert!(res.committed.is_empty());
        assert!(res.trace.compensated().is_empty());
    }

    #[test]
    fn t2_abort_compensates_t1_and_aborts() {
        // "If T2 aborts … the compensation for T1 is executed."
        let (fed, exec) = rig();
        fed.injector().set_plan("T2", FailurePlan::Always);
        let res = exec.run(&figure3_spec()).unwrap();
        assert_eq!(res.outcome, FlexOutcome::Aborted);
        // T1 is the kept prefix of every alternative, so it survives
        // both switches and is compensated exactly once, at the final
        // abort.
        assert_eq!(res.trace.compensated(), vec!["T1"]);
        assert_eq!(marker(&fed, "T1"), Some(-1));
        // T2 is in every path's continuation, so its failure finds no
        // fallback: it is attempted exactly once (the paper's "if T2
        // aborts … the compensation for T1 is executed and all other
        // activities are marked as terminated").
        let attempts = res
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, AtmEvent::Aborted(s, _) if s == "T2"))
            .count();
        assert_eq!(attempts, 1);
    }

    #[test]
    fn t4_abort_falls_through_to_p3() {
        // "If T4 aborts, T3 is executed until it successfully commits."
        let (fed, exec) = rig();
        fed.injector().set_plan("T4", FailurePlan::Always);
        fed.injector().set_plan("T3", FailurePlan::FirstN(2));
        let res = exec.run(&figure3_spec()).unwrap();
        assert_eq!(res.outcome, FlexOutcome::CommittedVia(2));
        assert_eq!(res.committed, vec!["T1", "T2", "T3"]);
        // T3 needed two retries.
        let retries = res
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, AtmEvent::Retried(s, _) if s == "T3"))
            .count();
        assert_eq!(retries, 2);
        assert_eq!(marker(&fed, "T3"), Some(1));
        assert_eq!(marker(&fed, "T1"), Some(1), "shared prefix survives");
    }

    #[test]
    fn t5_abort_switches_to_p2_without_compensation() {
        // "If either T5, T6 or T8 aborts, then T7 is executed."
        let (fed, exec) = rig();
        fed.injector().set_plan("T5", FailurePlan::Always);
        let res = exec.run(&figure3_spec()).unwrap();
        assert_eq!(res.outcome, FlexOutcome::CommittedVia(1));
        assert!(res.trace.compensated().is_empty(), "nothing beyond prefix");
        assert_eq!(res.committed, vec!["T1", "T2", "T4", "T7"]);
    }

    #[test]
    fn t8_abort_compensates_t6_t5_then_runs_t7() {
        // "In the case that T8 is the one that aborts, T5 and T6 will
        // be compensated before T7 is executed." (reverse order)
        let (fed, exec) = rig();
        fed.injector().set_plan("T8", FailurePlan::Always);
        let res = exec.run(&figure3_spec()).unwrap();
        assert_eq!(res.outcome, FlexOutcome::CommittedVia(1));
        assert_eq!(res.trace.compensated(), vec!["T6", "T5"]);
        assert_eq!(marker(&fed, "T5"), Some(-1));
        assert_eq!(marker(&fed, "T6"), Some(-1));
        assert_eq!(marker(&fed, "T7"), Some(1));
        assert_eq!(res.committed, vec!["T1", "T2", "T4", "T7"]);
    }

    #[test]
    fn retriable_t7_retries_within_p2() {
        let (fed, exec) = rig();
        fed.injector().set_plan("T6", FailurePlan::Always);
        fed.injector().set_plan("T7", FailurePlan::FirstN(3));
        let res = exec.run(&figure3_spec()).unwrap();
        assert_eq!(res.outcome, FlexOutcome::CommittedVia(1));
        assert_eq!(res.trace.compensated(), vec!["T5"]);
        let t7_retries = res
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, AtmEvent::Retried(s, _) if s == "T7"))
            .count();
        assert_eq!(t7_retries, 3);
    }

    #[test]
    fn stuck_when_retriable_lies() {
        let (fed, mut exec) = rig();
        fed.injector().set_plan("T4", FailurePlan::Always);
        fed.injector().set_plan("T3", FailurePlan::Always);
        exec.max_retries = 5;
        let res = exec.run(&figure3_spec()).unwrap();
        assert_eq!(res.outcome, FlexOutcome::Stuck { step: "T3".into() });
    }

    #[test]
    fn ill_formed_spec_rejected() {
        let (_, exec) = rig();
        let mut spec = figure3_spec();
        spec.paths.push(vec![]);
        assert!(exec.run(&spec).is_err());
    }

    #[test]
    fn every_single_step_failure_keeps_invariants() {
        // For each step failing permanently, the execution must either
        // commit via some path or abort having compensated every
        // committed compensatable; no marker may be left at 1 unless
        // it belongs to the surviving committed set.
        for fail in fixtures::FIGURE3_STEPS {
            let (fed, exec) = rig();
            fed.injector().set_plan(fail, FailurePlan::Always);
            let spec = figure3_spec();
            // Retriable steps failing forever would legitimately hang;
            // skip them (covered by the `stuck` test).
            if spec.class_of(fail).is_retriable() {
                continue;
            }
            let res = exec.run(&spec).unwrap();
            for t in fixtures::FIGURE3_STEPS {
                let m = marker(&fed, t);
                if res.committed.contains(&t.to_string()) {
                    assert_eq!(m, Some(1), "fail={fail}: {t} should persist");
                } else {
                    assert_ne!(m, Some(1), "fail={fail}: {t} left dangling");
                }
            }
        }
    }
}
