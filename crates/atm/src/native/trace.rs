//! Execution traces of the native executors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One observable step of a native execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AtmEvent {
    /// A forward subtransaction committed.
    Committed(String),
    /// A forward subtransaction aborted (attempt number attached).
    Aborted(String, u32),
    /// A retriable subtransaction is being retried.
    Retried(String, u32),
    /// A compensation committed.
    Compensated(String),
    /// A compensation aborted and will be retried.
    CompensationRetried(String, u32),
    /// Execution switched from one alternative path to another.
    PathSwitched { from: usize, to: usize },
}

impl fmt::Display for AtmEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtmEvent::Committed(s) => write!(f, "{s}+"),
            AtmEvent::Aborted(s, n) => write!(f, "{s}-#{n}"),
            AtmEvent::Retried(s, n) => write!(f, "{s}~#{n}"),
            AtmEvent::Compensated(s) => write!(f, "{s}^"),
            AtmEvent::CompensationRetried(s, n) => write!(f, "{s}^~#{n}"),
            AtmEvent::PathSwitched { from, to } => write!(f, "p{from}=>p{to}"),
        }
    }
}

/// An ordered event list with convenience accessors.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtmTrace {
    /// Events in execution order.
    pub events: Vec<AtmEvent>,
}

impl AtmTrace {
    /// Appends an event.
    pub fn push(&mut self, e: AtmEvent) {
        self.events.push(e);
    }

    /// Names of committed forward steps, in commit order.
    pub fn committed(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                AtmEvent::Committed(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Names of compensated steps, in compensation order.
    pub fn compensated(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                AtmEvent::Compensated(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Compact single-line rendering, e.g.
    /// `"T1+ T2+ T4-#0 p0=>p2 T3~#1 T3+"`.
    pub fn compact(&self) -> String {
        self.events
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_filter_event_kinds() {
        let mut t = AtmTrace::default();
        t.push(AtmEvent::Committed("T1".into()));
        t.push(AtmEvent::Aborted("T2".into(), 0));
        t.push(AtmEvent::Compensated("T1".into()));
        assert_eq!(t.committed(), vec!["T1"]);
        assert_eq!(t.compensated(), vec!["T1"]);
    }

    #[test]
    fn compact_rendering() {
        let mut t = AtmTrace::default();
        t.push(AtmEvent::Committed("T1".into()));
        t.push(AtmEvent::PathSwitched { from: 0, to: 1 });
        t.push(AtmEvent::Retried("T7".into(), 2));
        t.push(AtmEvent::CompensationRetried("T5".into(), 1));
        assert_eq!(t.compact(), "T1+ p0=>p1 T7~#2 T5^~#1");
    }
}
