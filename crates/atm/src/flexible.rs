//! Flexible transaction specifications (§4.2).
//!
//! A flexible transaction provides **alternative execution paths** in
//! preference order: "if a subtransaction is aborted, then a different
//! subtransaction can be submitted in the hope that it will be
//! successful. A flexible transaction commits if either the main
//! subtransactions or their alternatives commit."
//!
//! The specification mirrors the paper's Figure 3: a set of typed
//! steps and a preference-ordered list of paths (each path a total
//! order of step names). Paths share prefixes; switching from a path
//! to the next compensates the committed steps that the next path does
//! not share.

use crate::spec::{SpecError, StepSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use txn_substrate::StepClass;

/// One subtransaction of a flexible transaction. Alias of
/// [`StepSpec`], re-exported under the model's own name for clarity in
/// downstream code.
pub type FlexStep = StepSpec;

/// A flexible transaction specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlexSpec {
    /// Transaction name.
    pub name: String,
    /// All subtransactions, keyed by name via [`FlexSpec::step`].
    pub steps: Vec<FlexStep>,
    /// Alternative execution paths in preference order (most preferred
    /// first); each path is a sequence of step names.
    pub paths: Vec<Vec<String>>,
}

impl FlexSpec {
    /// Builds a specification.
    pub fn new(name: &str, steps: Vec<FlexStep>, paths: Vec<Vec<&str>>) -> Self {
        Self {
            name: name.to_owned(),
            steps,
            paths: paths
                .into_iter()
                .map(|p| p.into_iter().map(|s| s.to_owned()).collect())
                .collect(),
        }
    }

    /// Looks up a step by name.
    pub fn step(&self, name: &str) -> Option<&FlexStep> {
        self.steps.iter().find(|s| s.name == name)
    }

    /// The class of a step (panics on unknown names — callers run
    /// [`crate::wellformed::check_flex`] first).
    pub fn class_of(&self, name: &str) -> StepClass {
        self.step(name).expect("step exists").class
    }

    /// Structural errors: duplicate steps, unknown path references,
    /// duplicate steps within a path, no paths, empty paths.
    pub fn structural_errors(&self) -> Vec<SpecError> {
        let mut errors = Vec::new();
        let mut seen = BTreeSet::new();
        for s in &self.steps {
            if !seen.insert(s.name.clone()) {
                errors.push(SpecError::DuplicateStep(s.name.clone()));
            }
        }
        for path in &self.paths {
            let mut in_path = BTreeSet::new();
            for name in path {
                if self.step(name).is_none() {
                    errors.push(SpecError::UnknownStep(name.clone()));
                }
                if !in_path.insert(name.clone()) {
                    errors.push(SpecError::DuplicateStep(format!("{name} (within a path)")));
                }
            }
        }
        errors
    }

    /// Length of the longest common prefix of two paths.
    pub fn common_prefix_len(a: &[String], b: &[String]) -> usize {
        a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FlexSpec {
        FlexSpec::new(
            "demo",
            vec![
                FlexStep::compensatable("T1", "p1", "c1"),
                FlexStep::pivot("T2", "p2"),
                FlexStep::retriable("T3", "p3"),
            ],
            vec![vec!["T1", "T2"], vec!["T1", "T3"]],
        )
    }

    #[test]
    fn lookup_and_class() {
        let s = spec();
        assert_eq!(s.step("T2").unwrap().program, "p2");
        assert!(s.class_of("T3").is_retriable());
        assert!(s.step("T9").is_none());
    }

    #[test]
    fn structural_errors_catch_unknown_and_duplicates() {
        let mut s = spec();
        s.paths.push(vec!["T1".into(), "Ghost".into(), "T1".into()]);
        let errs = s.structural_errors();
        assert!(errs.contains(&SpecError::UnknownStep("Ghost".into())));
        assert!(errs
            .iter()
            .any(|e| matches!(e, SpecError::DuplicateStep(d) if d.contains("within a path"))));
    }

    #[test]
    fn common_prefix() {
        let a = vec!["T1".to_string(), "T2".to_string(), "T4".to_string()];
        let b = vec!["T1".to_string(), "T2".to_string(), "T3".to_string()];
        assert_eq!(FlexSpec::common_prefix_len(&a, &b), 2);
        assert_eq!(FlexSpec::common_prefix_len(&a, &a), 3);
        assert_eq!(FlexSpec::common_prefix_len(&a, &[]), 0);
    }

    #[test]
    fn duplicate_step_definitions_flagged() {
        let s = FlexSpec::new(
            "dup",
            vec![FlexStep::pivot("T1", "p"), FlexStep::pivot("T1", "q")],
            vec![vec!["T1"]],
        );
        assert_eq!(
            s.structural_errors(),
            vec![SpecError::DuplicateStep("T1".into())]
        );
    }
}
