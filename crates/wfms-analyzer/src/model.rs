//! `WA001`–`WA015`: meta-model rules lifted from
//! [`wfms_model::validate()`] into the diagnostic framework.
//!
//! The validator already recurses into nested blocks and reports every
//! violation in one pass; this lint runs it once at the root and maps
//! each [`ValidationError`] variant to a stable code, attaching source
//! positions via [`wfms_fdl::Provenance::locate`]. The one exception
//! is `ValidationError::Cycle`, which is *not* lifted here: the graph
//! lint reports cycles as `WA022` with a witness path, which subsumes
//! the validator's process-level finding.

use crate::{Diagnostic, Lint, ProcessCtx, Severity};
use wfms_model::{validate, ValidationError};

/// Lints lifted from the meta-model validator.
pub struct ModelLint;

/// Maps a validation error to its diagnostic code, or `None` for
/// variants covered by a richer dedicated lint.
pub fn code_of(err: &ValidationError) -> Option<&'static str> {
    use ValidationError::*;
    Some(match err {
        EmptyProcess { .. } => "WA001",
        DuplicateActivity { .. } => "WA002",
        DuplicateMember { .. } => "WA003",
        MissingProgramName { .. } => "WA004",
        UnknownEndpoint { .. } => "WA005",
        SelfLoop { .. } => "WA006",
        DuplicateControl { .. } => "WA007",
        Cycle { .. } => return None, // WA022 reports a witness instead
        BadDataDirection { .. } => "WA008",
        UnknownDataActivity { .. } => "WA009",
        UnknownMember { .. } => "WA010",
        MappingTypeMismatch { .. } => "WA011",
        DataAgainstControlFlow { .. } => "WA012",
        UnresolvedConditionVar { .. } => "WA013",
        ReservedRcWrongType { .. } => "WA014",
        BlockContainerMismatch { .. } => "WA015",
    })
}

/// The process path a validation error concerns.
fn process_of(err: &ValidationError) -> &str {
    use ValidationError::*;
    match err {
        EmptyProcess { process }
        | DuplicateActivity { process, .. }
        | DuplicateMember { process, .. }
        | MissingProgramName { process, .. }
        | UnknownEndpoint { process, .. }
        | SelfLoop { process, .. }
        | DuplicateControl { process, .. }
        | Cycle { process }
        | BadDataDirection { process, .. }
        | UnknownDataActivity { process, .. }
        | UnknownMember { process, .. }
        | MappingTypeMismatch { process, .. }
        | DataAgainstControlFlow { process, .. }
        | UnresolvedConditionVar { process, .. }
        | ReservedRcWrongType { process, .. }
        | BlockContainerMismatch { process, .. } => process,
    }
}

/// The element label (activity or connector) an error concerns.
fn element_of(err: &ValidationError) -> Option<String> {
    use ValidationError::*;
    match err {
        DuplicateActivity { activity, .. }
        | MissingProgramName { activity, .. }
        | SelfLoop { activity, .. }
        | BlockContainerMismatch { activity, .. } => Some(activity.clone()),
        UnknownEndpoint { connector, .. }
        | BadDataDirection { connector, .. }
        | UnknownDataActivity { connector, .. }
        | UnknownMember { connector, .. }
        | MappingTypeMismatch { connector, .. }
        | DataAgainstControlFlow { connector, .. } => Some(connector.clone()),
        DuplicateControl { from, to, .. } => Some(format!("{from} -> {to}")),
        DuplicateMember { container, .. } | ReservedRcWrongType { container, .. } => {
            Some(container.clone())
        }
        UnresolvedConditionVar { location, .. } => Some(location.clone()),
        EmptyProcess { .. } | Cycle { .. } => None,
    }
}

/// A validation error's message without its `[path] ` prefix (the
/// diagnostic carries the path separately).
fn message_of(err: &ValidationError) -> String {
    let full = err.to_string();
    let prefix = format!("[{}] ", process_of(err));
    full.strip_prefix(&prefix).unwrap_or(&full).to_owned()
}

impl Lint for ModelLint {
    fn name(&self) -> &'static str {
        "model"
    }

    fn codes(&self) -> &'static [&'static str] {
        &[
            "WA001", "WA002", "WA003", "WA004", "WA005", "WA006", "WA007", "WA008", "WA009",
            "WA010", "WA011", "WA012", "WA013", "WA014", "WA015",
        ]
    }

    fn root_only(&self) -> bool {
        true // validate() recurses into blocks by itself
    }

    fn check(&self, ctx: &ProcessCtx<'_>, out: &mut Vec<Diagnostic>) {
        for err in validate(ctx.process) {
            let Some(code) = code_of(&err) else { continue };
            let pos = ctx.provenance.and_then(|p| p.locate(&err));
            out.push(
                Diagnostic::new(
                    code,
                    Severity::Error,
                    process_of(&err),
                    element_of(&err),
                    message_of(&err),
                )
                .with_pos(pos),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let (def, prov) = wfms_fdl::parse_with_provenance(src).unwrap();
        Analyzer::new().check_process(&def, Some(&prov))
    }

    #[test]
    fn lifts_validation_errors_with_positions() {
        let src = "PROCESS p\n  ACTIVITY A PROGRAM \"x\" END\n  CONTROL FROM A TO Ghost\nEND";
        let diags = lint(src);
        let d = diags.iter().find(|d| d.code == "WA005").expect("WA005");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.process, "p");
        assert_eq!(d.element.as_deref(), Some("A -> Ghost"));
        assert_eq!(d.pos.map(|p| p.line), Some(3));
        assert!(!d.message.starts_with("[p]"), "path prefix stripped");
    }

    #[test]
    fn every_variant_maps_to_a_distinct_code_or_none() {
        use std::collections::BTreeSet;
        let errs = [
            ValidationError::EmptyProcess {
                process: "p".into(),
            },
            ValidationError::DuplicateActivity {
                process: "p".into(),
                activity: "A".into(),
            },
            ValidationError::Cycle {
                process: "p".into(),
            },
            ValidationError::ReservedRcWrongType {
                process: "p".into(),
                container: "A.INPUT".into(),
            },
        ];
        let codes: BTreeSet<_> = errs.iter().filter_map(code_of).collect();
        assert_eq!(codes.len(), 3, "cycle maps to None, rest distinct");
    }

    #[test]
    fn block_container_mismatch_flagged_programmatically() {
        use wfms_model::{Activity, ActivityKind, ContainerSchema, DataType, ProcessDefinition};
        // Not constructible from FDL text (the parser mirrors facade
        // containers), so build the broken definition by hand.
        let mut inner = ProcessDefinition::new("Blk");
        inner.activities.push(Activity::program("T", "t"));
        let mut facade = Activity::noop("Blk");
        facade.kind = ActivityKind::Block {
            process: Box::new(inner),
        };
        facade.output = ContainerSchema::of(&[("extra", DataType::Int)]);
        let mut def = ProcessDefinition::new("p");
        def.activities.push(facade);
        let diags = Analyzer::new().check_process(&def, None);
        assert!(
            diags.iter().any(|d| d.code == "WA015"),
            "expected WA015 in {diags:?}"
        );
    }
}
