//! `WA051`–`WA057`: lints over ATM specifications.
//!
//! `WA051`–`WA056` lift the S/F well-formedness rules of
//! [`atm::wellformed`] into the diagnostic framework, one stable code
//! per [`WellFormedError`] variant. `WA057` is new: it pinpoints the
//! *placement* problem behind a mid-saga pivot — a non-compensatable
//! step followed by a step that may still fail means a later abort
//! cannot roll back past the earlier commit. `check_saga` already
//! reports the non-compensatable step itself (`WA052`); `WA057` adds
//! which later steps make its position fatal rather than merely
//! irregular. It is deliberately *not* applied to flexible
//! transactions, where F3–F5 (`WA054`–`WA056`) already govern pivot
//! placement per path and alternative paths legitimately commit past
//! pivots.

use crate::{Diagnostic, Severity};
use atm::{check_flex, check_saga, FlexSpec, SagaSpec, WellFormedError};

/// Maps a well-formedness error to its stable code.
pub fn code_of(err: &WellFormedError) -> &'static str {
    use WellFormedError::*;
    match err {
        Structure(_) => "WA051",
        SagaStepNotCompensatable { .. } => "WA052",
        CompensationMismatch { .. } => "WA053",
        NonCompensatableBetweenPivots { .. } => "WA054",
        LastPathNotGuaranteed { .. } => "WA055",
        NoWayOut { .. } => "WA056",
    }
}

fn element_of(err: &WellFormedError) -> Option<String> {
    use WellFormedError::*;
    match err {
        Structure(_) => None,
        SagaStepNotCompensatable { step }
        | CompensationMismatch { step, .. }
        | NonCompensatableBetweenPivots { step, .. }
        | LastPathNotGuaranteed { step }
        | NoWayOut { step, .. } => Some(step.clone()),
    }
}

fn lift(spec_name: &str, errs: Vec<WellFormedError>) -> Vec<Diagnostic> {
    errs.into_iter()
        .map(|e| {
            Diagnostic::new(
                code_of(&e),
                Severity::Error,
                spec_name,
                element_of(&e),
                e.to_string(),
            )
        })
        .collect()
}

/// All ATM-level findings for a saga: S1–S2 (`WA051`/`WA052`) plus
/// pivot placement (`WA057`).
pub fn check_saga_spec(spec: &SagaSpec) -> Vec<Diagnostic> {
    let mut out = lift(&spec.name, check_saga(spec));
    // WA057: a non-compensatable step with a later step that may
    // still fail (is not retriable) — the saga's backward recovery
    // cannot cross the earlier step once it has committed.
    let steps: Vec<_> = spec.steps().collect();
    for (i, step) in steps.iter().enumerate() {
        if step.class.is_compensatable() {
            continue;
        }
        let blockers: Vec<&str> = steps[i + 1..]
            .iter()
            .filter(|later| !later.class.is_retriable())
            .map(|later| later.name.as_str())
            .collect();
        if !blockers.is_empty() {
            out.push(Diagnostic::new(
                "WA057",
                Severity::Error,
                &spec.name,
                Some(step.name.clone()),
                format!(
                    "non-compensatable step {:?} is followed by step(s) that may \
                     still fail ({}); an abort there cannot be rolled back past it",
                    step.name,
                    blockers.join(", ")
                ),
            ));
        }
    }
    // WA106: per-failure-point compensation soundness with a concrete
    // witness path (WA057 above flags the *placement*; WA106 names
    // each failure the backward recovery cannot absorb).
    out.extend(crate::dataflow::compensation::saga_findings(spec));
    out
}

/// All ATM-level findings for a flexible transaction: F1–F5
/// (`WA051`, `WA053`–`WA056`) plus compensation soundness (`WA106`).
pub fn check_flex_spec(spec: &FlexSpec) -> Vec<Diagnostic> {
    let mut out = lift(&spec.name, check_flex(spec));
    out.extend(crate::dataflow::compensation::flex_findings(spec));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use atm::StepSpec;

    #[test]
    fn clean_saga_and_flex_pass() {
        assert!(Analyzer::new()
            .check_saga(&atm::fixtures::linear_saga("trip", 3))
            .is_empty());
        assert!(Analyzer::new()
            .check_flex(&atm::fixtures::figure3_spec())
            .is_empty());
    }

    #[test]
    fn saga_without_compensation_flagged() {
        let spec = SagaSpec::linear("s", vec![StepSpec::pivot("Only", "p")]);
        let diags = Analyzer::new().check_saga(&spec);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "WA052");
        assert_eq!(diags[0].element.as_deref(), Some("Only"));
        // Last step: nothing after it can fail, so no WA057.
    }

    #[test]
    fn mid_saga_pivot_gets_placement_diagnostic() {
        let spec = SagaSpec::linear(
            "s",
            vec![
                StepSpec::pivot("P", "p"),
                StepSpec::compensatable("C", "c", "undo_c"),
            ],
        );
        let diags = Analyzer::new().check_saga(&spec);
        let d = diags.iter().find(|d| d.code == "WA057").expect("WA057");
        assert_eq!(d.element.as_deref(), Some("P"));
        assert!(d.message.contains("C"), "{:?}", d.message);
        assert!(diags.iter().any(|d| d.code == "WA052"));
    }

    #[test]
    fn retriable_tail_suppresses_wa057() {
        // A pivot followed only by retriable steps is the classic
        // pivot-then-guaranteed-tail shape; WA052 still fires (it is
        // not a well-formed *saga*) but placement is sound.
        let spec = SagaSpec::linear(
            "s",
            vec![StepSpec::pivot("P", "p"), StepSpec::retriable("R", "r")],
        );
        let diags = Analyzer::new().check_saga(&spec);
        assert!(diags.iter().all(|d| d.code != "WA057"), "{diags:?}");
    }

    #[test]
    fn compensation_mismatch_flagged_programmatically() {
        // Not expressible in the textual spec format (class inference
        // never disagrees with the declaration), so build it directly.
        let mut step = StepSpec::retriable("R", "r");
        step.compensation = Some("undo_r".into());
        let spec = FlexSpec::new("f", vec![step], vec![vec!["R"]]);
        let diags = Analyzer::new().check_flex(&spec);
        let d = diags.iter().find(|d| d.code == "WA053").expect("WA053");
        assert_eq!(d.element.as_deref(), Some("R"));
    }

    #[test]
    fn flex_rule_codes_lifted() {
        // Unknown step in a path → F1 structure → WA051.
        let spec = FlexSpec::new(
            "f",
            vec![StepSpec::retriable("R", "r")],
            vec![vec!["R", "Ghost"]],
        );
        let diags = Analyzer::new().check_flex(&spec);
        assert!(diags.iter().any(|d| d.code == "WA051"), "{diags:?}");

        // Last path with a non-retriable tail after its pivot → WA055.
        let spec = FlexSpec::new(
            "f",
            vec![
                StepSpec::pivot("P", "p"),
                StepSpec::compensatable("C", "c", "undo_c"),
            ],
            vec![vec!["P", "C"]],
        );
        let diags = Analyzer::new().check_flex(&spec);
        assert!(diags.iter().any(|d| d.code == "WA055"), "{diags:?}");
    }

    #[test]
    fn all_wellformed_variants_have_distinct_codes() {
        use std::collections::BTreeSet;
        let errs = [
            WellFormedError::Structure("x".into()),
            WellFormedError::SagaStepNotCompensatable { step: "a".into() },
            WellFormedError::CompensationMismatch {
                step: "a".into(),
                has: true,
            },
            WellFormedError::NonCompensatableBetweenPivots {
                path: 0,
                step: "a".into(),
            },
            WellFormedError::LastPathNotGuaranteed { step: "a".into() },
            WellFormedError::NoWayOut {
                path: 0,
                step: "a".into(),
            },
        ];
        let codes: BTreeSet<_> = errs.iter().map(code_of).collect();
        assert_eq!(codes.len(), errs.len());
    }
}
