//! `WA020`–`WA022`, `WA035`: control-flow shape of one process level.
//!
//! * `WA020` — an activity with no control connectors at all, in a
//!   process that otherwise uses control flow (an "orphan": it starts
//!   immediately and runs concurrently with everything else, which is
//!   almost always a forgotten connector).
//! * `WA021` — an activity that no start activity can ever reach, no
//!   matter how conditions evaluate (only possible with a cycle, since
//!   the meta-model's start set is "no incoming connectors").
//! * `WA022` — a control cycle, with a witness path `A -> B -> A`.
//!   Subsumes `ValidationError::Cycle`, which names only the process.
//! * `WA035` — an activity that is reachable in the graph but
//!   statically dead: every path to it crosses a connector whose
//!   condition constant-folds to `FALSE` (or is guaranteed to error,
//!   which the engine treats as false). This is how an unreachable
//!   compensation block in translated ATM output is caught.

use crate::{Diagnostic, Lint, ProcessCtx, Severity};
use std::collections::{BTreeMap, BTreeSet};
use txn_substrate::Value;
use wfms_model::{ControlConnector, ProcessDefinition};

/// Control-flow graph lints.
pub struct GraphLint;

/// Whether a connector can never fire: its condition constant-folds
/// to `FALSE` or is statically guaranteed to fail evaluation (the
/// engine maps evaluation errors to "false" plus an audit warning).
pub fn statically_dead(conn: &ControlConnector) -> bool {
    conn.condition.const_value() == Some(Value::Bool(false))
        || conn.condition.const_error().is_some()
}

/// Adjacency over activities that actually exist in the process
/// (connectors to unknown endpoints are WA005's business).
fn adjacency(def: &ProcessDefinition, live_only: bool) -> BTreeMap<&str, Vec<&str>> {
    let names: BTreeSet<&str> = def.activities.iter().map(|a| a.name.as_str()).collect();
    let mut adj: BTreeMap<&str, Vec<&str>> = names.iter().map(|n| (*n, Vec::new())).collect();
    for c in &def.control {
        if !names.contains(c.from.as_str()) || !names.contains(c.to.as_str()) {
            continue;
        }
        if live_only && statically_dead(c) {
            continue;
        }
        adj.get_mut(c.from.as_str())
            .expect("known")
            .push(c.to.as_str());
    }
    adj
}

/// Activities reachable from the start set across syntactically live
/// connectors — everything `WA021`/`WA035` leave unflagged. The
/// constant-propagation pass reports only activities that die *beyond*
/// this set, so one root cause never yields two codes.
pub(crate) fn syntactically_live(def: &ProcessDefinition) -> BTreeSet<&str> {
    reachable(&starts(def), &adjacency(def, true))
}

/// Start activities: no incoming connectors (from known activities).
fn starts(def: &ProcessDefinition) -> BTreeSet<&str> {
    let names: BTreeSet<&str> = def.activities.iter().map(|a| a.name.as_str()).collect();
    let mut has_incoming: BTreeSet<&str> = BTreeSet::new();
    for c in &def.control {
        if names.contains(c.from.as_str()) && names.contains(c.to.as_str()) {
            has_incoming.insert(c.to.as_str());
        }
    }
    names
        .into_iter()
        .filter(|n| !has_incoming.contains(n))
        .collect()
}

fn reachable<'a>(
    starts: &BTreeSet<&'a str>,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
) -> BTreeSet<&'a str> {
    let mut seen: BTreeSet<&str> = starts.clone();
    let mut stack: Vec<&str> = starts.iter().copied().collect();
    while let Some(n) = stack.pop() {
        for next in adj.get(n).into_iter().flatten() {
            if seen.insert(next) {
                stack.push(next);
            }
        }
    }
    seen
}

/// Finds one cycle and returns it as a witness node sequence
/// `[A, B, A]` (first node repeated at the end).
fn find_cycle<'a>(adj: &BTreeMap<&'a str, Vec<&'a str>>) -> Option<Vec<&'a str>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut mark: BTreeMap<&str, Mark> = adj.keys().map(|n| (*n, Mark::White)).collect();

    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        mark: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<&'a str>> {
        mark.insert(node, Mark::Grey);
        stack.push(node);
        for next in adj.get(node).into_iter().flatten() {
            match mark.get(next).copied().unwrap_or(Mark::White) {
                Mark::Grey => {
                    // Witness: from next's position in the stack to
                    // here, then back to next.
                    let from = stack.iter().position(|n| n == next).expect("on stack");
                    let mut cycle: Vec<&str> = stack[from..].to_vec();
                    cycle.push(next);
                    return Some(cycle);
                }
                Mark::White => {
                    if let Some(cycle) = dfs(next, adj, mark, stack) {
                        return Some(cycle);
                    }
                }
                Mark::Black => {}
            }
        }
        stack.pop();
        mark.insert(node, Mark::Black);
        None
    }

    let nodes: Vec<&str> = adj.keys().copied().collect();
    for node in nodes {
        if mark.get(node) == Some(&Mark::White) {
            let mut stack = Vec::new();
            if let Some(cycle) = dfs(node, adj, &mut mark, &mut stack) {
                return Some(cycle);
            }
        }
    }
    None
}

impl Lint for GraphLint {
    fn name(&self) -> &'static str {
        "graph"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["WA020", "WA021", "WA022", "WA035"]
    }

    fn check(&self, ctx: &ProcessCtx<'_>, out: &mut Vec<Diagnostic>) {
        let def = ctx.process;

        // WA020: orphans, only meaningful where control flow exists.
        if !def.control.is_empty() {
            let mut touched: BTreeSet<&str> = BTreeSet::new();
            for c in &def.control {
                touched.insert(c.from.as_str());
                touched.insert(c.to.as_str());
            }
            for a in &def.activities {
                if !touched.contains(a.name.as_str()) {
                    out.push(
                        Diagnostic::new(
                            "WA020",
                            Severity::Warning,
                            &ctx.path,
                            Some(a.name.clone()),
                            format!(
                                "activity {:?} has no control connectors; it starts \
                                 immediately and runs detached from the rest of the process",
                                a.name
                            ),
                        )
                        .with_pos(ctx.pos_activity(&a.name)),
                    );
                }
            }
        }

        // WA022: cycle witness.
        let all_edges = adjacency(def, false);
        if let Some(cycle) = find_cycle(&all_edges) {
            let witness = cycle.join(" -> ");
            let pos = cycle
                .first()
                .and_then(|first| ctx.pos_activity(first))
                .or_else(|| ctx.pos_process());
            out.push(
                Diagnostic::new(
                    "WA022",
                    Severity::Error,
                    &ctx.path,
                    cycle.first().map(|s| s.to_string()),
                    format!("control connectors form a cycle: {witness}"),
                )
                .with_pos(pos),
            );
        }

        // WA021: unreachable from every start, regardless of data.
        let start_set = starts(def);
        let reach_all = reachable(&start_set, &all_edges);
        let mut unreachable: BTreeSet<&str> = BTreeSet::new();
        for a in &def.activities {
            if !reach_all.contains(a.name.as_str()) {
                unreachable.insert(a.name.as_str());
                out.push(
                    Diagnostic::new(
                        "WA021",
                        Severity::Error,
                        &ctx.path,
                        Some(a.name.clone()),
                        format!(
                            "activity {:?} can never start: it is unreachable from \
                             every start activity",
                            a.name
                        ),
                    )
                    .with_pos(ctx.pos_activity(&a.name)),
                );
            }
        }

        // WA035: reachable in the graph, but only across statically
        // false connectors.
        let live_edges = adjacency(def, true);
        let reach_live = reachable(&start_set, &live_edges);
        for a in &def.activities {
            let name = a.name.as_str();
            if reach_all.contains(name) && !reach_live.contains(name) && !unreachable.contains(name)
            {
                out.push(
                    Diagnostic::new(
                        "WA035",
                        Severity::Error,
                        &ctx.path,
                        Some(a.name.clone()),
                        format!(
                            "activity {:?} is statically dead: every control path to it \
                             crosses a connector whose condition is always false",
                            a.name
                        ),
                    )
                    .with_pos(ctx.pos_activity(&a.name)),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let (def, prov) = wfms_fdl::parse_with_provenance(src).unwrap();
        Analyzer::new().check_process(&def, Some(&prov))
    }

    #[test]
    fn orphan_activity_warned() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" END
              ACTIVITY Lost PROGRAM "c" END
              CONTROL FROM A TO B
            END
        "#,
        );
        let d = diags.iter().find(|d| d.code == "WA020").expect("WA020");
        assert_eq!(d.element.as_deref(), Some("Lost"));
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.pos.is_some());
    }

    #[test]
    fn no_orphans_without_control_flow() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" END
            END
        "#,
        );
        assert!(diags.iter().all(|d| d.code != "WA020"), "{diags:?}");
    }

    #[test]
    fn cycle_reported_with_witness() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY S PROGRAM "s" END
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" END
              CONTROL FROM S TO A
              CONTROL FROM A TO B
              CONTROL FROM B TO A
            END
        "#,
        );
        let d = diags.iter().find(|d| d.code == "WA022").expect("WA022");
        assert!(
            d.message.contains("A -> B -> A"),
            "witness in {:?}",
            d.message
        );
    }

    #[test]
    fn unreachable_island_flagged() {
        // A two-node cycle detached from the start activity: neither
        // node has indegree 0, so neither can ever start.
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY S PROGRAM "s" END
              ACTIVITY X PROGRAM "x" END
              ACTIVITY Y PROGRAM "y" END
              CONTROL FROM X TO Y
              CONTROL FROM Y TO X
            END
        "#,
        );
        let unreachable: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "WA021")
            .filter_map(|d| d.element.clone())
            .collect();
        assert_eq!(unreachable, vec!["X".to_string(), "Y".to_string()]);
        assert!(diags.iter().any(|d| d.code == "WA022"));
        // S itself is fine — and not an orphan either, because it is
        // the process's only start.
        assert!(diags
            .iter()
            .all(|d| d.element.as_deref() != Some("S") || d.code == "WA020"));
    }

    #[test]
    fn statically_dead_activity_flagged() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" END
              ACTIVITY C PROGRAM "c" END
              CONTROL FROM A TO B WHEN "1 = 2"
              CONTROL FROM B TO C
            END
        "#,
        );
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "WA035")
            .filter_map(|d| d.element.clone())
            .collect();
        assert_eq!(dead, vec!["B".to_string(), "C".to_string()]);
        // WA031 fires on the connector too, but WA021 must not: the
        // graph shape itself is fine.
        assert!(diags.iter().any(|d| d.code == "WA031"));
        assert!(diags.iter().all(|d| d.code != "WA021"));
    }

    #[test]
    fn alternative_live_path_keeps_activity_alive() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" START OR END
              ACTIVITY C PROGRAM "c" END
              CONTROL FROM A TO B WHEN "1 = 2"
              CONTROL FROM A TO C
              CONTROL FROM C TO B WHEN "RC = 0"
            END
        "#,
        );
        assert!(diags.iter().all(|d| d.code != "WA035"), "{diags:?}");
    }
}
