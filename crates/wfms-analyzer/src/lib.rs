//! # wfms-analyzer
//!
//! A unified static-analysis and lint pass over compiled workflow
//! process graphs ([`wfms_model::ProcessDefinition`]) and
//! advanced-transaction-model specifications ([`atm::SagaSpec`],
//! [`atm::FlexSpec`]).
//!
//! The paper's Figure 5 pipeline runs a *translator* that "checks the
//! semantics" of an imported definition before it reaches the engine.
//! This crate extends that checkpoint from hard meta-model rules to a
//! full lint battery: every finding is a [`Diagnostic`] with a stable
//! `WA0xx` code, a [`Severity`], the slash-separated process path, and
//! — when the definition came from FDL text — the source position of
//! the offending element via [`wfms_fdl::Provenance`].
//!
//! Code ranges (see `docs/analyzer.md` for the full table):
//!
//! * `WA001`–`WA015` — meta-model rules lifted from
//!   [`wfms_model::validate()`] (severity error).
//! * `WA020`–`WA022` — control-flow graph shape: orphan activities,
//!   unreachable activities, cycles with a witness path.
//! * `WA031`–`WA035` — condition analysis via constant folding on
//!   [`wfms_model::Expr`]: statically false/true conditions,
//!   guaranteed evaluation errors, statically dead activities.
//! * `WA041`–`WA043` — data-flow def-use over containers:
//!   read-before-write, overwritten writes, dead writes.
//! * `WA051`–`WA057` — ATM-level rules: the S/F well-formedness
//!   conditions of [`atm::wellformed`] plus saga pivot placement.
//! * `WA101`–`WA108` — semantic passes on the [`dataflow::framework`]
//!   fixpoint engine: feasible-path def-use, graph-wide constant
//!   propagation (shared with the engine's template optimizer),
//!   compensation soundness with witness paths, and deadline
//!   feasibility with critical-path bounds.
//!
//! Every code has a prose explanation via [`explain`], surfaced by
//! `fmtm lint --explain CODE`.
//!
//! ```
//! let src = r#"
//!     PROCESS p
//!       ACTIVITY A PROGRAM "a" END
//!       ACTIVITY B PROGRAM "b" END
//!       CONTROL FROM A TO B WHEN "1 = 2"
//!     END
//! "#;
//! let (def, prov) = wfms_fdl::parse_with_provenance(src).unwrap();
//! let diags = wfms_analyzer::Analyzer::new().check_process(&def, Some(&prov));
//! assert!(diags.iter().any(|d| d.code == "WA031")); // always-false connector
//! assert!(diags.iter().any(|d| d.code == "WA035")); // B statically dead
//! ```

pub mod atmlint;
pub mod conditions;
pub mod dataflow;
pub mod graph;
pub mod model;

use std::collections::BTreeSet;
use std::fmt;

use wfms_fdl::{Pos, Provenance};
use wfms_model::{ActivityKind, ProcessDefinition};

/// How serious a finding is.
///
/// Ordered by severity: `Error < Warning < Note` in sort order so the
/// most severe findings list first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The process will misbehave at run time (or violates a hard
    /// model rule); the Exotica pipeline refuses to ship it.
    Error,
    /// Suspicious but not definitely broken.
    Warning,
    /// Stylistic or informational.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"WA021"`.
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Slash-separated process path (`outer/Fwd`), or the spec name
    /// for ATM-level findings.
    pub process: String,
    /// The element concerned — an activity, connector label, or step
    /// name — when the finding is narrower than the whole process.
    pub element: Option<String>,
    /// Human-readable description.
    pub message: String,
    /// Source position in the originating FDL or spec text, when the
    /// definition was parsed from text.
    pub pos: Option<Pos>,
}

impl Diagnostic {
    /// Builds a position-less diagnostic.
    pub fn new(
        code: &'static str,
        severity: Severity,
        process: impl Into<String>,
        element: Option<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity,
            process: process.into(),
            element,
            message: message.into(),
            pos: None,
        }
    }

    /// Attaches a source position.
    pub fn with_pos(mut self, pos: Option<Pos>) -> Self {
        self.pos = pos;
        self
    }

    /// Renders the finding for terminals:
    /// `error[WA021] at 3:5: [p] activity "B" can never start`.
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]", self.severity, self.code);
        if let Some(pos) = self.pos {
            out.push_str(&format!(" at {pos}"));
        }
        out.push_str(": ");
        if !self.process.is_empty() {
            out.push_str(&format!("[{}] ", self.process));
        }
        out.push_str(&self.message);
        out
    }

    /// Renders the finding as a JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"code\":{}", json_str(self.code)),
            format!("\"severity\":{}", json_str(&self.severity.to_string())),
            format!("\"process\":{}", json_str(&self.process)),
        ];
        if let Some(e) = &self.element {
            fields.push(format!("\"element\":{}", json_str(e)));
        }
        if let Some(pos) = self.pos {
            fields.push(format!("\"line\":{}", pos.line));
            fields.push(format!("\"col\":{}", pos.col));
        }
        fields.push(format!("\"message\":{}", json_str(&self.message)));
        format!("{{{}}}", fields.join(","))
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders a slice of diagnostics as a JSON array.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Everything a process-level lint can see: the process under
/// analysis, its slash path, and optional source provenance.
pub struct ProcessCtx<'a> {
    /// The process (or nested block) being checked.
    pub process: &'a ProcessDefinition,
    /// Slash-separated path from the root definition.
    pub path: String,
    /// Source positions, when the definition came from FDL text.
    pub provenance: Option<&'a Provenance>,
}

impl ProcessCtx<'_> {
    /// Position of an activity in this process, if known.
    pub fn pos_activity(&self, name: &str) -> Option<Pos> {
        self.provenance.and_then(|p| p.activity(&self.path, name))
    }

    /// Position of a control connector in this process, if known.
    pub fn pos_control(&self, from: &str, to: &str) -> Option<Pos> {
        self.provenance
            .and_then(|p| p.control(&self.path, from, to))
    }

    /// Position of a data connector (by `from => to` label), if known.
    pub fn pos_data(&self, label: &str) -> Option<Pos> {
        self.provenance.and_then(|p| p.data(&self.path, label))
    }

    /// Position of the process header itself, if known.
    pub fn pos_process(&self) -> Option<Pos> {
        self.provenance.and_then(|p| p.process(&self.path))
    }
}

/// A single lint pass over one process level.
///
/// Implementations push findings into `out`; the [`Analyzer`] walks
/// nested blocks and applies the allow-list afterwards.
pub trait Lint {
    /// Short machine name (`"graph"`, `"dataflow"`, …).
    fn name(&self) -> &'static str;

    /// The diagnostic codes this lint can emit.
    fn codes(&self) -> &'static [&'static str];

    /// `true` if the lint must run only once, at the root definition
    /// (used by lints that recurse into blocks themselves).
    fn root_only(&self) -> bool {
        false
    }

    /// Runs the lint over one process level.
    fn check(&self, ctx: &ProcessCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// The analyzer: a configured battery of [`Lint`]s plus an allow-list
/// of suppressed codes.
pub struct Analyzer {
    lints: Vec<Box<dyn Lint>>,
    allowed: BTreeSet<String>,
}

impl Default for Analyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl Analyzer {
    /// An analyzer with the full built-in battery.
    pub fn new() -> Self {
        Self {
            lints: vec![
                Box::new(model::ModelLint),
                Box::new(graph::GraphLint),
                Box::new(conditions::ConditionLint),
                Box::new(dataflow::DataFlowLint),
                Box::new(dataflow::LivenessLint),
                Box::new(dataflow::ConstPropLint),
                Box::new(dataflow::DeadlineLint),
            ],
            allowed: BTreeSet::new(),
        }
    }

    /// An analyzer with no built-in lints (add custom ones with
    /// [`Analyzer::with_lint`]).
    pub fn empty() -> Self {
        Self {
            lints: Vec::new(),
            allowed: BTreeSet::new(),
        }
    }

    /// Adds a lint pass.
    pub fn with_lint(mut self, lint: Box<dyn Lint>) -> Self {
        self.lints.push(lint);
        self
    }

    /// Suppresses a diagnostic code (e.g. `"WA032"`).
    pub fn allow(mut self, code: &str) -> Self {
        self.allowed.insert(code.to_owned());
        self
    }

    /// Runs every applicable lint over the definition and all nested
    /// blocks, returning findings sorted by severity, then position.
    pub fn check_process(
        &self,
        def: &ProcessDefinition,
        provenance: Option<&Provenance>,
    ) -> Vec<Diagnostic> {
        self.check_process_timed(def, provenance).0
    }

    /// Like [`Analyzer::check_process`], additionally returning the
    /// wall-clock nanoseconds each lint pass spent, summed over all
    /// nested scopes, in battery order. The Exotica pipeline surfaces
    /// these as `analyze:<pass>` entries in its per-stage timings.
    pub fn check_process_timed(
        &self,
        def: &ProcessDefinition,
        provenance: Option<&Provenance>,
    ) -> (Vec<Diagnostic>, Vec<(&'static str, u128)>) {
        let mut out = Vec::new();
        let mut nanos: Vec<(&'static str, u128)> =
            self.lints.iter().map(|l| (l.name(), 0)).collect();
        self.walk(
            def,
            def.name.clone(),
            provenance,
            true,
            &mut out,
            &mut nanos,
        );
        (self.finish(out), nanos)
    }

    fn walk(
        &self,
        def: &ProcessDefinition,
        path: String,
        provenance: Option<&Provenance>,
        is_root: bool,
        out: &mut Vec<Diagnostic>,
        nanos: &mut [(&'static str, u128)],
    ) {
        let ctx = ProcessCtx {
            process: def,
            path: path.clone(),
            provenance,
        };
        for (lint, pass_nanos) in self.lints.iter().zip(nanos.iter_mut()) {
            if lint.root_only() && !is_root {
                continue;
            }
            let started = std::time::Instant::now();
            lint.check(&ctx, out);
            pass_nanos.1 += started.elapsed().as_nanos();
        }
        for act in &def.activities {
            if let ActivityKind::Block { process } = &act.kind {
                self.walk(
                    process,
                    format!("{path}/{}", process.name),
                    provenance,
                    false,
                    out,
                    nanos,
                );
            }
        }
    }

    /// Checks a saga specification against the ATM-level lints.
    pub fn check_saga(&self, spec: &atm::SagaSpec) -> Vec<Diagnostic> {
        self.finish(atmlint::check_saga_spec(spec))
    }

    /// Checks a flexible-transaction specification against the
    /// ATM-level lints.
    pub fn check_flex(&self, spec: &atm::FlexSpec) -> Vec<Diagnostic> {
        self.finish(atmlint::check_flex_spec(spec))
    }

    fn finish(&self, mut out: Vec<Diagnostic>) -> Vec<Diagnostic> {
        out.retain(|d| !self.allowed.contains(d.code));
        out.sort_by(|a, b| {
            (
                a.severity,
                &a.process,
                a.pos.map(|p| (p.line, p.col)),
                a.code,
            )
                .cmp(&(
                    b.severity,
                    &b.process,
                    b.pos.map(|p| (p.line, p.col)),
                    b.code,
                ))
        });
        out.dedup();
        out
    }
}

/// Whether any finding is [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// A prose explanation of a diagnostic code — what the finding means,
/// why it matters, and the usual fix. Backs `fmtm lint --explain`.
/// Returns `None` for unknown codes.
pub fn explain(code: &str) -> Option<&'static str> {
    Some(match code {
        "WA001" => {
            "The process declares no activities. An empty process can never \
             produce work items; the navigator would finish it immediately. \
             Add at least one activity."
        }
        "WA002" => {
            "Two activities in the same scope share a name. Control and data \
             connectors address activities by name, so the reference is \
             ambiguous. Rename one of them."
        }
        "WA003" => {
            "A data container declares the same member twice. Later \
             declarations would silently shadow earlier ones. Remove or \
             rename the duplicate."
        }
        "WA004" => {
            "A program activity has an empty program name, so the resource \
             broker has nothing to invoke. Name the registered program the \
             activity should run."
        }
        "WA005" => {
            "A control connector names an activity that does not exist in \
             this scope. Fix the typo or add the missing activity."
        }
        "WA006" => {
            "A control connector loops an activity back to itself. The \
             navigator model is acyclic (loops are expressed by blocks with \
             exit conditions); a self-loop can never be scheduled."
        }
        "WA007" => {
            "Two control connectors join the same ordered pair of \
             activities. The second is either redundant or a contradiction; \
             merge the conditions into one connector."
        }
        "WA008" => {
            "A data connector flows in an impossible direction, e.g. from an \
             activity's input or into an activity's output. Data flows from \
             outputs (or the process input) to inputs (or the process \
             output)."
        }
        "WA009" => {
            "A data connector names an activity that does not exist in this \
             scope. Fix the typo or add the missing activity."
        }
        "WA010" => {
            "A data mapping names a container member that the endpoint's \
             schema does not declare. Check the member lists of the source \
             and target containers."
        }
        "WA011" => {
            "A data mapping connects members of different declared types. \
             The materializer would fail at run time; align the types or map \
             a different member."
        }
        "WA012" => {
            "A data connector runs against control flow: the reader is not \
             a control-flow descendant of the writer, so the value may not \
             exist when the reader starts. Add a control connector or \
             reverse the mapping."
        }
        "WA013" => {
            "A condition references a variable that is neither a member of \
             the source activity's output container nor the reserved RC. \
             At run time the lookup errors and the condition evaluates \
             false. Declare the member or fix the name."
        }
        "WA014" => {
            "The reserved member RC is declared with a non-integer type. \
             The engine writes the program's integer return code there; a \
             different type can never be satisfied."
        }
        "WA015" => {
            "A block activity's containers do not match the sub-process \
             they wrap: members missing or typed differently. The navigator \
             copies containers across the boundary member-by-member, so the \
             schemas must agree."
        }
        "WA020" => {
            "An activity has no control connectors at all. It becomes a \
             start activity and runs detached from the rest of the process \
             — usually a forgotten connector rather than an intended \
             parallel branch."
        }
        "WA021" => {
            "An activity is unreachable from every start activity: no chain \
             of control connectors leads to it, so it can never start. \
             Connect it or delete it."
        }
        "WA022" => {
            "Control connectors form a cycle. Navigation would deadlock: \
             each activity in the cycle waits for a predecessor inside the \
             same cycle. The paper's model is a DAG; iteration belongs in a \
             block with an exit condition."
        }
        "WA031" => {
            "A transition condition is constant false on its own (no \
             run-time data needed). The connector can never fire; its \
             target may be dead code. Delete the connector or fix the \
             condition."
        }
        "WA032" => {
            "A condition is constant true, so the test is redundant: the \
             connector is effectively unconditional (or the exit condition \
             always satisfied). Drop the WHEN clause to state the intent."
        }
        "WA033" => {
            "An exit condition can never evaluate true — it is constant \
             false or always errors. The navigator would reschedule the \
             activity forever; the process cannot terminate."
        }
        "WA034" => {
            "A condition always fails to evaluate (type error, division by \
             zero, unset variable) regardless of data. The engine treats \
             evaluation errors as false, so the connector silently never \
             fires."
        }
        "WA035" => {
            "An activity is reachable in the raw graph, but every control \
             path to it crosses a connector whose condition is constant \
             false. It is statically dead without any propagation needed."
        }
        "WA041" => {
            "An activity reads an input member that no data connector \
             writes and that has no DEFAULT. The member would be unset at \
             run time and any condition or program reading it errors."
        }
        "WA042" => {
            "One sink member is written several times from the same source \
             endpoint. The materializer applies writes in connector order; \
             later writes silently overwrite earlier ones."
        }
        "WA043" => {
            "A declared output member is never read by any data connector \
             or condition — a dead write. Either wire it somewhere or \
             remove the declaration."
        }
        "WA051" => {
            "The transaction specification is structurally broken: empty \
             stages or paths, duplicate or unknown step names. Fix the \
             structure before the semantic rules can be checked."
        }
        "WA052" => {
            "A saga step is neither compensatable nor the pivot-free tail: \
             sagas require every step that commits early to be undoable. \
             Give the step a compensation or make it retriable."
        }
        "WA053" => {
            "A step declares a compensation that does not match a \
             registered program (or a compensatable class without naming \
             one). The recovery manager would have nothing to run."
        }
        "WA054" => {
            "A non-compensatable step sits between two pivots. Once the \
             first pivot commits, recovery can neither roll back across \
             this step nor complete forward past it."
        }
        "WA055" => {
            "The last alternative path of a flexible transaction contains a \
             step that may fail without compensation. The final fallback \
             must be guaranteed — retriable steps only — or the whole \
             transaction can wedge."
        }
        "WA056" => {
            "A step can fail with no way out: no fallback path to switch \
             to and no compensation chain back. Every reachable failure \
             needs either a forward alternative or a backward recovery."
        }
        "WA057" => {
            "A non-compensatable step is followed by steps that may still \
             fail. Once it commits, a later abort cannot roll back past it. \
             Move the pivot later, or make the following steps retriable."
        }
        "WA101" => {
            "Dataflow liveness found a feasible path on which an input \
             member is read before any of its writers has executed — the \
             diagnostic names one such witness path. Add a control \
             dependency on a writer, or give the member a DEFAULT."
        }
        "WA102" => {
            "A data connector's source or sink activity is statically dead, \
             so the value it carries is never produced or never consumed. \
             The connector is a dead write; remove it or revive the \
             endpoint."
        }
        "WA103" => {
            "Constant propagation decided a transition condition always \
             false: substituting the completion facts pinned by upstream \
             activities (a no-op's RC = 1, an exit condition's RC = k) \
             folds it to false. The connector can never fire even though \
             the condition is dynamic in isolation."
        }
        "WA104" => {
            "Constant propagation decided a transition condition always \
             true given upstream completion facts. The test is redundant; \
             the template optimizer replaces it with an unconditional \
             connector."
        }
        "WA105" => {
            "An activity is statically dead under constant propagation: \
             every control path to it crosses a connector decided false by \
             upstream constants (or a dead predecessor). The template \
             optimizer prunes it; it will never run."
        }
        "WA106" => {
            "Compensation soundness: from this failure point, backward \
             recovery cannot reach a consistent state. The diagnostic shows \
             a witness execution (failing step starred) and the committed \
             step the compensation chain wedges against. Give that step a \
             compensation, make later steps retriable, or add a fallback \
             path covering the failure."
        }
        "WA107" => {
            "A manual activity declares DEADLINE 0. Deadlines are measured \
             from the moment the work item becomes ready (ready_since + \
             deadline <= now), so a zero-tick deadline escalates on the \
             first scheduler scan — no schedule can meet it. The message \
             includes the scope's critical-path bounds for calibration."
        }
        "WA108" => {
            "A deadline is declared on an activity that can never sit on a \
             worklist — it is automatic (started by the navigator, never \
             claimed) or statically dead. The deadline can never fire; \
             remove it or make the activity manual."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_errors_first() {
        assert!(Severity::Error < Severity::Warning);
        assert!(Severity::Warning < Severity::Note);
    }

    #[test]
    fn render_includes_code_position_and_path() {
        let d = Diagnostic::new(
            "WA021",
            Severity::Error,
            "p",
            Some("B".into()),
            "activity \"B\" can never start",
        )
        .with_pos(Some(Pos { line: 3, col: 5 }));
        assert_eq!(
            d.render(),
            "error[WA021] at 3:5: [p] activity \"B\" can never start"
        );
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let d = Diagnostic::new("WA013", Severity::Warning, "p", None, "unknown \"var\"\n");
        assert_eq!(
            d.to_json(),
            "{\"code\":\"WA013\",\"severity\":\"warning\",\"process\":\"p\",\
             \"message\":\"unknown \\\"var\\\"\\n\"}"
        );
        let arr = render_json(&[d.clone(), d]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("WA013").count(), 2);
    }

    #[test]
    fn allow_filters_codes() {
        let src = r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" END
              CONTROL FROM A TO B WHEN "1 = 1"
            END
        "#;
        let (def, prov) = wfms_fdl::parse_with_provenance(src).unwrap();
        let diags = Analyzer::new().check_process(&def, Some(&prov));
        assert!(diags.iter().any(|d| d.code == "WA032"));
        let diags = Analyzer::new()
            .allow("WA032")
            .check_process(&def, Some(&prov));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn clean_process_has_no_findings() {
        let src = r#"
            PROCESS p
              OUTPUT ( total: INT )
              ACTIVITY A PROGRAM "a" OUTPUT ( x: INT ) END
              ACTIVITY B PROGRAM "b" INPUT ( y: INT ) OUTPUT ( total: INT ) END
              CONTROL FROM A TO B WHEN "RC = 0"
              DATA FROM A.OUTPUT TO B.INPUT MAP x -> y
              DATA FROM B.OUTPUT TO PROCESS.OUTPUT MAP total -> total
            END
        "#;
        let (def, prov) = wfms_fdl::parse_with_provenance(src).unwrap();
        let diags = Analyzer::new().check_process(&def, Some(&prov));
        assert!(diags.is_empty(), "{diags:?}");
    }
}
