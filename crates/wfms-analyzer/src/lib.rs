//! # wfms-analyzer
//!
//! A unified static-analysis and lint pass over compiled workflow
//! process graphs ([`wfms_model::ProcessDefinition`]) and
//! advanced-transaction-model specifications ([`atm::SagaSpec`],
//! [`atm::FlexSpec`]).
//!
//! The paper's Figure 5 pipeline runs a *translator* that "checks the
//! semantics" of an imported definition before it reaches the engine.
//! This crate extends that checkpoint from hard meta-model rules to a
//! full lint battery: every finding is a [`Diagnostic`] with a stable
//! `WA0xx` code, a [`Severity`], the slash-separated process path, and
//! — when the definition came from FDL text — the source position of
//! the offending element via [`wfms_fdl::Provenance`].
//!
//! Code ranges (see `docs/analyzer.md` for the full table):
//!
//! * `WA001`–`WA015` — meta-model rules lifted from
//!   [`wfms_model::validate()`] (severity error).
//! * `WA020`–`WA022` — control-flow graph shape: orphan activities,
//!   unreachable activities, cycles with a witness path.
//! * `WA031`–`WA035` — condition analysis via constant folding on
//!   [`wfms_model::Expr`]: statically false/true conditions,
//!   guaranteed evaluation errors, statically dead activities.
//! * `WA041`–`WA043` — data-flow def-use over containers:
//!   read-before-write, overwritten writes, dead writes.
//! * `WA051`–`WA057` — ATM-level rules: the S/F well-formedness
//!   conditions of [`atm::wellformed`] plus saga pivot placement.
//!
//! ```
//! let src = r#"
//!     PROCESS p
//!       ACTIVITY A PROGRAM "a" END
//!       ACTIVITY B PROGRAM "b" END
//!       CONTROL FROM A TO B WHEN "1 = 2"
//!     END
//! "#;
//! let (def, prov) = wfms_fdl::parse_with_provenance(src).unwrap();
//! let diags = wfms_analyzer::Analyzer::new().check_process(&def, Some(&prov));
//! assert!(diags.iter().any(|d| d.code == "WA031")); // always-false connector
//! assert!(diags.iter().any(|d| d.code == "WA035")); // B statically dead
//! ```

pub mod atmlint;
pub mod conditions;
pub mod dataflow;
pub mod graph;
pub mod model;

use std::collections::BTreeSet;
use std::fmt;

use wfms_fdl::{Pos, Provenance};
use wfms_model::{ActivityKind, ProcessDefinition};

/// How serious a finding is.
///
/// Ordered by severity: `Error < Warning < Note` in sort order so the
/// most severe findings list first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The process will misbehave at run time (or violates a hard
    /// model rule); the Exotica pipeline refuses to ship it.
    Error,
    /// Suspicious but not definitely broken.
    Warning,
    /// Stylistic or informational.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"WA021"`.
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Slash-separated process path (`outer/Fwd`), or the spec name
    /// for ATM-level findings.
    pub process: String,
    /// The element concerned — an activity, connector label, or step
    /// name — when the finding is narrower than the whole process.
    pub element: Option<String>,
    /// Human-readable description.
    pub message: String,
    /// Source position in the originating FDL or spec text, when the
    /// definition was parsed from text.
    pub pos: Option<Pos>,
}

impl Diagnostic {
    /// Builds a position-less diagnostic.
    pub fn new(
        code: &'static str,
        severity: Severity,
        process: impl Into<String>,
        element: Option<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity,
            process: process.into(),
            element,
            message: message.into(),
            pos: None,
        }
    }

    /// Attaches a source position.
    pub fn with_pos(mut self, pos: Option<Pos>) -> Self {
        self.pos = pos;
        self
    }

    /// Renders the finding for terminals:
    /// `error[WA021] at 3:5: [p] activity "B" can never start`.
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]", self.severity, self.code);
        if let Some(pos) = self.pos {
            out.push_str(&format!(" at {pos}"));
        }
        out.push_str(": ");
        if !self.process.is_empty() {
            out.push_str(&format!("[{}] ", self.process));
        }
        out.push_str(&self.message);
        out
    }

    /// Renders the finding as a JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"code\":{}", json_str(self.code)),
            format!("\"severity\":{}", json_str(&self.severity.to_string())),
            format!("\"process\":{}", json_str(&self.process)),
        ];
        if let Some(e) = &self.element {
            fields.push(format!("\"element\":{}", json_str(e)));
        }
        if let Some(pos) = self.pos {
            fields.push(format!("\"line\":{}", pos.line));
            fields.push(format!("\"col\":{}", pos.col));
        }
        fields.push(format!("\"message\":{}", json_str(&self.message)));
        format!("{{{}}}", fields.join(","))
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders a slice of diagnostics as a JSON array.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Everything a process-level lint can see: the process under
/// analysis, its slash path, and optional source provenance.
pub struct ProcessCtx<'a> {
    /// The process (or nested block) being checked.
    pub process: &'a ProcessDefinition,
    /// Slash-separated path from the root definition.
    pub path: String,
    /// Source positions, when the definition came from FDL text.
    pub provenance: Option<&'a Provenance>,
}

impl ProcessCtx<'_> {
    /// Position of an activity in this process, if known.
    pub fn pos_activity(&self, name: &str) -> Option<Pos> {
        self.provenance.and_then(|p| p.activity(&self.path, name))
    }

    /// Position of a control connector in this process, if known.
    pub fn pos_control(&self, from: &str, to: &str) -> Option<Pos> {
        self.provenance
            .and_then(|p| p.control(&self.path, from, to))
    }

    /// Position of a data connector (by `from => to` label), if known.
    pub fn pos_data(&self, label: &str) -> Option<Pos> {
        self.provenance.and_then(|p| p.data(&self.path, label))
    }

    /// Position of the process header itself, if known.
    pub fn pos_process(&self) -> Option<Pos> {
        self.provenance.and_then(|p| p.process(&self.path))
    }
}

/// A single lint pass over one process level.
///
/// Implementations push findings into `out`; the [`Analyzer`] walks
/// nested blocks and applies the allow-list afterwards.
pub trait Lint {
    /// Short machine name (`"graph"`, `"dataflow"`, …).
    fn name(&self) -> &'static str;

    /// The diagnostic codes this lint can emit.
    fn codes(&self) -> &'static [&'static str];

    /// `true` if the lint must run only once, at the root definition
    /// (used by lints that recurse into blocks themselves).
    fn root_only(&self) -> bool {
        false
    }

    /// Runs the lint over one process level.
    fn check(&self, ctx: &ProcessCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// The analyzer: a configured battery of [`Lint`]s plus an allow-list
/// of suppressed codes.
pub struct Analyzer {
    lints: Vec<Box<dyn Lint>>,
    allowed: BTreeSet<String>,
}

impl Default for Analyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl Analyzer {
    /// An analyzer with the full built-in battery.
    pub fn new() -> Self {
        Self {
            lints: vec![
                Box::new(model::ModelLint),
                Box::new(graph::GraphLint),
                Box::new(conditions::ConditionLint),
                Box::new(dataflow::DataFlowLint),
            ],
            allowed: BTreeSet::new(),
        }
    }

    /// An analyzer with no built-in lints (add custom ones with
    /// [`Analyzer::with_lint`]).
    pub fn empty() -> Self {
        Self {
            lints: Vec::new(),
            allowed: BTreeSet::new(),
        }
    }

    /// Adds a lint pass.
    pub fn with_lint(mut self, lint: Box<dyn Lint>) -> Self {
        self.lints.push(lint);
        self
    }

    /// Suppresses a diagnostic code (e.g. `"WA032"`).
    pub fn allow(mut self, code: &str) -> Self {
        self.allowed.insert(code.to_owned());
        self
    }

    /// Runs every applicable lint over the definition and all nested
    /// blocks, returning findings sorted by severity, then position.
    pub fn check_process(
        &self,
        def: &ProcessDefinition,
        provenance: Option<&Provenance>,
    ) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        self.walk(def, def.name.clone(), provenance, true, &mut out);
        self.finish(out)
    }

    fn walk(
        &self,
        def: &ProcessDefinition,
        path: String,
        provenance: Option<&Provenance>,
        is_root: bool,
        out: &mut Vec<Diagnostic>,
    ) {
        let ctx = ProcessCtx {
            process: def,
            path: path.clone(),
            provenance,
        };
        for lint in &self.lints {
            if lint.root_only() && !is_root {
                continue;
            }
            lint.check(&ctx, out);
        }
        for act in &def.activities {
            if let ActivityKind::Block { process } = &act.kind {
                self.walk(
                    process,
                    format!("{path}/{}", process.name),
                    provenance,
                    false,
                    out,
                );
            }
        }
    }

    /// Checks a saga specification against the ATM-level lints.
    pub fn check_saga(&self, spec: &atm::SagaSpec) -> Vec<Diagnostic> {
        self.finish(atmlint::check_saga_spec(spec))
    }

    /// Checks a flexible-transaction specification against the
    /// ATM-level lints.
    pub fn check_flex(&self, spec: &atm::FlexSpec) -> Vec<Diagnostic> {
        self.finish(atmlint::check_flex_spec(spec))
    }

    fn finish(&self, mut out: Vec<Diagnostic>) -> Vec<Diagnostic> {
        out.retain(|d| !self.allowed.contains(d.code));
        out.sort_by(|a, b| {
            (
                a.severity,
                &a.process,
                a.pos.map(|p| (p.line, p.col)),
                a.code,
            )
                .cmp(&(
                    b.severity,
                    &b.process,
                    b.pos.map(|p| (p.line, p.col)),
                    b.code,
                ))
        });
        out.dedup();
        out
    }
}

/// Whether any finding is [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_errors_first() {
        assert!(Severity::Error < Severity::Warning);
        assert!(Severity::Warning < Severity::Note);
    }

    #[test]
    fn render_includes_code_position_and_path() {
        let d = Diagnostic::new(
            "WA021",
            Severity::Error,
            "p",
            Some("B".into()),
            "activity \"B\" can never start",
        )
        .with_pos(Some(Pos { line: 3, col: 5 }));
        assert_eq!(
            d.render(),
            "error[WA021] at 3:5: [p] activity \"B\" can never start"
        );
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let d = Diagnostic::new("WA013", Severity::Warning, "p", None, "unknown \"var\"\n");
        assert_eq!(
            d.to_json(),
            "{\"code\":\"WA013\",\"severity\":\"warning\",\"process\":\"p\",\
             \"message\":\"unknown \\\"var\\\"\\n\"}"
        );
        let arr = render_json(&[d.clone(), d]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("WA013").count(), 2);
    }

    #[test]
    fn allow_filters_codes() {
        let src = r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" END
              CONTROL FROM A TO B WHEN "1 = 1"
            END
        "#;
        let (def, prov) = wfms_fdl::parse_with_provenance(src).unwrap();
        let diags = Analyzer::new().check_process(&def, Some(&prov));
        assert!(diags.iter().any(|d| d.code == "WA032"));
        let diags = Analyzer::new()
            .allow("WA032")
            .check_process(&def, Some(&prov));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn clean_process_has_no_findings() {
        let src = r#"
            PROCESS p
              OUTPUT ( total: INT )
              ACTIVITY A PROGRAM "a" OUTPUT ( x: INT ) END
              ACTIVITY B PROGRAM "b" INPUT ( y: INT ) OUTPUT ( total: INT ) END
              CONTROL FROM A TO B WHEN "RC = 0"
              DATA FROM A.OUTPUT TO B.INPUT MAP x -> y
              DATA FROM B.OUTPUT TO PROCESS.OUTPUT MAP total -> total
            END
        "#;
        let (def, prov) = wfms_fdl::parse_with_provenance(src).unwrap();
        let diags = Analyzer::new().check_process(&def, Some(&prov));
        assert!(diags.is_empty(), "{diags:?}");
    }
}
