//! A generic monotone fixpoint framework over compiled scopes.
//!
//! Every semantic pass in this crate is an instance of the same
//! scheme: attach a *fact* from a lattice to each activity of a
//! [`CompiledScope`], propagate facts along the control edges already
//! flattened into the scope's CSR adjacency (`incoming`/`outgoing`
//! per activity), and iterate to a fixpoint.
//!
//! # Transfer-function contract
//!
//! An [`Analysis`] supplies five pieces (see `docs/analyzer.md` for
//! the worked contract):
//!
//! * [`Analysis::top`] — the optimistic initial assumption for every
//!   activity. Iteration only ever moves facts *down* from here, so
//!   `top` must be the lattice's greatest element for the analysis to
//!   converge on cyclic graphs.
//! * [`Analysis::boundary`] — the fact entering an activity with no
//!   relevant edges (no incoming edges for a forward analysis, no
//!   outgoing for a backward one).
//! * [`Analysis::edge_fact`] — one edge's contribution, given the
//!   current fact at its far side (`from`'s output when forward,
//!   `to`'s output when backward). Returning `None` removes the edge
//!   from the merge — how passes ignore statically dead edges.
//! * [`Analysis::merge`] — combines edge contributions at a join. The
//!   activity id is provided so the merge can honour its
//!   [`StartCondition`](wfms_model::StartCondition) (AND joins
//!   typically union/maximise, OR joins intersect/minimise). The
//!   contribution list may be empty when every edge returned `None`.
//! * [`Analysis::transfer`] — the monotone transfer function mapping
//!   an activity's input fact to its output fact.
//!
//! The solver does plain round-robin iteration: correct for any
//! monotone analysis regardless of declaration order, and O(n·d)
//! rounds in the worst case (d the graph diameter). Process scopes
//! are small — tens of activities — so no worklist or priority order
//! is warranted. Iteration is bounded; [`Solution::converged`] is
//! `false` if the bound was hit (only possible on cyclic graphs,
//! which `WA022` reports independently), and passes are expected to
//! stay silent rather than report from a half-converged solution.

use wfms_engine::compiled::{ActId, CompiledScope, EdgeId};

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from start activities toward terminals, merged over
    /// incoming edges.
    Forward,
    /// Facts flow from terminals toward start activities, merged over
    /// outgoing edges.
    Backward,
}

/// One dataflow analysis: a lattice of facts plus the functions of the
/// monotone framework.
pub trait Analysis {
    /// The lattice element attached to each activity.
    type Fact: Clone + PartialEq;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// The optimistic initial fact assumed for every activity before
    /// the first round.
    fn top(&self, scope: &CompiledScope) -> Self::Fact;

    /// The fact entering an activity with no relevant edges.
    fn boundary(&self, scope: &CompiledScope, act: ActId) -> Self::Fact;

    /// One edge's contribution given the current output fact at its
    /// far side; `None` drops the edge from the merge.
    fn edge_fact(
        &self,
        scope: &CompiledScope,
        edge: EdgeId,
        upstream: &Self::Fact,
    ) -> Option<Self::Fact>;

    /// Combines edge contributions at a join (possibly empty).
    fn merge(
        &self,
        scope: &CompiledScope,
        act: ActId,
        contributions: Vec<Self::Fact>,
    ) -> Self::Fact;

    /// The transfer function through one activity.
    fn transfer(&self, scope: &CompiledScope, act: ActId, input: &Self::Fact) -> Self::Fact;
}

/// The fixpoint: per-activity input and output facts.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at each activity's entry (indexed by [`ActId`]).
    pub input: Vec<F>,
    /// Fact at each activity's exit, i.e. `transfer(input)`.
    pub output: Vec<F>,
    /// Rounds iterated until the fixpoint (or the bound).
    pub rounds: usize,
    /// False when the iteration bound was hit before stabilising —
    /// only possible on cyclic graphs.
    pub converged: bool,
}

/// Runs `analysis` to a fixpoint over one scope.
pub fn solve<A: Analysis>(analysis: &A, scope: &CompiledScope) -> Solution<A::Fact> {
    let n = scope.acts.len();
    let mut input: Vec<A::Fact> = (0..n).map(|_| analysis.top(scope)).collect();
    let mut output: Vec<A::Fact> = input.clone();

    // Round-robin over arbitrary declaration order needs at most one
    // round per graph level plus one to detect stability; 2n + 2
    // covers any acyclic scope with slack for the final check.
    let bound = 2 * n + 2;
    let mut rounds = 0;
    let mut converged = false;
    while rounds < bound {
        rounds += 1;
        let mut changed = false;
        for i in 0..n {
            let act = &scope.acts[i];
            let edges = match analysis.direction() {
                Direction::Forward => &act.incoming,
                Direction::Backward => &act.outgoing,
            };
            let new_in = if edges.is_empty() {
                analysis.boundary(scope, i as ActId)
            } else {
                let mut contributions = Vec::with_capacity(edges.len());
                for &e in edges {
                    let far = match analysis.direction() {
                        Direction::Forward => scope.edges[e as usize].from,
                        Direction::Backward => scope.edges[e as usize].to,
                    };
                    if let Some(f) = analysis.edge_fact(scope, e, &output[far as usize]) {
                        contributions.push(f);
                    }
                }
                analysis.merge(scope, i as ActId, contributions)
            };
            let new_out = analysis.transfer(scope, i as ActId, &new_in);
            if new_in != input[i] || new_out != output[i] {
                input[i] = new_in;
                output[i] = new_out;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    Solution {
        input,
        output,
        rounds,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_engine::CompiledProcess;
    use wfms_model::{Activity, ProcessBuilder, StartCondition};

    /// Forward reachability: fact = "reachable from a start", merge =
    /// any-edge-or, transfer = identity.
    struct Reach;
    impl Analysis for Reach {
        type Fact = bool;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn top(&self, _: &CompiledScope) -> bool {
            false
        }
        fn boundary(&self, _: &CompiledScope, _: ActId) -> bool {
            true
        }
        fn edge_fact(&self, _: &CompiledScope, _: EdgeId, upstream: &bool) -> Option<bool> {
            Some(*upstream)
        }
        fn merge(&self, _: &CompiledScope, _: ActId, c: Vec<bool>) -> bool {
            c.into_iter().any(|b| b)
        }
        fn transfer(&self, _: &CompiledScope, _: ActId, input: &bool) -> bool {
            *input
        }
    }

    /// Backward hop count to a terminal: longest path in edges.
    struct Depth;
    impl Analysis for Depth {
        type Fact = usize;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn top(&self, _: &CompiledScope) -> usize {
            0
        }
        fn boundary(&self, _: &CompiledScope, _: ActId) -> usize {
            0
        }
        fn edge_fact(&self, _: &CompiledScope, _: EdgeId, upstream: &usize) -> Option<usize> {
            Some(upstream + 1)
        }
        fn merge(&self, _: &CompiledScope, _: ActId, c: Vec<usize>) -> usize {
            c.into_iter().max().unwrap_or(0)
        }
        fn transfer(&self, _: &CompiledScope, _: ActId, input: &usize) -> usize {
            *input
        }
    }

    fn diamond() -> CompiledProcess {
        let mut join = Activity::program("D", "pd");
        join.start = StartCondition::And;
        CompiledProcess::compile(
            ProcessBuilder::new("p")
                .program("A", "pa")
                .program("B", "pb")
                .program("C", "pc")
                .activity(join)
                .connect("A", "B")
                .connect("A", "C")
                .connect("B", "D")
                .connect("C", "D")
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn forward_reachability_converges() {
        let tpl = diamond();
        let sol = solve(&Reach, &tpl.root);
        assert!(sol.converged);
        assert_eq!(sol.output, vec![true; 4]);
    }

    #[test]
    fn backward_depth_takes_longest_path() {
        let tpl = diamond();
        let sol = solve(&Depth, &tpl.root);
        assert!(sol.converged);
        let id = |n: &str| tpl.root.id(n).unwrap() as usize;
        assert_eq!(sol.output[id("D")], 0);
        assert_eq!(sol.output[id("B")], 1);
        assert_eq!(sol.output[id("A")], 2);
    }

    #[test]
    fn cycle_hits_bound_without_converging() {
        // A graph with a cycle is a WA022 error, but the solver must
        // still terminate and report non-convergence for analyses
        // whose facts keep climbing.
        struct Count;
        impl Analysis for Count {
            type Fact = usize;
            fn direction(&self) -> Direction {
                Direction::Forward
            }
            fn top(&self, _: &CompiledScope) -> usize {
                0
            }
            fn boundary(&self, _: &CompiledScope, _: ActId) -> usize {
                0
            }
            fn edge_fact(&self, _: &CompiledScope, _: EdgeId, u: &usize) -> Option<usize> {
                Some(u + 1)
            }
            fn merge(&self, _: &CompiledScope, _: ActId, c: Vec<usize>) -> usize {
                c.into_iter().max().unwrap_or(0)
            }
            fn transfer(&self, _: &CompiledScope, _: ActId, i: &usize) -> usize {
                *i
            }
        }
        let def = ProcessBuilder::new("p")
            .program("S", "ps")
            .program("A", "pa")
            .program("B", "pb")
            .connect("S", "A")
            .connect("A", "B")
            .connect("B", "A")
            .build_unchecked();
        let tpl = CompiledProcess::compile(def);
        let sol = solve(&Count, &tpl.root);
        assert!(!sol.converged);
    }
}
