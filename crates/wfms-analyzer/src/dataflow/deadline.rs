//! `WA107`/`WA108`: deadline feasibility and critical-path bounds.
//!
//! A backward interval analysis on the
//! [`framework`](super::framework): the fact at each activity is the
//! interval of virtual-clock ticks from the moment it becomes ready
//! until its whole scope quiesces, assuming every manual step is
//! completed before its deadline fires. Per-activity durations:
//!
//! * automatic activities (and no-ops) take `[0, 0]` ticks — the
//!   virtual clock only advances when the driver ticks it, never
//!   during navigation;
//! * a manual activity with deadline `d` takes `[0, d]` — `d` is the
//!   last tick at which it can complete without a notification, the
//!   *notification-free completion bound*;
//! * a manual activity without a deadline takes `[0, ∞)`;
//! * a block takes its child scope's bounds, recursively.
//!
//! The lower bound of every interval is honest about the engine's
//! virtual clock: work items can be claimed and completed without
//! ticking, so the minimum critical path of any scope is 0 ticks.
//! The upper bound is the longest chain of deadline budgets — `None`
//! (unbounded) as soon as an undeadlined manual step is on the path.
//!
//! Findings:
//!
//! * `WA107` — *unmeetable deadline* (warning): a live manual
//!   activity with `DEADLINE 0`. The deadline scan notifies when
//!   `ready_since + deadline <= now`, which a zero budget satisfies
//!   at the very first scan — no schedule, however fast, avoids the
//!   notification. The message carries the enclosing scope's
//!   critical-path bounds.
//! * `WA108` — *deadline can never fire* (note): a deadline on an
//!   automatic activity (never worklisted, so never scanned) or on a
//!   statically dead activity (never becomes ready).

use super::framework::{solve, Analysis, Direction};
use crate::{Diagnostic, Lint, ProcessCtx, Severity};
use wfms_engine::compiled::{ActId, CompiledKind, CompiledScope, EdgeId};
use wfms_engine::optimize::{analyze_scope, ScopeFacts};
use wfms_engine::CompiledProcess;
use wfms_model::StartCondition;

/// Deadline-feasibility lints.
pub struct DeadlineLint;

/// A tick interval; `max: None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Fewest ticks possibly consumed.
    pub min: u64,
    /// Most ticks consumed while staying notification-free; `None`
    /// when a step without a deadline bound is on the path.
    pub max: Option<u64>,
}

impl Interval {
    /// The zero interval.
    pub const ZERO: Interval = Interval {
        min: 0,
        max: Some(0),
    };

    /// Sequential composition.
    fn add(self, other: Interval) -> Interval {
        Interval {
            min: self.min + other.min,
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            },
        }
    }

    /// Parallel join: the slowest branch bounds the maximum; `certain`
    /// tells whether this branch is guaranteed to run and may
    /// therefore raise the minimum.
    fn join_parallel(self, other: Interval, other_certain: bool) -> Interval {
        Interval {
            min: if other_certain {
                self.min.max(other.min)
            } else {
                self.min
            },
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Renders `[min, max]` with `∞` for the unbounded case.
    pub fn render(&self) -> String {
        match self.max {
            Some(max) => format!("[{}, {}] ticks", self.min, max),
            None => format!("[{}, unbounded) ticks", self.min),
        }
    }
}

/// Duration of one activity, recursing into blocks.
fn duration(act: &wfms_engine::compiled::CompiledActivity) -> Interval {
    match &act.kind {
        CompiledKind::Block(child) => scope_bounds(child),
        _ if act.automatic => Interval::ZERO,
        _ => Interval {
            min: 0,
            max: act.deadline,
        },
    }
}

/// Backward remaining-time analysis. The fact at an activity is the
/// tick interval from its readiness to scope quiescence. Contribution
/// intervals flow backward over live edges; an edge whose verdict is
/// not decidably true may contribute nothing at run time, so only
/// decidedly-firing edges raise the minimum.
struct RemainingTime<'a> {
    facts: &'a ScopeFacts,
}

impl Analysis for RemainingTime<'_> {
    type Fact = Interval;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn top(&self, _: &CompiledScope) -> Interval {
        Interval::ZERO
    }

    fn boundary(&self, _: &CompiledScope, _: ActId) -> Interval {
        // A terminal activity has nothing after it; its own duration
        // is added by `transfer` like everyone else's.
        Interval::ZERO
    }

    fn edge_fact(
        &self,
        scope: &CompiledScope,
        edge: EdgeId,
        downstream: &Interval,
    ) -> Option<Interval> {
        let e = &scope.edges[edge as usize];
        if self.facts.edge_verdict[edge as usize] == Some(false) || self.facts.dead[e.to as usize] {
            return None; // the edge never starts its target
        }
        // Encode certainty in the minimum: an edge not decided true
        // may evaluate false at run time, starting nothing.
        let certain = self.facts.edge_verdict[edge as usize] == Some(true)
            && matches!(scope.acts[e.to as usize].start, StartCondition::And)
            // An AND-join also needs every *other* incoming edge true.
            && scope.acts[e.to as usize]
                .incoming
                .iter()
                .all(|&i| self.facts.edge_verdict[i as usize] == Some(true));
        Some(Interval {
            min: if certain { downstream.min } else { 0 },
            max: downstream.max,
        })
    }

    fn merge(&self, _: &CompiledScope, _: ActId, contributions: Vec<Interval>) -> Interval {
        contributions
            .into_iter()
            .fold(Interval::ZERO, |acc, c| acc.join_parallel(c, true))
    }

    fn transfer(&self, scope: &CompiledScope, act: ActId, input: &Interval) -> Interval {
        duration(&scope.acts[act as usize]).add(*input)
    }
}

/// Critical-path bounds of one scope: ticks from instance start to
/// quiescence, notification-free. All start activities are seeded
/// ready together, so the slowest chain bounds the scope.
pub fn scope_bounds(scope: &CompiledScope) -> Interval {
    let facts = analyze_scope(scope);
    let sol = solve(&RemainingTime { facts: &facts }, scope);
    if !sol.converged {
        return Interval { min: 0, max: None };
    }
    scope
        .starts
        .iter()
        .filter(|&&s| !facts.dead[s as usize])
        .map(|&s| sol.output[s as usize])
        .fold(Interval::ZERO, |acc, c| acc.join_parallel(c, true))
}

impl Lint for DeadlineLint {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["WA107", "WA108"]
    }

    fn check(&self, ctx: &ProcessCtx<'_>, out: &mut Vec<Diagnostic>) {
        let def = ctx.process;
        if !wfms_model::validate(def).is_empty() {
            return;
        }
        let tpl = CompiledProcess::compile(def.clone());
        let scope = tpl.root.as_ref();
        let facts = analyze_scope(scope);
        let bounds = scope_bounds(scope);

        for (i, act) in scope.acts.iter().enumerate() {
            let Some(d) = act.deadline else { continue };
            let pos = ctx.pos_activity(&act.name);
            if act.automatic {
                out.push(
                    Diagnostic::new(
                        "WA108",
                        Severity::Note,
                        &ctx.path,
                        Some(act.name.clone()),
                        format!(
                            "deadline {d} on {:?} can never fire: the activity is \
                             AUTOMATIC, so it is never worklisted and never scanned",
                            act.name
                        ),
                    )
                    .with_pos(pos),
                );
            } else if facts.dead[i] {
                out.push(
                    Diagnostic::new(
                        "WA108",
                        Severity::Note,
                        &ctx.path,
                        Some(act.name.clone()),
                        format!(
                            "deadline {d} on {:?} can never fire: the activity is \
                             statically dead and never becomes ready",
                            act.name
                        ),
                    )
                    .with_pos(pos),
                );
            } else if d == 0 {
                out.push(
                    Diagnostic::new(
                        "WA107",
                        Severity::Warning,
                        &ctx.path,
                        Some(act.name.clone()),
                        format!(
                            "deadline 0 on {:?} cannot be met by any schedule: the \
                             deadline scan notifies once ready_since + 0 <= now, i.e. \
                             at the first scan after the activity becomes ready \
                             (scope critical path: {})",
                            act.name,
                            bounds.render()
                        ),
                    )
                    .with_pos(pos),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Analyzer, Diagnostic, Severity};

    fn lint(src: &str) -> Vec<Diagnostic> {
        let (def, prov) = wfms_fdl::parse_with_provenance(src).unwrap();
        Analyzer::new().check_process(&def, Some(&prov))
    }

    #[test]
    fn zero_deadline_is_unmeetable() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" ROLE "clerk" DEADLINE 0 END
            END
        "#,
        );
        let d = diags.iter().find(|d| d.code == "WA107").expect("WA107");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("critical path"), "{:?}", d.message);
        assert!(d.pos.is_some());
    }

    #[test]
    fn positive_deadline_is_feasible() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" ROLE "clerk" DEADLINE 5 END
            END
        "#,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn automatic_deadline_never_fires() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" DEADLINE 3 END
            END
        "#,
        );
        let d = diags.iter().find(|d| d.code == "WA108").expect("WA108");
        assert_eq!(d.severity, Severity::Note);
        assert!(d.message.contains("AUTOMATIC"), "{:?}", d.message);
    }

    #[test]
    fn dead_activity_deadline_never_fires() {
        let diags = lint(
            r#"
            PROCESS p
              NOOP Gate END
              ACTIVITY M PROGRAM "m" ROLE "clerk" DEADLINE 4 END
              CONTROL FROM Gate TO M WHEN "RC = 0"
            END
        "#,
        );
        let d = diags.iter().find(|d| d.code == "WA108").expect("WA108");
        assert!(d.message.contains("statically dead"), "{:?}", d.message);
    }

    #[test]
    fn bounds_chain_sequential_deadlines() {
        // Two manual steps with deadlines 3 and 4 in sequence: the
        // notification-free bound is their sum; the virtual-clock
        // minimum is 0.
        let (def, _) = wfms_fdl::parse_with_provenance(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" ROLE "r" DEADLINE 3 END
              ACTIVITY B PROGRAM "b" ROLE "r" DEADLINE 4 END
              CONTROL FROM A TO B
            END
        "#,
        )
        .unwrap();
        let tpl = wfms_engine::CompiledProcess::compile(def);
        let b = scope_bounds(&tpl.root);
        assert_eq!(
            b,
            Interval {
                min: 0,
                max: Some(7)
            }
        );
    }

    #[test]
    fn undeadlined_manual_step_unbounds_the_path() {
        let (def, _) = wfms_fdl::parse_with_provenance(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" ROLE "r" DEADLINE 3 END
              ACTIVITY B PROGRAM "b" ROLE "r" END
              CONTROL FROM A TO B
            END
        "#,
        )
        .unwrap();
        let tpl = wfms_engine::CompiledProcess::compile(def);
        let b = scope_bounds(&tpl.root);
        assert_eq!(b.max, None);
    }

    #[test]
    fn parallel_branches_take_the_slowest() {
        let (def, _) = wfms_fdl::parse_with_provenance(
            r#"
            PROCESS p
              NOOP S END
              ACTIVITY A PROGRAM "a" ROLE "r" DEADLINE 2 END
              ACTIVITY B PROGRAM "b" ROLE "r" DEADLINE 9 END
              CONTROL FROM S TO A
              CONTROL FROM S TO B
            END
        "#,
        )
        .unwrap();
        let tpl = wfms_engine::CompiledProcess::compile(def);
        let b = scope_bounds(&tpl.root);
        assert_eq!(b.max, Some(9));
    }

    #[test]
    fn automatic_chain_is_zero_ticks() {
        let (def, _) = wfms_fdl::parse_with_provenance(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" END
              CONTROL FROM A TO B
            END
        "#,
        )
        .unwrap();
        let tpl = wfms_engine::CompiledProcess::compile(def);
        assert_eq!(scope_bounds(&tpl.root), Interval::ZERO);
    }

    #[test]
    fn dead_branch_excluded_from_bounds() {
        // The undeadlined manual step is statically dead: it cannot
        // unbound the critical path.
        let (def, _) = wfms_fdl::parse_with_provenance(
            r#"
            PROCESS p
              NOOP Gate END
              ACTIVITY M PROGRAM "m" ROLE "r" END
              ACTIVITY L PROGRAM "l" ROLE "r" DEADLINE 6 END
              CONTROL FROM Gate TO M WHEN "RC = 0"
              CONTROL FROM Gate TO L WHEN "RC = 1"
            END
        "#,
        )
        .unwrap();
        let tpl = wfms_engine::CompiledProcess::compile(def);
        let b = scope_bounds(&tpl.root);
        assert_eq!(b.max, Some(6));
    }
}
