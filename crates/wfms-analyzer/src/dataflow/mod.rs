//! Dataflow analyses: the schema-level def-use lints (`WA041`–`WA043`)
//! and the fixpoint-based semantic passes (`WA101`–`WA108`).
//!
//! The submodules form the analysis engine:
//!
//! * [`framework`] — a generic monotone fixpoint solver
//!   (forward/backward) over the CSR adjacency of a compiled scope;
//! * [`liveness`] — container def-use over *feasible paths*
//!   (`WA101`/`WA102`), a forward must-completed analysis;
//! * [`constprop`] — graph-wide condition-value propagation
//!   (`WA103`–`WA105`), reusing the engine's own
//!   [`wfms_engine::optimize::analyze_scope`] so the lint reports
//!   exactly what the template optimizer acts on;
//! * [`compensation`] — compensation-soundness over saga/flexible
//!   specifications (`WA106`) with concrete witness paths;
//! * [`deadline`] — deadline feasibility and per-scope critical-path
//!   bounds (`WA107`/`WA108`), a backward interval analysis.
//!
//! This module itself keeps the original schema-level lints. Data
//! flows between containers only along data connectors, so def-use is
//! fully static:
//!
//! * `WA041` — *read before write*: an activity input member that no
//!   data connector writes and that has no `DEFAULT`. The activity
//!   would read an unset member at run time (error).
//! * `WA042` — *overwritten write*: the same sink member is written
//!   more than once **from the same source endpoint**; later writes
//!   silently win (warning). Writes from *different* sources merging
//!   into one member are deliberate workflow idiom — the flexible
//!   transaction translation merges every path's `RC` into one
//!   `Committed` output — and are not flagged.
//! * `WA043` — *dead write*: a declared activity output member
//!   (other than the implicit `RC`) that nothing reads: no data
//!   connector maps from it and no outgoing control connector or exit
//!   condition references it (warning).

pub mod compensation;
pub mod constprop;
pub mod deadline;
pub mod framework;
pub mod liveness;

pub use constprop::ConstPropLint;
pub use deadline::DeadlineLint;
pub use liveness::LivenessLint;

use crate::{Diagnostic, Lint, ProcessCtx, Severity};
use std::collections::{BTreeMap, BTreeSet};
use wfms_model::{DataEndpoint, RC_MEMBER};

/// Container def-use lints.
pub struct DataFlowLint;

impl Lint for DataFlowLint {
    fn name(&self) -> &'static str {
        "dataflow"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["WA041", "WA042", "WA043"]
    }

    fn check(&self, ctx: &ProcessCtx<'_>, out: &mut Vec<Diagnostic>) {
        let def = ctx.process;

        // Writes into activity-input members: (activity, member).
        let mut written: BTreeSet<(&str, &str)> = BTreeSet::new();
        // Write multiplicity per (sink label, member, source endpoint).
        let mut write_counts: BTreeMap<(String, &str, String), (usize, String)> = BTreeMap::new();
        for d in &def.data {
            let label = format!("{} => {}", d.from, d.to);
            for m in &d.mappings {
                if let DataEndpoint::ActivityInput(a) = &d.to {
                    written.insert((a.as_str(), m.to_member.as_str()));
                }
                let entry = write_counts
                    .entry((d.to.to_string(), m.to_member.as_str(), d.from.to_string()))
                    .or_insert((0, label.clone()));
                entry.0 += 1;
            }
        }

        // WA041: unwritten, default-less input members.
        for a in &def.activities {
            for m in &a.input.members {
                if m.default.is_some() || written.contains(&(a.name.as_str(), m.name.as_str())) {
                    continue;
                }
                out.push(
                    Diagnostic::new(
                        "WA041",
                        Severity::Error,
                        &ctx.path,
                        Some(a.name.clone()),
                        format!(
                            "activity {:?} reads input member {:?}, but no data \
                             connector writes it and it has no DEFAULT",
                            a.name, m.name
                        ),
                    )
                    .with_pos(ctx.pos_activity(&a.name)),
                );
            }
        }

        // WA042: repeated writes from one source endpoint.
        for ((sink, member, source), (count, label)) in &write_counts {
            if *count > 1 {
                out.push(
                    Diagnostic::new(
                        "WA042",
                        Severity::Warning,
                        &ctx.path,
                        Some(label.clone()),
                        format!(
                            "member {member:?} of {sink} is written {count} times from \
                             {source}; later writes overwrite earlier ones"
                        ),
                    )
                    .with_pos(ctx.pos_data(label)),
                );
            }
        }

        // Reads of activity-output members.
        let mut read: BTreeSet<(&str, &str)> = BTreeSet::new();
        for d in &def.data {
            if let DataEndpoint::ActivityOutput(a) = &d.from {
                for m in &d.mappings {
                    read.insert((a.as_str(), m.from_member.as_str()));
                }
            }
        }
        let mut condition_vars: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
        for c in &def.control {
            condition_vars
                .entry(c.from.as_str())
                .or_default()
                .extend(c.condition.variables());
        }
        for a in &def.activities {
            if let Some(expr) = &a.exit.expr {
                condition_vars
                    .entry(a.name.as_str())
                    .or_default()
                    .extend(expr.variables());
            }
        }

        // WA043: declared outputs nothing consumes.
        for a in &def.activities {
            for m in &a.output.members {
                if m.name == RC_MEMBER {
                    continue; // implicit protocol member
                }
                let in_data = read.contains(&(a.name.as_str(), m.name.as_str()));
                let in_conditions = condition_vars
                    .get(a.name.as_str())
                    .is_some_and(|vars| vars.contains(&m.name));
                if !in_data && !in_conditions {
                    out.push(
                        Diagnostic::new(
                            "WA043",
                            Severity::Warning,
                            &ctx.path,
                            Some(a.name.clone()),
                            format!(
                                "output member {:?} of {:?} is never read by any data \
                                 connector or condition (dead write)",
                                m.name, a.name
                            ),
                        )
                        .with_pos(ctx.pos_activity(&a.name)),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let (def, prov) = wfms_fdl::parse_with_provenance(src).unwrap();
        Analyzer::new().check_process(&def, Some(&prov))
    }

    #[test]
    fn read_before_write_is_an_error() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" INPUT ( amount: INT ) END
              CONTROL FROM A TO B
            END
        "#,
        );
        let d = diags.iter().find(|d| d.code == "WA041").expect("WA041");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.element.as_deref(), Some("B"));
        assert!(d.message.contains("amount"));
        assert!(d.pos.is_some());
    }

    #[test]
    fn default_satisfies_read() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" INPUT ( amount: INT DEFAULT 10 ) END
            END
        "#,
        );
        assert!(diags.iter().all(|d| d.code != "WA041"), "{diags:?}");
    }

    #[test]
    fn mapped_input_satisfies_read() {
        let diags = lint(
            r#"
            PROCESS p
              INPUT ( budget: INT )
              ACTIVITY A PROGRAM "a" INPUT ( amount: INT ) END
              DATA FROM PROCESS.INPUT TO A.INPUT MAP budget -> amount
            END
        "#,
        );
        assert!(diags.iter().all(|d| d.code != "WA041"), "{diags:?}");
    }

    #[test]
    fn repeated_same_source_write_warned() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" OUTPUT ( x: INT, y: INT ) END
              ACTIVITY B PROGRAM "b" INPUT ( v: INT ) END
              CONTROL FROM A TO B
              DATA FROM A.OUTPUT TO B.INPUT MAP x -> v, y -> v
            END
        "#,
        );
        let d = diags.iter().find(|d| d.code == "WA042").expect("WA042");
        assert!(d.message.contains("written 2 times"), "{:?}", d.message);
        assert!(d.pos.is_some());
    }

    #[test]
    fn distinct_source_merge_not_flagged() {
        // The flexible-transaction translation merges both paths' RC
        // into one Committed member — different sources, intended.
        let diags = lint(
            r#"
            PROCESS p
              OUTPUT ( Committed: INT )
              ACTIVITY A PROGRAM "a" OUTPUT ( RC: INT ) START OR END
              ACTIVITY B PROGRAM "b" OUTPUT ( RC: INT ) START OR END
              ACTIVITY S PROGRAM "s" END
              CONTROL FROM S TO A WHEN "RC = 0"
              CONTROL FROM S TO B WHEN "RC = 1"
              DATA FROM A.OUTPUT TO PROCESS.OUTPUT MAP RC -> Committed
              DATA FROM B.OUTPUT TO PROCESS.OUTPUT MAP RC -> Committed
            END
        "#,
        );
        assert!(diags.iter().all(|d| d.code != "WA042"), "{diags:?}");
    }

    #[test]
    fn dead_write_warned_but_rc_exempt() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" OUTPUT ( RC: INT, price: INT ) END
              ACTIVITY B PROGRAM "b" END
              CONTROL FROM A TO B WHEN "RC = 0"
            END
        "#,
        );
        let dead: Vec<_> = diags.iter().filter(|d| d.code == "WA043").collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert!(dead[0].message.contains("price"));
    }

    #[test]
    fn condition_reads_count_as_uses() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" OUTPUT ( price: INT ) EXIT WHEN "price > 0" END
              ACTIVITY B PROGRAM "b" END
              CONTROL FROM A TO B WHEN "price > 10"
            END
        "#,
        );
        assert!(diags.iter().all(|d| d.code != "WA043"), "{diags:?}");
    }
}
