//! `WA103`–`WA105`: graph-wide condition-value propagation.
//!
//! `WA031`–`WA035` judge each condition in isolation — they fire only
//! when an expression constant-folds with no context. This pass runs
//! the engine's own propagation
//! ([`wfms_engine::optimize::analyze_scope`]): completion facts (a
//! no-op's pinned `RC = 1`, an exit condition's `RC = k`) are
//! substituted into downstream transition conditions before folding,
//! deciding conditions that are dynamic in isolation. Reusing the
//! engine analysis means the lint reports **exactly** what
//! `Engine::register`'s template optimizer will rewrite or prune —
//! the two can never drift apart.
//!
//! * `WA103` — a connector decided *always false* by upstream
//!   constants (warning): the condition is dead weight, and its
//!   target may be dead with it.
//! * `WA104` — a connector decided *always true* by upstream
//!   constants (note): the test is redundant; write the intent.
//! * `WA105` — an activity statically dead **under propagation**
//!   (error): every control path to it crosses a decided-false
//!   connector or a dead predecessor. Only emitted for activities the
//!   syntactic analysis (`WA021`/`WA035`) considers live, so each
//!   root cause gets exactly one code.

use crate::{Diagnostic, Lint, ProcessCtx, Severity};
use wfms_engine::compiled::CondPlan;
use wfms_engine::optimize::analyze_scope;
use wfms_engine::CompiledProcess;

/// Condition-value propagation lints.
pub struct ConstPropLint;

/// Formats an activity's completion facts for a message:
/// `RC = 1 at "N"`.
fn facts_note(
    scope: &wfms_engine::CompiledScope,
    facts: &[(String, txn_substrate::Value)],
    act: u32,
) -> String {
    let pins: Vec<String> = facts.iter().map(|(n, v)| format!("{n} = {v}")).collect();
    format!("{} at {:?}", pins.join(", "), scope.acts[act as usize].name)
}

impl Lint for ConstPropLint {
    fn name(&self) -> &'static str {
        "constprop"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["WA103", "WA104", "WA105"]
    }

    fn check(&self, ctx: &ProcessCtx<'_>, out: &mut Vec<Diagnostic>) {
        let def = ctx.process;
        if !wfms_model::validate(def).is_empty() {
            return;
        }
        let tpl = CompiledProcess::compile(def.clone());
        let scope = tpl.root.as_ref();
        let facts = analyze_scope(scope);

        // Decided edges. Constant plans were decided *syntactically*
        // (WA031/WA032/WA034 territory); only edges still dynamic
        // after per-expression folding needed propagation.
        for (e, edge) in scope.edges.iter().enumerate() {
            let CondPlan::Dynamic(expr) = &edge.cond else {
                continue;
            };
            let Some(verdict) = facts.edge_verdict[e] else {
                continue;
            };
            let from = &scope.acts[edge.from as usize];
            let to = &scope.acts[edge.to as usize];
            let label = format!("{} -> {}", from.name, to.name);
            let pins = facts_note(scope, &facts.completion[edge.from as usize], edge.from);
            let pos = ctx.pos_control(&from.name, &to.name);
            if verdict {
                out.push(
                    Diagnostic::new(
                        "WA104",
                        Severity::Note,
                        &ctx.path,
                        Some(label.clone()),
                        format!(
                            "condition {:?} on connector {label} is always true given \
                             upstream constants ({pins}); the test is redundant",
                            expr.to_string()
                        ),
                    )
                    .with_pos(pos),
                );
            } else {
                out.push(
                    Diagnostic::new(
                        "WA103",
                        Severity::Warning,
                        &ctx.path,
                        Some(label.clone()),
                        format!(
                            "condition {:?} on connector {label} is always false given \
                             upstream constants ({pins}); the connector can never fire",
                            expr.to_string()
                        ),
                    )
                    .with_pos(pos),
                );
            }
        }

        // Newly dead activities: dead under propagation, live
        // syntactically.
        let syn_live = crate::graph::syntactically_live(def);
        for (i, act) in scope.acts.iter().enumerate() {
            if !facts.dead[i] || !syn_live.contains(act.name.as_str()) {
                continue;
            }
            // Name the decisive frontier: a decided-false incoming
            // edge if one exists, else the dead predecessors.
            let cause = act
                .incoming
                .iter()
                .find(|&&e| facts.edge_verdict[e as usize] == Some(false))
                .map(|&e| {
                    let edge = &scope.edges[e as usize];
                    format!(
                        "connector {} -> {} is decided false by upstream constants",
                        scope.acts[edge.from as usize].name, act.name
                    )
                })
                .unwrap_or_else(|| {
                    "every incoming connector originates from a statically dead activity".to_owned()
                });
            out.push(
                Diagnostic::new(
                    "WA105",
                    Severity::Error,
                    &ctx.path,
                    Some(act.name.clone()),
                    format!(
                        "activity {:?} is statically dead under constant propagation: \
                         {cause}",
                        act.name
                    ),
                )
                .with_pos(ctx.pos_activity(&act.name)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Analyzer, Diagnostic, Severity};

    fn lint(src: &str) -> Vec<Diagnostic> {
        let (def, prov) = wfms_fdl::parse_with_provenance(src).unwrap();
        Analyzer::new().check_process(&def, Some(&prov))
    }

    #[test]
    fn propagated_false_edge_and_dead_target_reported() {
        // "RC = 0" is dynamic in isolation; the exit condition pins
        // RC = 1 at A's completion, deciding it false.
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" EXIT WHEN "RC = 1" END
              ACTIVITY B PROGRAM "b" END
              ACTIVITY C PROGRAM "c" END
              CONTROL FROM A TO B WHEN "RC = 1"
              CONTROL FROM A TO C WHEN "RC = 0"
            END
        "#,
        );
        let f = diags.iter().find(|d| d.code == "WA103").expect("WA103");
        assert_eq!(f.severity, Severity::Warning);
        assert!(f.message.contains("RC = 1 at \"A\""), "{:?}", f.message);
        assert!(f.pos.is_some());
        let t = diags.iter().find(|d| d.code == "WA104").expect("WA104");
        assert!(t.element.as_deref().unwrap().contains("A -> B"));
        let dead = diags.iter().find(|d| d.code == "WA105").expect("WA105");
        assert_eq!(dead.element.as_deref(), Some("C"));
        assert_eq!(dead.severity, Severity::Error);
        assert!(dead.message.contains("A -> C"), "{:?}", dead.message);
        // The syntactic lints have nothing to say here.
        assert!(diags.iter().all(|d| d.code != "WA031" && d.code != "WA035"));
    }

    #[test]
    fn noop_pins_rc_for_downstream_edges() {
        let diags = lint(
            r#"
            PROCESS p
              NOOP Gate END
              ACTIVITY B PROGRAM "b" END
              CONTROL FROM Gate TO B WHEN "RC = 1"
            END
        "#,
        );
        assert!(diags.iter().any(|d| d.code == "WA104"), "{diags:?}");
    }

    #[test]
    fn unpinned_programs_stay_silent() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" END
              ACTIVITY C PROGRAM "c" END
              CONTROL FROM A TO B WHEN "RC = 1"
              CONTROL FROM A TO C WHEN "RC = 0"
            END
        "#,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn syntactically_dead_not_double_reported() {
        // "1 = 2" folds with no context: WA031 + WA035 own this, and
        // the propagation pass must not add WA103/WA105 on top.
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" END
              CONTROL FROM A TO B WHEN "1 = 2"
            END
        "#,
        );
        assert!(diags.iter().any(|d| d.code == "WA031"));
        assert!(diags.iter().any(|d| d.code == "WA035"));
        assert!(
            diags.iter().all(|d| d.code != "WA103" && d.code != "WA105"),
            "{diags:?}"
        );
    }

    #[test]
    fn transitively_dead_chain_reported_once_per_activity() {
        let diags = lint(
            r#"
            PROCESS p
              NOOP Gate END
              ACTIVITY B PROGRAM "b" END
              ACTIVITY C PROGRAM "c" END
              CONTROL FROM Gate TO B WHEN "RC = 0"
              CONTROL FROM B TO C
            END
        "#,
        );
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "WA105")
            .filter_map(|d| d.element.clone())
            .collect();
        assert_eq!(dead, vec!["B".to_string(), "C".to_string()]);
        let c = diags
            .iter()
            .find(|d| d.code == "WA105" && d.element.as_deref() == Some("C"))
            .unwrap();
        assert!(
            c.message.contains("statically dead activity"),
            "{:?}",
            c.message
        );
    }

    #[test]
    fn or_join_with_a_live_edge_stays_alive() {
        let diags = lint(
            r#"
            PROCESS p
              NOOP Gate END
              ACTIVITY A PROGRAM "a" END
              ACTIVITY J PROGRAM "j" START OR END
              CONTROL FROM Gate TO J WHEN "RC = 0"
              CONTROL FROM Gate TO A WHEN "RC = 1"
              CONTROL FROM A TO J WHEN "RC = 1"
            END
        "#,
        );
        assert!(diags.iter().all(|d| d.code != "WA105"), "{diags:?}");
        // The dead entry edge is still worth a warning.
        assert!(diags.iter().any(|d| d.code == "WA103"));
    }
}
