//! `WA106`: compensation-soundness with witness paths.
//!
//! The S/F well-formedness rules (`WA051`–`WA056`) say *which step*
//! breaks a specification. This pass answers the operational
//! question the paper's backward recovery poses: **from every
//! post-pivot failure point, does a complete compensation chain lead
//! back to a consistent state?** A failure point is any step that may
//! abort (everything not retriable). When it aborts, every step that
//! may already have committed on the way to it — back to the recovery
//! horizon — must be compensatable, or backward recovery wedges
//! against the first committed step without a compensation.
//!
//! The recovery horizon differs by model:
//!
//! * **Saga** — recovery runs all the way back to the start, so every
//!   step in an earlier stage (and every concurrent sibling in the
//!   same stage) must be compensatable.
//! * **Flexible transaction** — a failure on path *k* falls back to
//!   path *k+1*, compensating only the committed steps past their
//!   common prefix; on the last path it aborts to the start. Only
//!   steps inside that window need compensations.
//!
//! Each violation reports a concrete witness: the executed prefix,
//! the failing step, and the exact step the compensation chain wedges
//! against. The chains walked here are reverse traversals of a finite
//! prefix, so they are cycle-free by construction; cycles in
//! *translated* compensation graphs are `WA022`'s business.

use crate::{Diagnostic, Severity};
use atm::{FlexSpec, SagaSpec, StepSpec};

/// Steps that can abort at run time: everything not retriable. (A
/// retriable step is re-submitted until it commits, §4.1.)
fn may_fail(step: &StepSpec) -> bool {
    !step.class.is_retriable()
}

/// A `T1 -> T2 -> T3*` witness prefix, the failing step starred.
fn witness(prefix: &[&StepSpec], failing: &StepSpec) -> String {
    let mut parts: Vec<String> = prefix.iter().map(|s| s.name.clone()).collect();
    parts.push(format!("{}*", failing.name));
    parts.join(" -> ")
}

/// One WA106 for a failure point whose compensation window contains a
/// non-compensatable committed step.
fn uncompensatable(
    spec_name: &str,
    prefix: &[&StepSpec],
    failing: &StepSpec,
    window: &[&StepSpec],
    horizon: &str,
) -> Option<Diagnostic> {
    // Backward recovery compensates the window newest-first; it
    // wedges against the *latest* non-compensatable step.
    let blocker = window.iter().rev().find(|s| !s.class.is_compensatable())?;
    let undone: Vec<String> = window
        .iter()
        .rev()
        .take_while(|s| s.class.is_compensatable())
        .map(|s| {
            s.compensation
                .as_deref()
                .unwrap_or("<missing compensation>")
                .to_owned()
        })
        .collect();
    let chain = if undone.is_empty() {
        String::new()
    } else {
        format!("after {}, ", undone.join(", "))
    };
    Some(Diagnostic::new(
        "WA106",
        Severity::Error,
        spec_name,
        Some(failing.name.clone()),
        format!(
            "failure of {:?} cannot be recovered: {horizon} requires compensating \
             every committed step back along {}, but {chain}the chain wedges against \
             {:?} ({:?}), which has no compensation",
            failing.name,
            witness(prefix, failing),
            blocker.name,
            blocker.class,
        ),
    ))
}

/// Compensation-soundness findings for a saga.
pub fn saga_findings(spec: &SagaSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let stages: Vec<Vec<&StepSpec>> = spec.stages.iter().map(|s| s.iter().collect()).collect();
    for (si, stage) in stages.iter().enumerate() {
        for failing in stage {
            if !may_fail(failing) {
                continue;
            }
            // Possibly-committed when `failing` aborts: every step of
            // earlier stages, plus concurrent siblings in this stage.
            let window: Vec<&StepSpec> = stages[..si]
                .iter()
                .flatten()
                .copied()
                .chain(stage.iter().copied().filter(|s| s.name != failing.name))
                .collect();
            if window.is_empty() {
                continue;
            }
            out.extend(uncompensatable(
                &spec.name,
                &window,
                failing,
                &window,
                "backward recovery to the start",
            ));
        }
    }
    out
}

/// Compensation-soundness findings for a flexible transaction.
pub fn flex_findings(spec: &FlexSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (pi, path) in spec.paths.iter().enumerate() {
        let steps: Vec<&StepSpec> = path.iter().filter_map(|n| spec.step(n)).collect();
        if steps.len() != path.len() {
            continue; // unknown step names: WA051 structure error
        }
        let next = spec.paths.get(pi + 1);
        for (i, failing) in steps.iter().enumerate() {
            if !may_fail(failing) {
                continue;
            }
            // Recovery horizon: back to the common prefix with the
            // fallback path, or to the start on the last path.
            let (horizon_idx, horizon_desc) = match next {
                Some(next_path) => {
                    let shared = FlexSpec::common_prefix_len(path, next_path).min(i);
                    (
                        shared,
                        format!(
                            "falling back to path #{} ({})",
                            pi + 2,
                            next_path.join(" -> ")
                        ),
                    )
                }
                None => (0, "aborting the last path back to the start".to_owned()),
            };
            let window = &steps[horizon_idx..i];
            if window.is_empty() {
                continue;
            }
            out.extend(uncompensatable(
                &format!("{} (path #{})", spec.name, pi + 1),
                &steps[..i],
                failing,
                window,
                &horizon_desc,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm::StepSpec;

    #[test]
    fn clean_linear_saga_has_no_findings() {
        assert!(saga_findings(&atm::fixtures::linear_saga("trip", 4)).is_empty());
    }

    #[test]
    fn figure3_flex_is_sound() {
        assert!(flex_findings(&atm::fixtures::figure3_spec()).is_empty());
    }

    #[test]
    fn mid_saga_pivot_blocks_later_failures() {
        let spec = SagaSpec::linear(
            "s",
            vec![
                StepSpec::compensatable("T1", "p1", "c1"),
                StepSpec::pivot("T2", "p2"),
                StepSpec::compensatable("T3", "p3", "c3"),
            ],
        );
        let diags = saga_findings(&spec);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.code, "WA106");
        assert_eq!(d.element.as_deref(), Some("T3"));
        assert!(
            d.message.contains("T1 -> T2 -> T3*"),
            "witness in {:?}",
            d.message
        );
        assert!(
            d.message.contains("wedges against \"T2\""),
            "{:?}",
            d.message
        );
    }

    #[test]
    fn parallel_stage_siblings_count_as_committed() {
        // T2a and T2b run concurrently; if T2b (compensatable) fails,
        // its sibling T2a (pivot) may have committed already.
        let spec = SagaSpec::staged(
            "s",
            vec![
                vec![StepSpec::compensatable("T1", "p1", "c1")],
                vec![
                    StepSpec::pivot("T2a", "p2a"),
                    StepSpec::compensatable("T2b", "p2b", "c2b"),
                ],
            ],
        );
        let diags = saga_findings(&spec);
        assert!(
            diags.iter().any(|d| d.element.as_deref() == Some("T2b")
                && d.message.contains("wedges against \"T2a\"")),
            "{diags:?}"
        );
    }

    #[test]
    fn flex_failure_beyond_shared_prefix_needs_compensations() {
        // Path 1 commits a pivot past the prefix it shares with path
        // 2; every later failure on path 1 is stuck behind it.
        let spec = FlexSpec::new(
            "f",
            vec![
                StepSpec::compensatable("A", "pa", "ca"),
                StepSpec::pivot("P", "pp"),
                StepSpec::compensatable("B", "pb", "cb"),
                StepSpec::compensatable("C", "pc", "cc"),
                StepSpec::retriable("R", "pr"),
            ],
            vec![vec!["A", "P", "B", "C"], vec!["A", "R"]],
        );
        let diags = flex_findings(&spec);
        assert_eq!(diags.len(), 2, "B and C both wedge: {diags:?}");
        let b = &diags[0];
        assert_eq!(b.element.as_deref(), Some("B"));
        assert!(b.message.contains("A -> P -> B*"), "{:?}", b.message);
        assert!(b.message.contains("path #2"), "{:?}", b.message);
        // C's recovery compensates B (cb) first, then wedges on P.
        let c = &diags[1];
        assert_eq!(c.element.as_deref(), Some("C"));
        assert!(c.message.contains("after cb, "), "chain in {:?}", c.message);
        assert!(
            c.message.contains("wedges against \"P\""),
            "{:?}",
            c.message
        );
    }

    #[test]
    fn last_path_failure_recovers_to_start() {
        let spec = FlexSpec::new(
            "f",
            vec![
                StepSpec::pivot("P", "pp"),
                StepSpec::compensatable("B", "pb", "cb"),
            ],
            vec![vec!["P", "B"]],
        );
        let diags = flex_findings(&spec);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("aborting the last path"),
            "{:?}",
            diags[0].message
        );
        assert!(diags[0].message.contains("wedges against \"P\""));
    }

    #[test]
    fn failure_within_shared_prefix_is_fine() {
        // The failing pivot is itself on the shared prefix: nothing
        // beyond the prefix has committed, so fallback compensates
        // nothing.
        let spec = FlexSpec::new(
            "f",
            vec![
                StepSpec::compensatable("A", "pa", "ca"),
                StepSpec::pivot("P", "pp"),
                StepSpec::retriable("R1", "pr1"),
                StepSpec::retriable("R2", "pr2"),
            ],
            vec![vec!["A", "P", "R1"], vec!["A", "P", "R2"]],
        );
        assert!(flex_findings(&spec).is_empty());
    }
}
