//! `WA101`/`WA102`: container def-use over *feasible paths*.
//!
//! The schema-level `WA041` only asks "does any data connector write
//! this member at all?". This pass asks the sharper question: **is the
//! write guaranteed to have happened on every feasible path** by the
//! time the reader becomes ready? It runs a forward *must-completed*
//! analysis on the [`framework`](super::framework): the fact at each
//! activity is the set of activities guaranteed to have executed
//! whenever it becomes ready.
//!
//! * An AND-join is only ready once **every** incoming edge evaluated
//!   true, and a true edge implies its source executed — so the sets
//!   union.
//! * An OR-join fires on the **first** true edge — only what every
//!   live incoming path guarantees survives, so the sets intersect.
//! * Edges that can never fire (decided false by constant
//!   propagation, or sourced from a statically dead activity — see
//!   [`wfms_engine::optimize::analyze_scope`]) contribute nothing.
//!
//! Findings:
//!
//! * `WA101` — *may-read-before-write* (warning): an input member of a
//!   program or block activity whose only writers are activity
//!   outputs not in the reader's must-completed set. The message
//!   carries a witness path from a start activity to the reader that
//!   avoids every writer. No-op activities are exempt: their
//!   pass-through containers exist to ferry flags into transition
//!   conditions, and the condition rule maps unset members to `false`
//!   by design — the saga translation's compensation trigger relies
//!   on exactly that.
//! * `WA102` — *dead write* (warning): a data connector with a
//!   statically dead endpoint — the mapping can never take effect
//!   (dead source never executes; dead sink never reads).

use super::framework::{solve, Analysis, Direction};
use crate::{Diagnostic, Lint, ProcessCtx, Severity};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wfms_engine::compiled::{ActId, CompiledKind, CompiledScope, EdgeId};
use wfms_engine::optimize::{analyze_scope, ScopeFacts};
use wfms_engine::CompiledProcess;
use wfms_model::DataEndpoint;

/// Feasible-path def-use lints.
pub struct LivenessLint;

/// Forward must-completed analysis: the set of activities guaranteed
/// executed when an activity becomes ready.
struct MustCompleted<'a> {
    facts: &'a ScopeFacts,
}

impl MustCompleted<'_> {
    fn edge_live(&self, scope: &CompiledScope, edge: EdgeId) -> bool {
        let e = &scope.edges[edge as usize];
        self.facts.edge_verdict[edge as usize] != Some(false) && !self.facts.dead[e.from as usize]
    }
}

impl Analysis for MustCompleted<'_> {
    type Fact = BTreeSet<ActId>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn top(&self, scope: &CompiledScope) -> Self::Fact {
        (0..scope.acts.len() as ActId).collect()
    }

    fn boundary(&self, _: &CompiledScope, _: ActId) -> Self::Fact {
        BTreeSet::new()
    }

    fn edge_fact(
        &self,
        scope: &CompiledScope,
        edge: EdgeId,
        upstream: &Self::Fact,
    ) -> Option<Self::Fact> {
        if !self.edge_live(scope, edge) {
            return None;
        }
        let mut fact = upstream.clone();
        fact.insert(scope.edges[edge as usize].from);
        Some(fact)
    }

    fn merge(
        &self,
        scope: &CompiledScope,
        act: ActId,
        contributions: Vec<Self::Fact>,
    ) -> Self::Fact {
        let mut iter = contributions.into_iter();
        let Some(first) = iter.next() else {
            return BTreeSet::new();
        };
        match scope.acts[act as usize].start {
            wfms_model::StartCondition::And => iter.fold(first, |mut acc, c| {
                acc.extend(c);
                acc
            }),
            wfms_model::StartCondition::Or => {
                iter.fold(first, |acc, c| acc.intersection(&c).cloned().collect())
            }
        }
    }

    fn transfer(&self, _: &CompiledScope, _: ActId, input: &Self::Fact) -> Self::Fact {
        input.clone()
    }
}

/// A path `start -> … -> target` over live edges avoiding `avoid`, if
/// one exists (BFS, so the witness is shortest).
fn witness_path(
    scope: &CompiledScope,
    facts: &ScopeFacts,
    target: ActId,
    avoid: &BTreeSet<ActId>,
) -> Option<Vec<String>> {
    let mut parent: BTreeMap<ActId, ActId> = BTreeMap::new();
    let mut queue: VecDeque<ActId> = VecDeque::new();
    let mut seen: BTreeSet<ActId> = BTreeSet::new();
    for &s in &scope.starts {
        if !avoid.contains(&s) && !facts.dead[s as usize] {
            seen.insert(s);
            queue.push_back(s);
        }
    }
    while let Some(n) = queue.pop_front() {
        if n == target {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = parent.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(
                path.into_iter()
                    .map(|i| scope.acts[i as usize].name.clone())
                    .collect(),
            );
        }
        for &e in &scope.acts[n as usize].outgoing {
            let edge = &scope.edges[e as usize];
            if facts.edge_verdict[e as usize] == Some(false) {
                continue;
            }
            let next = edge.to;
            if next != target && (avoid.contains(&next) || facts.dead[next as usize]) {
                continue;
            }
            if seen.insert(next) {
                parent.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

impl Lint for LivenessLint {
    fn name(&self) -> &'static str {
        "liveness"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["WA101", "WA102"]
    }

    fn check(&self, ctx: &ProcessCtx<'_>, out: &mut Vec<Diagnostic>) {
        let def = ctx.process;
        // The semantic passes need a compilable definition; hard model
        // violations are WA001–WA015's business.
        if !wfms_model::validate(def).is_empty() {
            return;
        }
        let tpl = CompiledProcess::compile(def.clone());
        let scope = tpl.root.as_ref();
        let facts = analyze_scope(scope);
        let analysis = MustCompleted { facts: &facts };
        let sol = solve(&analysis, scope);
        if !sol.converged {
            return; // cyclic scope — WA022 reports it
        }

        // Writers per (reader activity, input member): activity-output
        // sources only; a PROCESS.INPUT source is available from
        // instance start and satisfies the read unconditionally.
        let mut writers: BTreeMap<(&str, &str), Vec<&str>> = BTreeMap::new();
        let mut from_process_input: BTreeSet<(&str, &str)> = BTreeSet::new();
        for d in &def.data {
            let DataEndpoint::ActivityInput(reader) = &d.to else {
                continue;
            };
            for m in &d.mappings {
                match &d.from {
                    DataEndpoint::ActivityOutput(src) => writers
                        .entry((reader.as_str(), m.to_member.as_str()))
                        .or_default()
                        .push(src.as_str()),
                    DataEndpoint::ProcessInput => {
                        from_process_input.insert((reader.as_str(), m.to_member.as_str()));
                    }
                    _ => {}
                }
            }
        }

        // WA101: reads not covered on every feasible path.
        for (i, act) in scope.acts.iter().enumerate() {
            if facts.dead[i] || matches!(act.kind, CompiledKind::NoOp) {
                continue;
            }
            let must = &sol.input[i];
            for m in &act.input.members {
                if m.default.is_some()
                    || from_process_input.contains(&(act.name.as_str(), m.name.as_str()))
                {
                    continue;
                }
                let Some(srcs) = writers.get(&(act.name.as_str(), m.name.as_str())) else {
                    continue; // no writer at all: WA041 (error) already fired
                };
                let src_ids: BTreeSet<ActId> = srcs
                    .iter()
                    .filter_map(|s| scope.id(s))
                    .filter(|&s| !facts.dead[s as usize])
                    .collect();
                if src_ids.iter().any(|s| must.contains(s)) {
                    continue;
                }
                // Not guaranteed — but only report with a concrete
                // feasible path that reaches the reader past every
                // writer; if no such path exists, every run writes
                // first and the must-analysis was merely imprecise.
                let Some(path) = witness_path(scope, &facts, i as ActId, &src_ids) else {
                    continue;
                };
                let writer_list = srcs.join(", ");
                let detail = if src_ids.is_empty() {
                    format!("its only writer(s) ({writer_list}) are statically dead")
                } else {
                    format!(
                        "the path {} reaches it without executing any of its \
                         writer(s) ({writer_list})",
                        path.join(" -> ")
                    )
                };
                out.push(
                    Diagnostic::new(
                        "WA101",
                        Severity::Warning,
                        &ctx.path,
                        Some(act.name.clone()),
                        format!(
                            "input member {:?} of {:?} may be read before it is \
                             written: {detail}",
                            m.name, act.name
                        ),
                    )
                    .with_pos(ctx.pos_activity(&act.name)),
                );
            }
        }

        // WA102: data connectors with a statically dead endpoint.
        let dead_by_name: BTreeSet<&str> = scope
            .acts
            .iter()
            .enumerate()
            .filter(|(i, _)| facts.dead[*i])
            .map(|(_, a)| a.name.as_str())
            .collect();
        for d in &def.data {
            let dead_end = match (&d.from, &d.to) {
                (DataEndpoint::ActivityOutput(a), _) if dead_by_name.contains(a.as_str()) => {
                    Some(format!("source activity {a:?} is statically dead"))
                }
                (_, DataEndpoint::ActivityInput(a)) if dead_by_name.contains(a.as_str()) => {
                    Some(format!("sink activity {a:?} is statically dead"))
                }
                _ => None,
            };
            if let Some(reason) = dead_end {
                let label = format!("{} => {}", d.from, d.to);
                out.push(
                    Diagnostic::new(
                        "WA102",
                        Severity::Warning,
                        &ctx.path,
                        Some(label.clone()),
                        format!("data connector {label} never takes effect: {reason}"),
                    )
                    .with_pos(ctx.pos_data(&label)),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Analyzer, Diagnostic, Severity};

    fn lint(src: &str) -> Vec<Diagnostic> {
        let (def, prov) = wfms_fdl::parse_with_provenance(src).unwrap();
        Analyzer::new().check_process(&def, Some(&prov))
    }

    #[test]
    fn parallel_branch_read_is_flagged_with_witness() {
        // C's input comes from B's output, and a control path B -> C
        // exists (so the model-level WA012 is satisfied) — but the
        // A -> C shortcut reaches the read without executing B.
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" OUTPUT ( x: INT ) END
              ACTIVITY C PROGRAM "c" INPUT ( y: INT ) START OR END
              CONTROL FROM A TO B WHEN "RC = 1"
              CONTROL FROM A TO C WHEN "RC = 0"
              CONTROL FROM B TO C
              DATA FROM B.OUTPUT TO C.INPUT MAP x -> y
            END
        "#,
        );
        let d = diags.iter().find(|d| d.code == "WA101").expect("WA101");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.element.as_deref(), Some("C"));
        assert!(d.message.contains("A -> C"), "witness in {:?}", d.message);
        assert!(d.pos.is_some());
    }

    #[test]
    fn upstream_writer_satisfies_the_read() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY B PROGRAM "b" OUTPUT ( x: INT ) END
              ACTIVITY C PROGRAM "c" INPUT ( y: INT ) END
              CONTROL FROM B TO C WHEN "RC = 1"
              DATA FROM B.OUTPUT TO C.INPUT MAP x -> y
            END
        "#,
        );
        assert!(diags.iter().all(|d| d.code != "WA101"), "{diags:?}");
    }

    #[test]
    fn and_join_collects_both_branches() {
        // D AND-joins B and C: both are in D's must-completed set.
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" OUTPUT ( x: INT ) END
              ACTIVITY C PROGRAM "c" OUTPUT ( y: INT ) END
              ACTIVITY D PROGRAM "d" INPUT ( x: INT, y: INT ) START AND END
              CONTROL FROM A TO B
              CONTROL FROM A TO C
              CONTROL FROM B TO D
              CONTROL FROM C TO D
              DATA FROM B.OUTPUT TO D.INPUT MAP x -> x
              DATA FROM C.OUTPUT TO D.INPUT MAP y -> y
            END
        "#,
        );
        assert!(diags.iter().all(|d| d.code != "WA101"), "{diags:?}");
    }

    #[test]
    fn or_join_keeps_only_the_guaranteed_prefix() {
        // D OR-joins B and C; only A is common to both paths, so a
        // write sourced from B is not guaranteed.
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" OUTPUT ( x: INT ) END
              ACTIVITY C PROGRAM "c" END
              ACTIVITY D PROGRAM "d" INPUT ( v: INT ) START OR END
              CONTROL FROM A TO B WHEN "RC = 1"
              CONTROL FROM A TO C WHEN "RC = 0"
              CONTROL FROM B TO D
              CONTROL FROM C TO D
              DATA FROM B.OUTPUT TO D.INPUT MAP x -> v
            END
        "#,
        );
        let d = diags.iter().find(|d| d.code == "WA101").expect("WA101");
        assert!(d.message.contains('C'), "witness via C: {:?}", d.message);
    }

    #[test]
    fn noop_passthrough_reads_are_exempt() {
        // The saga-translation idiom: a NOOP collects flags from
        // multiple optional writers; unset members fold to false in
        // the downstream conditions, by design.
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" END
              NOOP Trigger INPUT ( State_A: INT, State_B: INT )
                           OUTPUT ( State_A: INT, State_B: INT ) START OR END
              CONTROL FROM A TO B WHEN "RC = 1"
              CONTROL FROM A TO Trigger WHEN "RC = 0"
              CONTROL FROM B TO Trigger WHEN "RC = 0"
              DATA FROM A.OUTPUT TO Trigger.INPUT MAP RC -> State_A
              DATA FROM B.OUTPUT TO Trigger.INPUT MAP RC -> State_B
            END
        "#,
        );
        assert!(diags.iter().all(|d| d.code != "WA101"), "{diags:?}");
    }

    #[test]
    fn default_exempts_the_member() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" OUTPUT ( x: INT ) END
              ACTIVITY C PROGRAM "c" INPUT ( y: INT DEFAULT 0 ) START OR END
              CONTROL FROM A TO B WHEN "RC = 1"
              CONTROL FROM A TO C WHEN "RC = 0"
              CONTROL FROM B TO C
              DATA FROM B.OUTPUT TO C.INPUT MAP x -> y
            END
        "#,
        );
        assert!(diags.iter().all(|d| d.code != "WA101"), "{diags:?}");
    }

    #[test]
    fn dead_endpoint_connector_is_a_dead_write() {
        // Gate pins RC = 1 via its exit condition, so the RC = 0 edge
        // is decided false and Dead is statically dead — both its
        // feeding and draining connectors are inert.
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY Gate PROGRAM "g" EXIT WHEN "RC = 1" OUTPUT ( x: INT ) END
              ACTIVITY Live PROGRAM "l" END
              ACTIVITY Dead PROGRAM "d" INPUT ( v: INT DEFAULT 0 ) OUTPUT ( w: INT ) END
              ACTIVITY Sink PROGRAM "s" INPUT ( u: INT DEFAULT 0 ) END
              CONTROL FROM Gate TO Live WHEN "RC = 1"
              CONTROL FROM Gate TO Dead WHEN "RC = 0"
              CONTROL FROM Dead TO Sink
              DATA FROM Gate.OUTPUT TO Dead.INPUT MAP x -> v
              DATA FROM Dead.OUTPUT TO Sink.INPUT MAP w -> u
            END
        "#,
        );
        let dead_writes: Vec<_> = diags.iter().filter(|d| d.code == "WA102").collect();
        assert_eq!(dead_writes.len(), 2, "{diags:?}");
        assert!(dead_writes[0].pos.is_some());
    }

    #[test]
    fn live_connectors_not_flagged() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" OUTPUT ( x: INT ) END
              ACTIVITY B PROGRAM "b" INPUT ( y: INT ) END
              CONTROL FROM A TO B
              DATA FROM A.OUTPUT TO B.INPUT MAP x -> y
            END
        "#,
        );
        assert!(diags.iter().all(|d| d.code != "WA102"), "{diags:?}");
    }
}
