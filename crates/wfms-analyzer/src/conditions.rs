//! `WA031`–`WA034`: condition analysis via constant folding.
//!
//! Uses [`wfms_model::Expr::const_fold`] to find conditions whose
//! outcome is fixed before the workflow ever runs:
//!
//! * `WA031` — a control connector whose condition is always `FALSE`;
//!   the connector can never fire (warning — the target may still be
//!   reachable another way; if not, the graph lint escalates with
//!   `WA035`).
//! * `WA032` — a condition that is always `TRUE` but is not the
//!   literal unconditional `TRUE` (note: write the intent, drop the
//!   redundant test).
//! * `WA033` — an exit condition that can never be satisfied, either
//!   always `FALSE` or guaranteed to fail evaluation: the engine
//!   reschedules the activity forever (error).
//! * `WA034` — a connector condition guaranteed to fail evaluation
//!   (`1 / 0 = 1`): the engine treats it as false with an audit
//!   warning on every navigation step (warning).

use crate::{Diagnostic, Lint, ProcessCtx, Severity};
use txn_substrate::Value;
use wfms_model::Expr;

/// Constant-foldable condition lints.
pub struct ConditionLint;

impl Lint for ConditionLint {
    fn name(&self) -> &'static str {
        "conditions"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["WA031", "WA032", "WA033", "WA034"]
    }

    fn check(&self, ctx: &ProcessCtx<'_>, out: &mut Vec<Diagnostic>) {
        let def = ctx.process;
        for c in &def.control {
            // The canonical unconditional connector is fine.
            if c.condition == Expr::truth() {
                continue;
            }
            let label = format!("{} -> {}", c.from, c.to);
            let pos = ctx.pos_control(&c.from, &c.to);
            match c.condition.const_value() {
                Some(Value::Bool(false)) => out.push(
                    Diagnostic::new(
                        "WA031",
                        Severity::Warning,
                        &ctx.path,
                        Some(label.clone()),
                        format!(
                            "condition {:?} on connector {label} is always false; \
                             the connector can never fire",
                            c.condition.to_string()
                        ),
                    )
                    .with_pos(pos),
                ),
                Some(Value::Bool(true)) => out.push(
                    Diagnostic::new(
                        "WA032",
                        Severity::Note,
                        &ctx.path,
                        Some(label.clone()),
                        format!(
                            "condition {:?} on connector {label} is always true; \
                             the connector is unconditional",
                            c.condition.to_string()
                        ),
                    )
                    .with_pos(pos),
                ),
                _ => {
                    if let Some(err) = c.condition.const_error() {
                        out.push(
                            Diagnostic::new(
                                "WA034",
                                Severity::Warning,
                                &ctx.path,
                                Some(label.clone()),
                                format!(
                                    "condition {:?} on connector {label} always fails to \
                                     evaluate ({err}); the engine treats it as false",
                                    c.condition.to_string()
                                ),
                            )
                            .with_pos(pos),
                        );
                    }
                }
            }
        }
        for a in &def.activities {
            let Some(expr) = &a.exit.expr else { continue };
            if *expr == Expr::truth() {
                continue;
            }
            let pos = ctx.pos_activity(&a.name);
            let never = match expr.const_value() {
                Some(Value::Bool(false)) => Some("is always false".to_owned()),
                Some(Value::Bool(true)) => {
                    out.push(
                        Diagnostic::new(
                            "WA032",
                            Severity::Note,
                            &ctx.path,
                            Some(a.name.clone()),
                            format!(
                                "exit condition {:?} of {:?} is always true; the \
                                 activity exits after its first execution anyway",
                                expr.to_string(),
                                a.name
                            ),
                        )
                        .with_pos(pos),
                    );
                    None
                }
                _ => expr
                    .const_error()
                    .map(|err| format!("always fails to evaluate ({err})")),
            };
            if let Some(reason) = never {
                out.push(
                    Diagnostic::new(
                        "WA033",
                        Severity::Error,
                        &ctx.path,
                        Some(a.name.clone()),
                        format!(
                            "exit condition {:?} of {:?} {reason}: the engine would \
                             reschedule the activity forever",
                            expr.to_string(),
                            a.name
                        ),
                    )
                    .with_pos(pos),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let (def, prov) = wfms_fdl::parse_with_provenance(src).unwrap();
        Analyzer::new().check_process(&def, Some(&prov))
    }

    #[test]
    fn always_false_connector_warned_at_its_line() {
        let src = "PROCESS p\n  ACTIVITY A PROGRAM \"a\" END\n  ACTIVITY B PROGRAM \"b\" END\n  CONTROL FROM A TO B WHEN \"1 = 2\"\nEND";
        let diags = lint(src);
        let d = diags.iter().find(|d| d.code == "WA031").expect("WA031");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.pos.map(|p| p.line), Some(4));
        // ... and B is consequently statically dead.
        assert!(diags.iter().any(|d| d.code == "WA035"));
    }

    #[test]
    fn always_true_guard_noted() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" END
              CONTROL FROM A TO B WHEN "1 = 1 OR RC = 9"
            END
        "#,
        );
        let d = diags.iter().find(|d| d.code == "WA032").expect("WA032");
        assert_eq!(d.severity, Severity::Note);
        assert_eq!(diags.len(), 1, "note only: {diags:?}");
    }

    #[test]
    fn plain_unconditional_connector_not_noted() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" END
              CONTROL FROM A TO B
            END
        "#,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn always_false_exit_is_an_error() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" EXIT WHEN "1 = 2" END
            END
        "#,
        );
        let d = diags.iter().find(|d| d.code == "WA033").expect("WA033");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.element.as_deref(), Some("A"));
    }

    #[test]
    fn guaranteed_eval_error_flagged() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" END
              ACTIVITY B PROGRAM "b" END
              ACTIVITY C PROGRAM "c" END
              CONTROL FROM A TO B WHEN "1 / 0 = 1"
              CONTROL FROM A TO C
            END
        "#,
        );
        let d = diags.iter().find(|d| d.code == "WA034").expect("WA034");
        assert!(d.message.contains("division by zero"), "{:?}", d.message);
        // The erroring edge is dead, so B is statically dead too.
        assert!(diags.iter().any(|d| d.code == "WA035"));
    }

    #[test]
    fn exit_with_eval_error_is_an_error() {
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" EXIT WHEN "1 / 0 = 1" END
            END
        "#,
        );
        let d = diags.iter().find(|d| d.code == "WA033").expect("WA033");
        assert!(d.message.contains("fails to evaluate"), "{:?}", d.message);
    }

    #[test]
    fn data_dependent_conditions_untouched() {
        // "RC > 0" admits several return codes, so the exit pins no
        // completion fact and neither the syntactic lints nor the
        // propagation pass (WA103–WA105) can decide the transition.
        let diags = lint(
            r#"
            PROCESS p
              ACTIVITY A PROGRAM "a" EXIT WHEN "RC > 0" END
              ACTIVITY B PROGRAM "b" END
              CONTROL FROM A TO B WHEN "RC = 0"
            END
        "#,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
