//! Property-based tests of the condition-expression language:
//! display/parse round-trips, evaluator totality and algebraic
//! properties used by the navigator.

use proptest::prelude::*;
use txn_substrate::Value;
use wfms_model::{Env, Expr, MapEnv};

/// Random expression trees over a small variable universe.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(|n| Expr::Lit(Value::Int(n))),
        any::<bool>().prop_map(|b| Expr::Lit(Value::Bool(b))),
        "[a-c]{1,4}".prop_map(|s| Expr::Lit(Value::Str(s))),
        prop_oneof![Just("RC"), Just("State_1"), Just("x"), Just("y")]
            .prop_map(|v| Expr::Var(v.to_owned())),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Cmp(
                Box::new(a),
                wfms_model::expr::CmpOp::Eq,
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Cmp(
                Box::new(a),
                wfms_model::expr::CmpOp::Lt,
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Arith(
                Box::new(a),
                wfms_model::expr::ArithOp::Add,
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Arith(
                Box::new(a),
                wfms_model::expr::ArithOp::Div,
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            inner.prop_map(|a| Expr::Neg(Box::new(a))),
        ]
    })
}

fn env_strategy() -> impl Strategy<Value = MapEnv> {
    (
        -5i64..5,
        -5i64..5,
        prop_oneof![
            (-5i64..5).prop_map(Value::Int),
            any::<bool>().prop_map(Value::Bool),
            "[a-c]{0,3}".prop_map(Value::from),
        ],
        prop_oneof![
            (-5i64..5).prop_map(Value::Int),
            any::<bool>().prop_map(Value::Bool),
        ],
    )
        .prop_map(|(rc, s1, x, y)| {
            MapEnv(
                [
                    ("RC".to_string(), Value::Int(rc)),
                    ("State_1".to_string(), Value::Int(s1)),
                    ("x".to_string(), x),
                    ("y".to_string(), y),
                ]
                .into_iter()
                .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Display emits text that parses back to the same tree, up to
    /// the parser's normal form (unary minus on integer literals is
    /// folded): one round normalises, further rounds are identity,
    /// and the normal form is semantically equal to the original.
    #[test]
    fn display_parse_round_trip(e in expr_strategy(), env in env_strategy()) {
        let text = e.to_string();
        let n1 = Expr::parse(&text)
            .unwrap_or_else(|err| panic!("reparse of {text:?} failed: {err}"));
        let n2 = Expr::parse(&n1.to_string()).unwrap();
        prop_assert_eq!(&n2, &n1, "normal form must be a fixed point");
        prop_assert_eq!(n1.eval(&env), e.eval(&env), "normalisation preserves meaning");
    }

    /// Evaluation is total as a function: it never panics, and it is
    /// deterministic.
    #[test]
    fn eval_is_deterministic(e in expr_strategy(), env in env_strategy()) {
        let a = e.eval(&env);
        let b = e.eval(&env);
        prop_assert_eq!(a, b);
    }

    /// `variables()` is sound: evaluation only ever reports
    /// `UnknownVar` for names outside the declared set, and an
    /// environment defining all reported variables never produces
    /// `UnknownVar`.
    #[test]
    fn variables_is_sound(e in expr_strategy(), env in env_strategy()) {
        for v in e.variables() {
            prop_assert!(env.lookup(&v).is_some(), "strategy env covers {v}");
        }
        if let Err(wfms_model::ExprError::UnknownVar(v)) = e.eval(&env) {
            prop_assert!(false, "env covers all vars but {v} was unknown");
        }
    }

    /// De Morgan on the condition algebra, modulo evaluation errors:
    /// when both sides evaluate cleanly, NOT(a AND b) == NOT a OR NOT b.
    /// (Short-circuiting can make one side error where the other does
    /// not, so error cases are exempt.)
    #[test]
    fn de_morgan_holds_on_clean_evaluations(
        a in expr_strategy(),
        b in expr_strategy(),
        env in env_strategy(),
    ) {
        let lhs = Expr::Not(Box::new(Expr::And(Box::new(a.clone()), Box::new(b.clone()))));
        let rhs = Expr::Or(
            Box::new(Expr::Not(Box::new(a))),
            Box::new(Expr::Not(Box::new(b))),
        );
        if let (Ok(l), Ok(r)) = (lhs.eval(&env), rhs.eval(&env)) {
            prop_assert_eq!(l, r);
        }
    }

    /// Parsing arbitrary garbage never panics.
    #[test]
    fn parse_never_panics(s in "\\PC{0,40}") {
        let _ = Expr::parse(&s);
    }
}
