//! Edge cases of `Expr::const_fold` / `const_value` / `const_error`:
//! short-circuit folding around erroring operands, division by a
//! constant zero, and mixed-type comparison chains. These pin the
//! soundness contract the analyzer's condition-propagation pass
//! relies on: folding never changes what `eval` would observe.

use txn_substrate::Value;
use wfms_model::{Expr, ExprError, MapEnv};

fn parse(s: &str) -> Expr {
    Expr::parse(s).unwrap_or_else(|e| panic!("parse {s:?}: {e}"))
}

fn env() -> MapEnv {
    MapEnv::of(&[("RC", Value::Int(0)), ("name", Value::from("alice"))])
}

// -------------------------------------------------------------------
// Short-circuit AND/OR with erroring operands
// -------------------------------------------------------------------

#[test]
fn false_and_erroring_rhs_folds_to_false() {
    // eval short-circuits: the RHS `1 / 0 = 1` is never evaluated, so
    // the whole thing is FALSE — folding must agree, not surface the
    // dead error.
    let e = parse("1 = 2 AND 1 / 0 = 1");
    assert_eq!(e.const_value(), Some(Value::Bool(false)));
    assert_eq!(e.const_error(), None);
    assert_eq!(e.eval(&env()).unwrap(), Value::Bool(false));
}

#[test]
fn true_or_erroring_rhs_folds_to_true() {
    let e = parse("1 = 1 OR 1 % 0 = 1");
    assert_eq!(e.const_value(), Some(Value::Bool(true)));
    assert_eq!(e.const_error(), None);
    assert_eq!(e.eval(&env()).unwrap(), Value::Bool(true));
}

#[test]
fn erroring_lhs_is_not_skipped() {
    // The LEFT operand errors before any short-circuit decision can be
    // made, so the error is guaranteed in every environment.
    for src in ["1 / 0 = 0 AND RC = 1", "1 / 0 = 0 OR RC = 1"] {
        let e = parse(src);
        assert_eq!(e.const_value(), None, "{src:?} must not fold to a value");
        assert!(
            matches!(e.const_error(), Some(ExprError::DivisionByZero)),
            "{src:?} must report its guaranteed error"
        );
        assert!(matches!(e.eval(&env()), Err(ExprError::DivisionByZero)));
    }
}

#[test]
fn true_and_erroring_rhs_keeps_the_error() {
    // TRUE AND x folds to x; when x is guaranteed to error, the fold
    // must preserve that error rather than swallowing it.
    let e = parse("1 = 1 AND 1 / 0 = 1");
    assert_eq!(e.const_value(), None);
    assert!(matches!(e.const_error(), Some(ExprError::DivisionByZero)));
    assert!(matches!(e.eval(&env()), Err(ExprError::DivisionByZero)));

    let e = parse("1 = 2 OR 1 / 0 = 1");
    assert_eq!(e.const_value(), None);
    assert!(matches!(e.const_error(), Some(ExprError::DivisionByZero)));
}

#[test]
fn variable_lhs_blocks_short_circuit_folding() {
    // RC = 0 is environment-dependent, so neither branch of the AND
    // can be discarded; the erroring RHS stays in the tree but is not
    // a *guaranteed* error (some environments never reach it).
    let e = parse("RC = 1 AND 1 / 0 = 1");
    assert_eq!(e.const_value(), None);
    assert_eq!(e.const_error(), None);
    // RC = 0 here: AND short-circuits at run time, no error observed.
    assert_eq!(e.eval(&env()).unwrap(), Value::Bool(false));
    assert_eq!(e.const_fold().eval(&env()).unwrap(), Value::Bool(false));
}

#[test]
fn nested_short_circuits_fold_through() {
    // The inner `1 = 2 AND …` folds to FALSE, which then feeds the
    // outer OR's left operand, folding the whole tree to the RHS.
    let e = parse("(1 = 2 AND 1 / 0 = 1) OR RC = 0");
    assert_eq!(e.const_fold(), parse("RC = 0"));
    // And with a constant RHS the whole tree becomes a literal.
    let e = parse("(1 = 2 AND 1 / 0 = 1) OR 2 = 2");
    assert_eq!(e.const_value(), Some(Value::Bool(true)));
}

// -------------------------------------------------------------------
// Division / remainder by constant zero
// -------------------------------------------------------------------

#[test]
fn division_by_constant_zero_never_folds_to_a_value() {
    for src in ["1 / 0", "1 % 0", "1 / (2 - 2)", "5 % (1 - 1)", "1 / 0 = 1"] {
        let e = parse(src);
        assert_eq!(e.const_value(), None, "{src:?} must not fold to a value");
        assert!(
            matches!(e.const_error(), Some(ExprError::DivisionByZero)),
            "{src:?} must report DivisionByZero"
        );
    }
}

#[test]
fn division_by_folded_nonzero_constant_folds() {
    // The divisor folds to a non-zero constant first, then the
    // division folds normally.
    let e = parse("10 / (1 + 1)");
    assert_eq!(e.const_value(), Some(Value::Int(5)));
    let e = parse("7 % (5 - 3) = 1");
    assert_eq!(e.const_value(), Some(Value::Bool(true)));
}

#[test]
fn division_by_variable_is_not_a_guaranteed_error() {
    let e = parse("1 / RC = 1");
    assert_eq!(e.const_error(), None);
    assert_eq!(e.const_value(), None);
    // RC = 0 in this environment, so eval does error — but only
    // dynamically, which is exactly why const_error must stay None.
    assert!(matches!(e.eval(&env()), Err(ExprError::DivisionByZero)));
}

// -------------------------------------------------------------------
// Mixed-type comparison chains
// -------------------------------------------------------------------

#[test]
fn mixed_type_literal_comparison_is_a_guaranteed_error() {
    for src in ["1 = \"one\"", "\"a\" < 2", "TRUE < FALSE", "1 + \"x\" = 2"] {
        let e = parse(src);
        assert_eq!(e.const_value(), None, "{src:?} must not fold to a value");
        assert!(
            matches!(e.const_error(), Some(ExprError::TypeMismatch { .. })),
            "{src:?} must report TypeMismatch, got {:?}",
            e.const_error()
        );
    }
}

#[test]
fn boolean_equality_is_well_typed_but_ordering_is_not() {
    assert_eq!(parse("TRUE = TRUE").const_value(), Some(Value::Bool(true)));
    assert_eq!(
        parse("TRUE <> FALSE").const_value(),
        Some(Value::Bool(true))
    );
    assert!(matches!(
        parse("TRUE <= TRUE").const_error(),
        Some(ExprError::TypeMismatch { .. })
    ));
}

#[test]
fn mixed_type_chain_short_circuits_before_the_mismatch() {
    // The mismatching comparison sits behind a statically-false AND
    // arm: folding discards it, so the chain is constantly FALSE.
    let e = parse("2 < 1 AND name = 1");
    assert_eq!(e.const_value(), Some(Value::Bool(false)));
    assert_eq!(e.const_error(), None);

    // Reversed: the mismatch is in the left arm, so it is guaranteed.
    let e = parse("\"x\" = 1 AND 2 < 1");
    assert!(matches!(
        e.const_error(),
        Some(ExprError::TypeMismatch { .. })
    ));
}

#[test]
fn mixed_chain_with_variables_folds_only_constant_arms() {
    // String and integer comparisons mixed in one chain: the constant
    // arms fold away, leaving just the variable test.
    let e = parse("\"a\" < \"b\" AND 1 + 1 = 2 AND RC = 0");
    assert_eq!(e.const_fold(), parse("RC = 0"));
    assert!(e.eval_bool(&env()).unwrap());

    let e = parse("name = \"alice\" OR 1 = 1");
    // Variable in the left arm: no short-circuit possible statically.
    assert_eq!(e.const_value(), None);
    assert!(e.eval_bool(&env()).unwrap());
}

#[test]
fn fold_agrees_with_eval_on_every_edge_case() {
    // The umbrella soundness check: wherever eval succeeds, the folded
    // expression must produce the same value; wherever eval errors,
    // the folded expression must error identically.
    for src in [
        "1 = 2 AND 1 / 0 = 1",
        "1 = 1 OR 1 % 0 = 1",
        "1 = 1 AND 1 / 0 = 1",
        "1 / 0 = 0 OR RC = 1",
        "RC = 1 AND 1 / 0 = 1",
        "1 / (2 - 2)",
        "1 = \"one\"",
        "TRUE < FALSE",
        "2 < 1 AND name = 1",
        "\"a\" < \"b\" AND RC = 0",
        "NOT (1 = 2 AND 1 / 0 = 1)",
    ] {
        let e = parse(src);
        let folded = e.const_fold();
        match e.eval(&env()) {
            Ok(v) => assert_eq!(
                folded.eval(&env()).unwrap(),
                v,
                "folded {src:?} must match eval"
            ),
            Err(err) => assert_eq!(
                folded.eval(&env()).unwrap_err(),
                err,
                "folded {src:?} must preserve the error"
            ),
        }
    }
}
