//! The condition-expression language.
//!
//! Transition conditions, exit conditions and start-condition guards
//! are expressions over container members: the paper's examples test
//! return codes (`RC = 0`) and recorded activity states
//! (`State_3 = 1`). The language here is the small, total language
//! those idioms need:
//!
//! ```text
//! expr  := or
//! or    := and ( OR and )*
//! and   := not ( AND not )*
//! not   := NOT not | cmp
//! cmp   := add ( ( = | <> | < | <= | > | >= ) add )?
//! add   := mul ( ( + | - ) mul )*
//! mul   := unary ( ( * | / | % ) unary )*
//! unary := - unary | prim
//! prim  := INT | STRING | TRUE | FALSE | IDENT | ( expr )
//! ```
//!
//! Identifiers (`RC`, `State_1`, …) resolve through an [`Env`].
//! Evaluation is strict and typed: comparing an integer to a string,
//! or referencing an unknown member, is an [`ExprError`] — the static
//! validator rejects such expressions at import time, and the engine
//! treats a run-time error as "condition false" plus an audit warning,
//! mirroring a production engine's fail-safe behaviour.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use txn_substrate::Value;

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Binary arithmetic operators (integers only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating; division by zero is an error)
    Div,
    /// `%` (remainder; zero modulus is an error)
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        })
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Container-member reference.
    Var(String),
    /// Comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Integer arithmetic.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Integer negation.
    Neg(Box<Expr>),
}

/// Errors from parsing or evaluating an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// Syntax error at byte offset, with a message.
    Parse { at: usize, msg: String },
    /// Reference to a member the environment does not define.
    UnknownVar(String),
    /// Operator applied to operands of the wrong type.
    TypeMismatch {
        op: String,
        lhs: String,
        rhs: String,
    },
    /// Division or remainder by zero.
    DivisionByZero,
    /// A boolean was required (condition position) but another type
    /// was produced.
    NotBoolean(String),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Parse { at, msg } => write!(f, "parse error at offset {at}: {msg}"),
            ExprError::UnknownVar(v) => write!(f, "unknown variable {v:?}"),
            ExprError::TypeMismatch { op, lhs, rhs } => {
                write!(f, "type mismatch: {lhs} {op} {rhs}")
            }
            ExprError::DivisionByZero => f.write_str("division by zero"),
            ExprError::NotBoolean(t) => write!(f, "expected a boolean condition, got {t}"),
        }
    }
}

impl std::error::Error for ExprError {}

/// Variable-resolution environment.
pub trait Env {
    /// Resolves a variable to its value, if defined.
    fn lookup(&self, name: &str) -> Option<Value>;
}

/// An [`Env`] backed by a map — used in tests and by the engine when
/// evaluating a condition against a single container.
#[derive(Debug, Clone, Default)]
pub struct MapEnv(pub BTreeMap<String, Value>);

impl MapEnv {
    /// Builds an environment from `(name, value)` pairs.
    pub fn of(pairs: &[(&str, Value)]) -> Self {
        Self(
            pairs
                .iter()
                .map(|(n, v)| (n.to_string(), v.clone()))
                .collect(),
        )
    }
}

impl Env for MapEnv {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.0.get(name).cloned()
    }
}

impl Env for crate::container::Container {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.get(name).cloned()
    }
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Int(_) => "INT",
        Value::Str(_) => "STRING",
        Value::Bool(_) => "BOOL",
        Value::Bytes(_) => "BYTES",
    }
}

impl Expr {
    /// Shorthand: the constant `TRUE` expression (FlowMark's default
    /// transition condition).
    pub fn truth() -> Expr {
        Expr::Lit(Value::Bool(true))
    }

    /// Shorthand: `var = int` — the workhorse comparison of the
    /// paper's constructions.
    pub fn var_eq_int(var: &str, n: i64) -> Expr {
        Expr::Cmp(
            Box::new(Expr::Var(var.to_owned())),
            CmpOp::Eq,
            Box::new(Expr::Lit(Value::Int(n))),
        )
    }

    /// Evaluates the expression in `env`.
    pub fn eval(&self, env: &dyn Env) -> Result<Value, ExprError> {
        match self {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Var(name) => env
                .lookup(name)
                .ok_or_else(|| ExprError::UnknownVar(name.clone())),
            Expr::Cmp(l, op, r) => {
                let lv = l.eval(env)?;
                let rv = r.eval(env)?;
                let b = match (&lv, &rv) {
                    (Value::Int(a), Value::Int(b)) => Self::cmp_ord(a.cmp(b), *op),
                    (Value::Str(a), Value::Str(b)) => Self::cmp_ord(a.cmp(b), *op),
                    (Value::Bool(a), Value::Bool(b)) => match op {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        _ => {
                            return Err(ExprError::TypeMismatch {
                                op: op.to_string(),
                                lhs: "BOOL".into(),
                                rhs: "BOOL".into(),
                            })
                        }
                    },
                    _ => {
                        return Err(ExprError::TypeMismatch {
                            op: op.to_string(),
                            lhs: type_name(&lv).into(),
                            rhs: type_name(&rv).into(),
                        })
                    }
                };
                Ok(Value::Bool(b))
            }
            Expr::Arith(l, op, r) => {
                let lv = l.eval(env)?;
                let rv = r.eval(env)?;
                match (&lv, &rv) {
                    (Value::Int(a), Value::Int(b)) => {
                        let out = match op {
                            ArithOp::Add => a.wrapping_add(*b),
                            ArithOp::Sub => a.wrapping_sub(*b),
                            ArithOp::Mul => a.wrapping_mul(*b),
                            ArithOp::Div => {
                                if *b == 0 {
                                    return Err(ExprError::DivisionByZero);
                                }
                                a.wrapping_div(*b)
                            }
                            ArithOp::Mod => {
                                if *b == 0 {
                                    return Err(ExprError::DivisionByZero);
                                }
                                a.wrapping_rem(*b)
                            }
                        };
                        Ok(Value::Int(out))
                    }
                    _ => Err(ExprError::TypeMismatch {
                        op: op.to_string(),
                        lhs: type_name(&lv).into(),
                        rhs: type_name(&rv).into(),
                    }),
                }
            }
            Expr::And(l, r) => {
                // Short-circuit, left to right.
                if !l
                    .eval(env)?
                    .as_bool()
                    .ok_or_else(|| ExprError::NotBoolean("left operand of AND".into()))?
                {
                    return Ok(Value::Bool(false));
                }
                let rv = r.eval(env)?;
                rv.as_bool()
                    .map(Value::Bool)
                    .ok_or_else(|| ExprError::NotBoolean("right operand of AND".into()))
            }
            Expr::Or(l, r) => {
                if l.eval(env)?
                    .as_bool()
                    .ok_or_else(|| ExprError::NotBoolean("left operand of OR".into()))?
                {
                    return Ok(Value::Bool(true));
                }
                let rv = r.eval(env)?;
                rv.as_bool()
                    .map(Value::Bool)
                    .ok_or_else(|| ExprError::NotBoolean("right operand of OR".into()))
            }
            Expr::Not(e) => {
                let v = e.eval(env)?;
                v.as_bool()
                    .map(|b| Value::Bool(!b))
                    .ok_or_else(|| ExprError::NotBoolean("operand of NOT".into()))
            }
            Expr::Neg(e) => {
                let v = e.eval(env)?;
                v.as_int()
                    .map(|i| Value::Int(i.wrapping_neg()))
                    .ok_or_else(|| ExprError::NotBoolean("operand of unary -".into()))
            }
        }
    }

    fn cmp_ord(ord: std::cmp::Ordering, op: CmpOp) -> bool {
        use std::cmp::Ordering::*;
        match op {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// Evaluates and requires a boolean result (condition position).
    pub fn eval_bool(&self, env: &dyn Env) -> Result<bool, ExprError> {
        let v = self.eval(env)?;
        v.as_bool()
            .ok_or_else(|| ExprError::NotBoolean(type_name(&v).into()))
    }

    /// All variable names referenced by the expression, sorted and
    /// deduplicated — the static validator checks each against the
    /// relevant container schema.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Cmp(l, _, r) | Expr::Arith(l, _, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.collect_vars(out),
        }
    }

    /// Constant-folds the expression, mirroring [`Expr::eval`]'s
    /// semantics on variable-free subexpressions.
    ///
    /// * Literal-only subtrees that evaluate without error are replaced
    ///   by their value (`1 + 2 = 3` folds to `TRUE`).
    /// * `AND`/`OR` short-circuit exactly like `eval`: a statically
    ///   `FALSE` left operand folds the whole conjunction even when the
    ///   right side references variables or would error (`FALSE AND
    ///   Ghost = 1` folds to `FALSE`), and a statically `TRUE` left
    ///   operand of `OR` folds to `TRUE`. A `TRUE` left operand of
    ///   `AND` (resp. `FALSE` of `OR`) folds to the right operand.
    /// * Subtrees whose evaluation is guaranteed to error (`1 / 0`,
    ///   literal type mismatches) are left unfolded so the run-time
    ///   behaviour — the engine treats an evaluation error as
    ///   "condition false" plus an audit warning — stays observable;
    ///   see [`Expr::const_error`].
    ///
    /// Folding is a sound static analysis: for every environment, the
    /// folded expression evaluates to the same value as the original
    /// whenever the original evaluates successfully.
    pub fn const_fold(&self) -> Expr {
        let folded = match self {
            Expr::Lit(_) | Expr::Var(_) => self.clone(),
            Expr::Cmp(l, op, r) => {
                Expr::Cmp(Box::new(l.const_fold()), *op, Box::new(r.const_fold()))
            }
            Expr::Arith(l, op, r) => {
                Expr::Arith(Box::new(l.const_fold()), *op, Box::new(r.const_fold()))
            }
            Expr::And(l, r) => {
                let lf = l.const_fold();
                match lf {
                    Expr::Lit(Value::Bool(false)) => return Expr::Lit(Value::Bool(false)),
                    Expr::Lit(Value::Bool(true)) => return r.const_fold(),
                    _ => Expr::And(Box::new(lf), Box::new(r.const_fold())),
                }
            }
            Expr::Or(l, r) => {
                let lf = l.const_fold();
                match lf {
                    Expr::Lit(Value::Bool(true)) => return Expr::Lit(Value::Bool(true)),
                    Expr::Lit(Value::Bool(false)) => return r.const_fold(),
                    _ => Expr::Or(Box::new(lf), Box::new(r.const_fold())),
                }
            }
            Expr::Not(e) => Expr::Not(Box::new(e.const_fold())),
            Expr::Neg(e) => Expr::Neg(Box::new(e.const_fold())),
        };
        if folded.variables().is_empty() {
            if let Ok(v) = folded.eval(&MapEnv::default()) {
                return Expr::Lit(v);
            }
        }
        folded
    }

    /// The expression's value if it is a compile-time constant
    /// (folds to a single literal), `None` otherwise.
    pub fn const_value(&self) -> Option<Value> {
        match self.const_fold() {
            Expr::Lit(v) => Some(v),
            _ => None,
        }
    }

    /// The evaluation error this expression is statically guaranteed
    /// to produce in *every* environment, if any — e.g. `1 / 0 = 1`
    /// always raises [`ExprError::DivisionByZero`]. The engine treats
    /// such errors as "condition false" plus an audit warning, so a
    /// guaranteed error makes the condition statically false.
    ///
    /// Detection walks the *leftmost evaluation spine* of the folded
    /// tree: `eval` evaluates that position first in every
    /// environment, so a variable-free erroring subtree there (`1 / 0
    /// = 0 AND RC = 1`) is guaranteed to surface verbatim. Errors
    /// further right are reported only when the whole expression is
    /// variable-free — a variable on the left could mask them with a
    /// different error, or short-circuit past them entirely.
    pub fn const_error(&self) -> Option<ExprError> {
        self.const_fold().guaranteed_error()
    }

    fn guaranteed_error(&self) -> Option<ExprError> {
        if self.variables().is_empty() {
            return self.eval(&MapEnv::default()).err();
        }
        match self {
            Expr::Lit(_) | Expr::Var(_) => None,
            Expr::Cmp(l, _, _) | Expr::Arith(l, _, _) | Expr::And(l, _) | Expr::Or(l, _) => {
                l.guaranteed_error()
            }
            Expr::Not(e) | Expr::Neg(e) => e.guaranteed_error(),
        }
    }

    /// Parses an expression from its textual form.
    pub fn parse(input: &str) -> Result<Expr, ExprError> {
        let tokens = lex(input)?;
        let mut p = Parser { tokens, pos: 0 };
        let e = p.or_expr()?;
        if p.pos != p.tokens.len() {
            return Err(ExprError::Parse {
                at: p.tokens[p.pos].1,
                msg: format!("unexpected trailing token {:?}", p.tokens[p.pos].0),
            });
        }
        Ok(e)
    }
}

impl fmt::Display for Expr {
    /// Renders the expression in the concrete syntax accepted by
    /// [`Expr::parse`]; `parse(x.to_string())` re-produces `x`'s
    /// semantics (parenthesisation is explicit, so the round trip is
    /// structural too).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(Value::Int(i)) => write!(f, "{i}"),
            Expr::Lit(Value::Str(s)) => write!(f, "\"{}\"", s.replace('"', "\\\"")),
            Expr::Lit(Value::Bool(b)) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Expr::Lit(Value::Bytes(_)) => f.write_str("<bytes>"),
            Expr::Var(v) => f.write_str(v),
            Expr::Cmp(l, op, r) => write!(f, "({l} {op} {r})"),
            Expr::Arith(l, op, r) => write!(f, "({l} {op} {r})"),
            Expr::And(l, r) => write!(f, "({l} AND {r})"),
            Expr::Or(l, r) => write!(f, "({l} OR {r})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
        }
    }
}

// ---------------------------------------------------------------------
// Lexer / parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Int(i64),
    Str(String),
    Ident(String),
    Kw(&'static str), // AND OR NOT TRUE FALSE
    Op(&'static str), // = <> < <= > >= + - * / % ( )
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>, ExprError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '(' | ')' | '+' | '*' | '/' | '%' | '=' | '-' => {
                let op = match c {
                    '(' => "(",
                    ')' => ")",
                    '+' => "+",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    '=' => "=",
                    _ => "-",
                };
                out.push((Tok::Op(op), start));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Op("<="), start));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push((Tok::Op("<>"), start));
                    i += 2;
                } else {
                    out.push((Tok::Op("<"), start));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Op(">="), start));
                    i += 2;
                } else {
                    out.push((Tok::Op(">"), start));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    // Accept `!=` as a synonym for `<>`.
                    out.push((Tok::Op("<>"), start));
                    i += 2;
                } else {
                    return Err(ExprError::Parse {
                        at: start,
                        msg: "unexpected '!'".into(),
                    });
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ExprError::Parse {
                                at: start,
                                msg: "unterminated string literal".into(),
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') if bytes.get(i + 1) == Some(&b'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push((Tok::Str(s), start));
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add((bytes[i] - b'0') as i64))
                        .ok_or(ExprError::Parse {
                            at: start,
                            msg: "integer literal overflows i64".into(),
                        })?;
                    i += 1;
                }
                out.push((Tok::Int(n), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                let word = &input[start..i];
                match word.to_ascii_uppercase().as_str() {
                    "AND" => out.push((Tok::Kw("AND"), start)),
                    "OR" => out.push((Tok::Kw("OR"), start)),
                    "NOT" => out.push((Tok::Kw("NOT"), start)),
                    "TRUE" => out.push((Tok::Kw("TRUE"), start)),
                    "FALSE" => out.push((Tok::Kw("FALSE"), start)),
                    _ => out.push((Tok::Ident(word.to_owned()), start)),
                }
            }
            other => {
                return Err(ExprError::Parse {
                    at: start,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|&(_, at)| at)
            .unwrap_or_else(|| self.tokens.last().map(|&(_, at)| at + 1).unwrap_or(0))
    }

    fn or_expr(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Tok::Kw("OR")) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.not_expr()?;
        while self.peek() == Some(&Tok::Kw("AND")) {
            self.bump();
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ExprError> {
        if self.peek() == Some(&Tok::Kw("NOT")) {
            self.bump();
            let e = self.not_expr()?;
            return Ok(Expr::Not(Box::new(e)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, ExprError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Op("=")) => Some(CmpOp::Eq),
            Some(Tok::Op("<>")) => Some(CmpOp::Ne),
            Some(Tok::Op("<")) => Some(CmpOp::Lt),
            Some(Tok::Op("<=")) => Some(CmpOp::Le),
            Some(Tok::Op(">")) => Some(CmpOp::Gt),
            Some(Tok::Op(">=")) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            return Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("+")) => ArithOp::Add,
                Some(Tok::Op("-")) => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("*")) => ArithOp::Mul,
                Some(Tok::Op("/")) => ArithOp::Div,
                Some(Tok::Op("%")) => ArithOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ExprError> {
        if self.peek() == Some(&Tok::Op("-")) {
            self.bump();
            let e = self.unary_expr()?;
            // Fold unary minus on integer literals so `-1` parses to
            // the literal −1: parsing is then a normalising function
            // and `parse ∘ display` is idempotent (the round-trip
            // property the FDL emitter relies on).
            if let Expr::Lit(Value::Int(n)) = e {
                return Ok(Expr::Lit(Value::Int(n.wrapping_neg())));
            }
            return Ok(Expr::Neg(Box::new(e)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ExprError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Expr::Lit(Value::Int(n))),
            Some(Tok::Str(s)) => Ok(Expr::Lit(Value::Str(s))),
            Some(Tok::Kw("TRUE")) => Ok(Expr::Lit(Value::Bool(true))),
            Some(Tok::Kw("FALSE")) => Ok(Expr::Lit(Value::Bool(false))),
            Some(Tok::Ident(name)) => Ok(Expr::Var(name)),
            Some(Tok::Op("(")) => {
                let e = self.or_expr()?;
                match self.bump() {
                    Some(Tok::Op(")")) => Ok(e),
                    _ => Err(ExprError::Parse {
                        at,
                        msg: "expected ')'".into(),
                    }),
                }
            }
            other => Err(ExprError::Parse {
                at,
                msg: format!("expected a value, variable or '(' but found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> MapEnv {
        MapEnv::of(&[
            ("RC", Value::Int(0)),
            ("State_1", Value::Int(1)),
            ("name", Value::from("alice")),
            ("flag", Value::Bool(true)),
        ])
    }

    fn eval_str(s: &str) -> Result<Value, ExprError> {
        Expr::parse(s).unwrap().eval(&env())
    }

    #[test]
    fn paper_idioms() {
        assert_eq!(eval_str("RC = 0").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("RC = 1").unwrap(), Value::Bool(false));
        assert_eq!(eval_str("State_1 = 1").unwrap(), Value::Bool(true));
        assert_eq!(
            eval_str("RC = 0 AND State_1 = 1").unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn precedence_and_over_or_cmp_over_and() {
        // OR(AND(a,b),c) shape: "FALSE AND FALSE OR TRUE" == TRUE
        assert_eq!(
            eval_str("FALSE AND FALSE OR TRUE").unwrap(),
            Value::Bool(true)
        );
        // Comparison binds tighter than AND.
        assert_eq!(eval_str("1 = 1 AND 2 = 2").unwrap(), Value::Bool(true));
        // Arithmetic binds tighter than comparison.
        assert_eq!(eval_str("1 + 2 * 3 = 7").unwrap(), Value::Bool(true));
    }

    #[test]
    fn not_and_parens() {
        assert_eq!(eval_str("NOT (RC = 1)").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("NOT NOT flag").unwrap(), Value::Bool(true));
    }

    #[test]
    fn string_and_bool_comparisons() {
        assert_eq!(eval_str("name = \"alice\"").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("name <> \"bob\"").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("name < \"bob\"").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("flag = TRUE").unwrap(), Value::Bool(true));
        assert!(matches!(
            eval_str("flag < TRUE"),
            Err(ExprError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn bang_eq_synonym() {
        assert_eq!(eval_str("RC != 1").unwrap(), Value::Bool(true));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_str("7 / 2").unwrap(), Value::Int(3));
        assert_eq!(eval_str("7 % 2").unwrap(), Value::Int(1));
        assert_eq!(eval_str("-3 + 5").unwrap(), Value::Int(2));
        assert_eq!(eval_str("10 - 2 - 3").unwrap(), Value::Int(5), "left assoc");
        assert!(matches!(eval_str("1 / 0"), Err(ExprError::DivisionByZero)));
        assert!(matches!(eval_str("1 % 0"), Err(ExprError::DivisionByZero)));
    }

    #[test]
    fn unknown_variable_errors() {
        assert!(matches!(
            eval_str("Ghost = 1"),
            Err(ExprError::UnknownVar(_))
        ));
    }

    #[test]
    fn type_mismatches_error() {
        assert!(matches!(
            eval_str("RC = \"x\""),
            Err(ExprError::TypeMismatch { .. })
        ));
        assert!(matches!(
            eval_str("name + 1"),
            Err(ExprError::TypeMismatch { .. })
        ));
        assert!(matches!(eval_str("NOT 3"), Err(ExprError::NotBoolean(_))));
        assert!(matches!(
            eval_str("1 AND TRUE"),
            Err(ExprError::NotBoolean(_))
        ));
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        // RHS references an unknown variable but is never evaluated.
        assert_eq!(eval_str("FALSE AND Ghost = 1").unwrap(), Value::Bool(false));
        assert_eq!(eval_str("TRUE OR Ghost = 1").unwrap(), Value::Bool(true));
    }

    #[test]
    fn parse_errors_carry_offsets() {
        match Expr::parse("RC = ") {
            Err(ExprError::Parse { msg, .. }) => assert!(msg.contains("expected a value")),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(Expr::parse("(RC = 1").is_err());
        assert!(Expr::parse("RC = 1 )").is_err());
        assert!(Expr::parse("\"unterminated").is_err());
        assert!(Expr::parse("a ! b").is_err());
        assert!(Expr::parse("99999999999999999999").is_err());
    }

    #[test]
    fn variables_sorted_and_deduped() {
        let e = Expr::parse("State_2 = 1 AND State_1 = 1 OR State_2 = 0").unwrap();
        assert_eq!(
            e.variables(),
            vec!["State_1".to_string(), "State_2".to_string()]
        );
    }

    #[test]
    fn display_parse_round_trip() {
        for src in [
            "RC = 0 AND State_1 = 1",
            "NOT (a = 1 OR b <> 2)",
            "1 + 2 * 3 - -4 >= x / 2 % 3",
            "name = \"al\\\"ice\"",
            "TRUE OR FALSE",
        ] {
            let e = Expr::parse(src).unwrap();
            let rendered = e.to_string();
            let re = Expr::parse(&rendered).unwrap();
            assert_eq!(re, e, "round trip of {src:?} via {rendered:?}");
        }
    }

    #[test]
    fn dotted_identifiers_allowed() {
        let e = Expr::parse("order.total > 100").unwrap();
        let env = MapEnv::of(&[("order.total", Value::Int(150))]);
        assert_eq!(e.eval(&env).unwrap(), Value::Bool(true));
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(eval_str("true and not false").unwrap(), Value::Bool(true));
    }

    #[test]
    fn eval_bool_rejects_non_bool() {
        let e = Expr::parse("1 + 1").unwrap();
        assert!(matches!(e.eval_bool(&env()), Err(ExprError::NotBoolean(_))));
        let t = Expr::parse("1 = 1").unwrap();
        assert!(t.eval_bool(&env()).unwrap());
    }

    #[test]
    fn container_is_an_env() {
        use crate::container::Container;
        let mut c = Container::empty();
        c.set("RC", Value::Int(1));
        let e = Expr::var_eq_int("RC", 1);
        assert!(e.eval_bool(&c).unwrap());
    }

    #[test]
    fn const_fold_literal_subtrees() {
        let folds = [
            ("1 + 2 = 3", "TRUE"),
            ("2 > 3", "FALSE"),
            ("-(2 + 3)", "-5"),
            ("NOT (1 = 1)", "FALSE"),
            ("\"a\" < \"b\"", "TRUE"),
        ];
        for (src, expect) in folds {
            let folded = Expr::parse(src).unwrap().const_fold();
            assert_eq!(folded.to_string(), expect, "folding {src:?}");
        }
    }

    #[test]
    fn const_fold_short_circuits_like_eval() {
        // FALSE AND <anything> folds even when the right side has
        // variables or would error — mirroring eval's short-circuit.
        let e = Expr::parse("1 = 2 AND Ghost / 0 = 1").unwrap();
        assert_eq!(e.const_value(), Some(Value::Bool(false)));
        let e = Expr::parse("1 = 1 OR Ghost = 1").unwrap();
        assert_eq!(e.const_value(), Some(Value::Bool(true)));
        // TRUE AND x folds to x; FALSE OR x folds to x.
        let e = Expr::parse("1 = 1 AND RC = 0").unwrap();
        assert_eq!(e.const_fold(), Expr::parse("RC = 0").unwrap());
        let e = Expr::parse("1 = 2 OR RC = 0").unwrap();
        assert_eq!(e.const_fold(), Expr::parse("RC = 0").unwrap());
    }

    #[test]
    fn const_fold_keeps_variable_expressions() {
        let e = Expr::parse("RC = 1 + 1").unwrap();
        let folded = e.const_fold();
        assert_eq!(folded, Expr::parse("RC = 2").unwrap());
        assert_eq!(folded.const_value(), None);
    }

    #[test]
    fn const_error_detects_guaranteed_failures() {
        let e = Expr::parse("1 / 0 = 1").unwrap();
        assert!(matches!(e.const_error(), Some(ExprError::DivisionByZero)));
        assert_eq!(e.const_value(), None);
        // A variable keeps the outcome environment-dependent.
        let e = Expr::parse("RC / 0 = 1").unwrap();
        assert_eq!(e.const_error(), None);
        // Sound expressions report no guaranteed error.
        assert_eq!(Expr::parse("RC = 1").unwrap().const_error(), None);
    }

    #[test]
    fn const_fold_agrees_with_eval() {
        for src in [
            "1 + 2 * 3 > 4",
            "RC > 1 AND 2 = 2",
            "1 = 2 AND RC = 1",
            "NOT (RC = 1 OR 1 = 1)",
            "-RC + -(1 + 1)",
        ] {
            let e = Expr::parse(src).unwrap();
            let folded = e.const_fold();
            assert_eq!(
                folded.eval(&env()).ok(),
                e.eval(&env()).ok(),
                "folded {src:?} must evaluate identically"
            );
        }
    }
}
