//! # wfms-model
//!
//! The workflow **meta-model** of the reproduced paper (Alonso et al.,
//! *Advanced Transaction Models in Workflow Contexts*, ICDE 1996,
//! §3.2 / Figure 1), following the Workflow Management Coalition
//! reference model with FlowMark's concrete vocabulary:
//!
//! * [`ProcessDefinition`] — an acyclic directed graph of activities
//!   with typed input/output containers, start and termination
//!   metadata.
//! * [`Activity`] — one step: a **program activity** (runs a registered
//!   transactional program), a **process activity / block** (runs an
//!   embedded subprocess — the paper's nesting and loop mechanism), or
//!   a **no-op** (the NOP trigger of the Figure 2 compensation block).
//! * [`ControlConnector`] — flow of control, guarded by a *transition
//!   condition* over the source activity's output container.
//! * [`DataConnector`] — flow of data: member-wise mappings between
//!   containers.
//! * [`Container`]/[`ContainerSchema`] — sequences of typed variables;
//!   every activity has an input and an output container, and the
//!   engine injects the reserved member `RC` (the program's return
//!   code) into every output container, which is what the paper's
//!   conditions (`RC = 0`, `State_1 = 1`) test.
//! * [`Expr`] — the condition-expression language (comparisons,
//!   boolean connectives, integer arithmetic) with a parser and an
//!   evaluator, used by transition conditions and exit conditions.
//! * [`StartCondition`] — AND/OR join semantics; [`ExitCondition`] —
//!   re-execute-until-true loop semantics (§3.2).
//! * [`validate()`](validate::validate) — static checks mirroring the FlowMark import stage
//!   of Figure 5: dangling connectors, cycles, type mismatches,
//!   unresolvable variables, duplicate names.
//!
//! The model is pure data: no execution semantics live here (see
//! `wfms-engine`), no concrete syntax (see `wfms-fdl`). This keeps the
//! layering of the paper's Figure 5 intact: specification → model →
//! executable template.

pub mod activity;
pub mod builder;
pub mod connector;
pub mod container;
pub mod dot;
pub mod expr;
pub mod intern;
pub mod process;
pub mod types;
pub mod validate;

pub use activity::{Activity, ActivityKind, StaffAssignment};
pub use builder::ProcessBuilder;
pub use connector::{ControlConnector, DataConnector, DataEndpoint, Mapping};
pub use container::{Container, ContainerSchema, MemberDecl};
pub use dot::to_dot;
pub use expr::{Env, Expr, ExprError, MapEnv};
pub use intern::Interner;
pub use process::{ExitCondition, ProcessDefinition, StartCondition};
pub use types::DataType;
pub use validate::{validate, ValidationError};

/// Reserved output-container member holding an activity's return code.
///
/// The engine writes the invoked program's return code here after every
/// execution; transition conditions and exit conditions read it. The
/// paper's constructions rely on the convention *committed ⇒ `RC = 1`,
/// aborted ⇒ `RC = 0`* (§4.2).
pub const RC_MEMBER: &str = "RC";
