//! A fluent builder for process definitions.
//!
//! Used throughout the tests, the examples and — most importantly — by
//! the Exotica/FMTM translator, which assembles Figure 2 / Figure 4
//! processes programmatically.

use crate::activity::Activity;
use crate::connector::{ControlConnector, DataConnector, DataEndpoint};
use crate::container::ContainerSchema;
use crate::process::ProcessDefinition;
use crate::validate::{validate, ValidationError};

/// Builds a [`ProcessDefinition`] incrementally.
#[derive(Debug)]
pub struct ProcessBuilder {
    process: ProcessDefinition,
}

impl From<ProcessDefinition> for ProcessBuilder {
    /// Re-opens an existing definition for further building — used by
    /// translators that post-process generated processes.
    fn from(process: ProcessDefinition) -> Self {
        Self { process }
    }
}

impl ProcessBuilder {
    /// Starts a builder for a process named `name`.
    pub fn new(name: &str) -> Self {
        Self {
            process: ProcessDefinition::new(name),
        }
    }

    /// Sets the version number.
    pub fn version(mut self, version: u32) -> Self {
        self.process.version = version;
        self
    }

    /// Sets the description.
    pub fn describe(mut self, text: &str) -> Self {
        self.process.description = text.to_owned();
        self
    }

    /// Sets the process input schema.
    pub fn input(mut self, schema: ContainerSchema) -> Self {
        self.process.input = schema;
        self
    }

    /// Sets the process output schema.
    pub fn output(mut self, schema: ContainerSchema) -> Self {
        self.process.output = schema;
        self
    }

    /// Adds a fully built activity.
    pub fn activity(mut self, activity: Activity) -> Self {
        self.process.activities.push(activity);
        self
    }

    /// Adds a program activity (customise with `Activity::program`
    /// plus [`ProcessBuilder::activity`] when more options are
    /// needed).
    pub fn program(self, name: &str, program: &str) -> Self {
        self.activity(Activity::program(name, program))
    }

    /// Adds a block activity embedding `inner`. The block facade's
    /// containers are copied from the embedded process so the
    /// block-container validation rule holds by construction.
    pub fn block(self, name: &str, inner: ProcessDefinition) -> Self {
        let input = inner.input.clone();
        let output = inner.output.clone();
        self.activity(
            Activity::block(name, inner)
                .with_input(input)
                .with_output(output),
        )
    }

    /// Adds a no-op activity.
    pub fn noop(self, name: &str) -> Self {
        self.activity(Activity::noop(name))
    }

    /// Adds an unconditional control connector.
    pub fn connect(mut self, from: &str, to: &str) -> Self {
        self.process.control.push(ControlConnector::new(from, to));
        self
    }

    /// Adds a control connector guarded by `condition`.
    ///
    /// # Panics
    /// Panics on a syntactically invalid condition.
    pub fn connect_when(mut self, from: &str, to: &str, condition: &str) -> Self {
        self.process
            .control
            .push(ControlConnector::when(from, to, condition));
        self
    }

    /// Adds a data connector from `from`'s output container to `to`'s
    /// input container.
    pub fn map_data(mut self, from: &str, to: &str, pairs: &[(&str, &str)]) -> Self {
        self.process.data.push(DataConnector::new(
            DataEndpoint::ActivityOutput(from.to_owned()),
            DataEndpoint::ActivityInput(to.to_owned()),
            pairs,
        ));
        self
    }

    /// Maps process input members into `to`'s input container.
    pub fn map_process_input(mut self, to: &str, pairs: &[(&str, &str)]) -> Self {
        self.process.data.push(DataConnector::new(
            DataEndpoint::ProcessInput,
            DataEndpoint::ActivityInput(to.to_owned()),
            pairs,
        ));
        self
    }

    /// Maps `from`'s output members into the process output container.
    pub fn map_to_process_output(mut self, from: &str, pairs: &[(&str, &str)]) -> Self {
        self.process.data.push(DataConnector::new(
            DataEndpoint::ActivityOutput(from.to_owned()),
            DataEndpoint::ProcessOutput,
            pairs,
        ));
        self
    }

    /// Returns the definition without validating (the FDL emitter and
    /// negative tests need malformed processes too).
    pub fn build_unchecked(self) -> ProcessDefinition {
        self.process
    }

    /// Validates and returns the definition, or every finding.
    pub fn build(self) -> Result<ProcessDefinition, Vec<ValidationError>> {
        let errors = validate(&self.process);
        if errors.is_empty() {
            Ok(self.process)
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    #[test]
    fn linear_process_builds_valid() {
        let p = ProcessBuilder::new("demo")
            .describe("three step chain")
            .program("A", "pa")
            .program("B", "pb")
            .program("C", "pc")
            .connect_when("A", "B", "RC = 1")
            .connect_when("B", "C", "RC = 1")
            .build()
            .unwrap();
        assert_eq!(p.activity_names(), vec!["A", "B", "C"]);
        assert_eq!(p.topo_order().unwrap(), vec!["A", "B", "C"]);
    }

    #[test]
    fn invalid_process_returns_all_errors() {
        let errs = ProcessBuilder::new("bad")
            .program("A", "pa")
            .connect("A", "Ghost1")
            .connect("A", "Ghost2")
            .build()
            .unwrap_err();
        assert_eq!(errs.len(), 2);
    }

    #[test]
    fn block_facade_copies_containers() {
        let inner = ProcessBuilder::new("inner")
            .input(ContainerSchema::of(&[("in", DataType::Int)]))
            .output(ContainerSchema::of(&[("out", DataType::Int)]))
            .program("X", "px")
            .build_unchecked();
        let outer = ProcessBuilder::new("outer")
            .block("B", inner)
            .build()
            .unwrap();
        let b = outer.activity("B").unwrap();
        assert!(b.input.has("in"));
        assert!(b.output.has("out"));
    }

    #[test]
    fn data_mappings_validate() {
        let p = ProcessBuilder::new("d")
            .input(ContainerSchema::of(&[("seed", DataType::Int)]))
            .output(ContainerSchema::of(&[("result", DataType::Int)]))
            .activity(
                Activity::program("A", "pa")
                    .with_input(ContainerSchema::of(&[("n", DataType::Int)]))
                    .with_output(ContainerSchema::of(&[("m", DataType::Int)])),
            )
            .map_process_input("A", &[("seed", "n")])
            .map_to_process_output("A", &[("m", "result")])
            .build()
            .unwrap();
        assert_eq!(p.data.len(), 2);
    }

    #[test]
    fn version_and_description() {
        let p = ProcessBuilder::new("v")
            .version(3)
            .describe("described")
            .program("A", "pa")
            .build()
            .unwrap();
        assert_eq!(p.version, 3);
        assert_eq!(p.description, "described");
    }
}
