//! Activities — the steps of a process.
//!
//! §3.2 of the paper: an activity has a name, a type (program or
//! process), pre- and post-conditions and scheduling constraints; each
//! has an input and an output data container, a start condition
//! (AND/OR over incoming control connectors), and an exit condition
//! that, when false, sends the activity back to `ready` — the model's
//! loop mechanism, which the saga translation uses to make
//! compensations retriable.

use crate::container::ContainerSchema;
use crate::expr::Expr;
use crate::process::ProcessDefinition;
use serde::{Deserialize, Serialize};
use txn_substrate::Tick;

/// What an activity does when executed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActivityKind {
    /// Executes a registered transactional program; the program's
    /// return code lands in the output container's `RC` member.
    Program {
        /// Registered program name.
        program: String,
    },
    /// Executes an embedded subprocess (a *block*). The paper uses
    /// blocks for nesting, modularity and loops; the Figure 2 saga
    /// translation puts the forward and compensation phases in blocks.
    Block {
        /// The embedded process definition.
        process: Box<ProcessDefinition>,
    },
    /// "Commits" immediately with `RC = 1`, copying its input
    /// container to its output container (a pass-through). The
    /// Figure 2 construction uses a no-op as the trigger that fans out
    /// to all compensating activities: the pass-through exposes the
    /// `State_i` flags to the trigger's outgoing transition
    /// conditions.
    NoOp,
}

impl ActivityKind {
    /// True for program activities.
    pub fn is_program(&self) -> bool {
        matches!(self, ActivityKind::Program { .. })
    }

    /// True for block (process) activities.
    pub fn is_block(&self) -> bool {
        matches!(self, ActivityKind::Block { .. })
    }
}

/// Who is responsible for an activity (§3.3): a role (any person
/// holding it may claim the work item), a specific person, or the
/// system itself for fully automatic steps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum StaffAssignment {
    /// Started by the engine with no human involvement.
    #[default]
    Automatic,
    /// Offered to every person holding the role.
    Role(String),
    /// Assigned to one specific person.
    Person(String),
}

/// Join semantics of an activity's incoming control connectors (§3.2):
/// *and* — start when **all** incoming connectors have evaluated true;
/// *or* — start when **one** has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StartCondition {
    /// All incoming connectors must be true (the default).
    #[default]
    And,
    /// Any single incoming connector suffices.
    Or,
}

/// The post-execution check: if the exit condition evaluates false
/// over the activity's output container, the activity is rescheduled
/// (§3.2 — "the activity is rescheduled for execution"). `None` means
/// always exit (the common case).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExitCondition {
    /// The condition over the activity's own output container.
    pub expr: Option<Expr>,
}

impl ExitCondition {
    /// The always-true exit condition.
    pub fn always() -> Self {
        Self { expr: None }
    }

    /// An exit condition parsed from text.
    ///
    /// # Panics
    /// Panics on a syntactically invalid expression; use
    /// [`Expr::parse`] directly when handling user input.
    pub fn when(expr: &str) -> Self {
        Self {
            expr: Some(Expr::parse(expr).expect("invalid exit condition")),
        }
    }
}

/// One step of a process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    /// Unique name within the process.
    pub name: String,
    /// Free-form description (kept in audit trails).
    pub description: String,
    /// Program / block / no-op.
    pub kind: ActivityKind,
    /// Input container schema.
    pub input: ContainerSchema,
    /// Output container schema. The reserved member `RC` (INT) is
    /// implicitly present whether or not it is declared; see
    /// [`crate::RC_MEMBER`].
    pub output: ContainerSchema,
    /// Join semantics for incoming control connectors.
    pub start: StartCondition,
    /// Post-execution loop condition.
    pub exit: ExitCondition,
    /// Responsibility for the activity.
    pub staff: StaffAssignment,
    /// If set, the engine notifies the responsible user's manager when
    /// the activity has been ready for longer than this many ticks
    /// (§3.3: "who must be notified if the activity is not executed
    /// within a certain period of time").
    pub deadline: Option<Tick>,
    /// Automatic activities are started by the engine as soon as they
    /// are ready; manual ones wait on a worklist (§3.2).
    pub automatic_start: bool,
}

impl Activity {
    /// A program activity with empty containers, automatic start and
    /// default conditions — the fields the constructions care about
    /// are set with the builder-style methods below.
    pub fn program(name: &str, program: &str) -> Self {
        Self {
            name: name.to_owned(),
            description: String::new(),
            kind: ActivityKind::Program {
                program: program.to_owned(),
            },
            input: ContainerSchema::empty(),
            output: ContainerSchema::empty(),
            start: StartCondition::And,
            exit: ExitCondition::always(),
            staff: StaffAssignment::Automatic,
            deadline: None,
            automatic_start: true,
        }
    }

    /// A block activity embedding `process`.
    pub fn block(name: &str, process: ProcessDefinition) -> Self {
        Self {
            kind: ActivityKind::Block {
                process: Box::new(process),
            },
            ..Self::program(name, "")
        }
    }

    /// A no-op activity.
    pub fn noop(name: &str) -> Self {
        Self {
            kind: ActivityKind::NoOp,
            ..Self::program(name, "")
        }
    }

    /// Sets the description.
    pub fn describe(mut self, text: &str) -> Self {
        self.description = text.to_owned();
        self
    }

    /// Sets the input schema.
    pub fn with_input(mut self, schema: ContainerSchema) -> Self {
        self.input = schema;
        self
    }

    /// Sets the output schema.
    pub fn with_output(mut self, schema: ContainerSchema) -> Self {
        self.output = schema;
        self
    }

    /// Sets OR-join start semantics.
    pub fn or_start(mut self) -> Self {
        self.start = StartCondition::Or;
        self
    }

    /// Sets the exit condition from text.
    pub fn with_exit(mut self, expr: &str) -> Self {
        self.exit = ExitCondition::when(expr);
        self
    }

    /// Assigns the activity to a role and makes it manual (a human
    /// must claim it from a worklist).
    pub fn for_role(mut self, role: &str) -> Self {
        self.staff = StaffAssignment::Role(role.to_owned());
        self.automatic_start = false;
        self
    }

    /// Assigns the activity to a specific person (manual start).
    pub fn for_person(mut self, person: &str) -> Self {
        self.staff = StaffAssignment::Person(person.to_owned());
        self.automatic_start = false;
        self
    }

    /// Sets the notification deadline in clock ticks.
    pub fn with_deadline(mut self, ticks: Tick) -> Self {
        self.deadline = Some(ticks);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    #[test]
    fn program_constructor_defaults() {
        let a = Activity::program("T1", "debit");
        assert!(a.kind.is_program());
        assert!(a.automatic_start);
        assert_eq!(a.start, StartCondition::And);
        assert_eq!(a.exit, ExitCondition::always());
        assert_eq!(a.staff, StaffAssignment::Automatic);
    }

    #[test]
    fn builder_methods_compose() {
        let a = Activity::program("T1", "debit")
            .describe("withdraw funds")
            .with_output(ContainerSchema::of(&[("State_1", DataType::Int)]))
            .with_exit("RC = 1")
            .for_role("teller")
            .with_deadline(100)
            .or_start();
        assert_eq!(a.description, "withdraw funds");
        assert!(a.output.has("State_1"));
        assert!(a.exit.expr.is_some());
        assert_eq!(a.staff, StaffAssignment::Role("teller".into()));
        assert!(!a.automatic_start);
        assert_eq!(a.deadline, Some(100));
        assert_eq!(a.start, StartCondition::Or);
    }

    #[test]
    fn noop_kind() {
        let a = Activity::noop("NOP");
        assert_eq!(a.kind, ActivityKind::NoOp);
        assert!(!a.kind.is_program());
        assert!(!a.kind.is_block());
    }

    #[test]
    #[should_panic(expected = "invalid exit condition")]
    fn bad_exit_condition_panics() {
        let _ = ExitCondition::when("RC = ");
    }
}
