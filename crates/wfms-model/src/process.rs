//! Process definitions — the acyclic directed graphs of Figure 1.

use crate::activity::{Activity, ActivityKind};
use crate::connector::{ControlConnector, DataConnector};
use crate::container::ContainerSchema;
use crate::types::DataType;
use crate::RC_MEMBER;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

pub use crate::activity::{ExitCondition, StartCondition};

/// A workflow process: "a description of the sequence of steps to be
/// completed to accomplish some goal … a name, version number, start
/// and termination conditions and additional data for security, audit
/// and control" (§3.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessDefinition {
    /// Process name.
    pub name: String,
    /// Version number (FlowMark processes are versioned templates).
    pub version: u32,
    /// Free-form description.
    pub description: String,
    /// Process-level input container schema.
    pub input: ContainerSchema,
    /// Process-level output container schema.
    pub output: ContainerSchema,
    /// The steps.
    pub activities: Vec<Activity>,
    /// Flow of control.
    pub control: Vec<ControlConnector>,
    /// Flow of data.
    pub data: Vec<DataConnector>,
}

impl ProcessDefinition {
    /// An empty process named `name`, version 1.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            version: 1,
            description: String::new(),
            input: ContainerSchema::empty(),
            output: ContainerSchema::empty(),
            activities: Vec::new(),
            control: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Looks up an activity by name.
    pub fn activity(&self, name: &str) -> Option<&Activity> {
        self.activities.iter().find(|a| a.name == name)
    }

    /// True if an activity named `name` exists.
    pub fn has_activity(&self, name: &str) -> bool {
        self.activity(name).is_some()
    }

    /// Activity names in declaration order.
    pub fn activity_names(&self) -> Vec<&str> {
        self.activities.iter().map(|a| a.name.as_str()).collect()
    }

    /// The starting activities: those with no incoming control
    /// connector (§3.2 — set to `ready` when the process starts).
    pub fn start_activities(&self) -> Vec<&Activity> {
        self.activities
            .iter()
            .filter(|a| !self.control.iter().any(|c| c.to == a.name))
            .collect()
    }

    /// Incoming control connectors of `name`, in declaration order.
    pub fn incoming(&self, name: &str) -> Vec<&ControlConnector> {
        self.control.iter().filter(|c| c.to == name).collect()
    }

    /// Outgoing control connectors of `name`, in declaration order.
    pub fn outgoing(&self, name: &str) -> Vec<&ControlConnector> {
        self.control.iter().filter(|c| c.from == name).collect()
    }

    /// The *effective* output schema of an activity: its declared
    /// schema plus the implicit `RC : INT` member the engine writes
    /// after every execution (see [`crate::RC_MEMBER`]).
    pub fn effective_output(&self, activity: &Activity) -> ContainerSchema {
        let mut schema = activity.output.clone();
        if !schema.has(RC_MEMBER) {
            schema.members.insert(
                0,
                crate::container::MemberDecl::new(RC_MEMBER, DataType::Int),
            );
        }
        schema
    }

    /// Kahn topological order of the activities, or `None` if the
    /// control graph has a cycle (workflow models are acyclic by
    /// definition, §3.2; loops are expressed with exit conditions and
    /// blocks instead).
    pub fn topo_order(&self) -> Option<Vec<&str>> {
        let mut indegree: HashMap<&str, usize> = self
            .activities
            .iter()
            .map(|a| (a.name.as_str(), 0))
            .collect();
        for c in &self.control {
            if let Some(d) = indegree.get_mut(c.to.as_str()) {
                *d += 1;
            }
        }
        // Operate over *unique* names: duplicate activity names are a
        // separate validation error and must not panic the sort.
        let unique = indegree.len();
        let mut queue: VecDeque<&str> = {
            let mut seen = std::collections::HashSet::new();
            self.activities
                .iter()
                .map(|a| a.name.as_str())
                .filter(|n| seen.insert(*n) && indegree.get(n) == Some(&0))
                .collect()
        };
        let mut order = Vec::with_capacity(unique);
        while let Some(n) = queue.pop_front() {
            order.push(n);
            for c in self.control.iter().filter(|c| c.from == n) {
                if let Some(d) = indegree.get_mut(c.to.as_str()) {
                    *d = d.saturating_sub(1);
                    if *d == 0 {
                        queue.push_back(c.to.as_str());
                    }
                }
            }
        }
        (order.len() == unique).then_some(order)
    }

    /// Total number of activities including those inside blocks,
    /// recursively — a size metric the benchmarks report.
    pub fn total_activities(&self) -> usize {
        self.activities
            .iter()
            .map(|a| match &a.kind {
                ActivityKind::Block { process } => 1 + process.total_activities(),
                _ => 1,
            })
            .sum()
    }

    /// Maximum block-nesting depth (a flat process has depth 1).
    pub fn nesting_depth(&self) -> usize {
        1 + self
            .activities
            .iter()
            .filter_map(|a| match &a.kind {
                ActivityKind::Block { process } => Some(process.nesting_depth()),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::ControlConnector;

    fn linear3() -> ProcessDefinition {
        let mut p = ProcessDefinition::new("p");
        p.activities = vec![
            Activity::program("A", "pa"),
            Activity::program("B", "pb"),
            Activity::program("C", "pc"),
        ];
        p.control = vec![
            ControlConnector::new("A", "B"),
            ControlConnector::new("B", "C"),
        ];
        p
    }

    #[test]
    fn start_activities_have_no_incoming() {
        let p = linear3();
        let starts: Vec<_> = p
            .start_activities()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(starts, vec!["A"]);
    }

    #[test]
    fn incoming_outgoing() {
        let p = linear3();
        assert_eq!(p.incoming("B").len(), 1);
        assert_eq!(p.outgoing("B").len(), 1);
        assert_eq!(p.incoming("A").len(), 0);
        assert_eq!(p.outgoing("C").len(), 0);
    }

    #[test]
    fn topo_order_linear() {
        let p = linear3();
        assert_eq!(p.topo_order().unwrap(), vec!["A", "B", "C"]);
    }

    #[test]
    fn topo_order_detects_cycle() {
        let mut p = linear3();
        p.control.push(ControlConnector::new("C", "A"));
        assert!(p.topo_order().is_none());
    }

    #[test]
    fn effective_output_injects_rc_once() {
        let p = linear3();
        let a = p.activity("A").unwrap();
        let schema = p.effective_output(a);
        assert!(schema.has(RC_MEMBER));
        assert_eq!(
            schema
                .members
                .iter()
                .filter(|m| m.name == RC_MEMBER)
                .count(),
            1
        );
        // Declared RC is not duplicated.
        let mut a2 = a.clone();
        a2.output = ContainerSchema::of(&[(RC_MEMBER, DataType::Int)]);
        let schema2 = p.effective_output(&a2);
        assert_eq!(
            schema2
                .members
                .iter()
                .filter(|m| m.name == RC_MEMBER)
                .count(),
            1
        );
    }

    #[test]
    fn size_metrics_recurse_into_blocks() {
        let inner = linear3();
        let mut outer = ProcessDefinition::new("outer");
        outer.activities = vec![Activity::program("X", "px"), Activity::block("B", inner)];
        assert_eq!(outer.total_activities(), 5);
        assert_eq!(outer.nesting_depth(), 2);
        let flat = linear3();
        assert_eq!(flat.nesting_depth(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let p = linear3();
        let json = serde_json::to_string(&p).unwrap();
        let back: ProcessDefinition = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
