//! Graphviz DOT export of process definitions.
//!
//! Renders a process as the paper draws its figures: activities as
//! nodes (blocks as clustered subgraphs, exactly like the framed
//! blocks of Figure 2 and Figure 4), control connectors as solid edges
//! labelled with their transition conditions, data connectors as
//! dashed edges. `dot -Tsvg` on the output of
//! [`to_dot`] reproduces the paper's figures from the *generated*
//! processes.

use crate::activity::{Activity, ActivityKind, StartCondition};
use crate::connector::DataEndpoint;
use crate::expr::Expr;
use crate::process::ProcessDefinition;
use std::fmt::Write as _;

/// Renders `def` as a Graphviz digraph.
pub fn to_dot(def: &ProcessDefinition) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", ident(&def.name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");
    let _ = writeln!(out, "  labelloc=t; label={};", quote(&def.name));
    emit_scope(def, "", &mut out, 1);
    let _ = writeln!(out, "}}");
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Emits one scope's activities and connectors; `prefix` namespaces
/// node ids across nested blocks.
fn emit_scope(def: &ProcessDefinition, prefix: &str, out: &mut String, level: usize) {
    for act in &def.activities {
        let id = node_id(prefix, &act.name);
        match &act.kind {
            ActivityKind::Block { process } => {
                indent(out, level);
                let _ = writeln!(out, "subgraph cluster_{id} {{");
                indent(out, level + 1);
                let _ = writeln!(out, "label={}; style=rounded;", quote(&act.name));
                // Anchor node so edges can target the block itself.
                indent(out, level + 1);
                let _ = writeln!(
                    out,
                    "{id} [label={}, shape=point, style=invis];",
                    quote(&act.name)
                );
                emit_scope(process, &format!("{id}_"), out, level + 1);
                indent(out, level);
                let _ = writeln!(out, "}}");
            }
            ActivityKind::NoOp => {
                indent(out, level);
                let _ = writeln!(out, "{id} [label={}, shape=circle];", quote(&act.name));
            }
            ActivityKind::Program { program } => {
                indent(out, level);
                let shape = decoration(act);
                let _ = writeln!(
                    out,
                    "{id} [label={}{shape}];",
                    quote(&format!("{}\\n({program})", act.name))
                );
            }
        }
    }
    for c in &def.control {
        let from = node_id(prefix, &c.from);
        let to = node_id(prefix, &c.to);
        indent(out, level);
        if c.condition == Expr::truth() {
            let _ = writeln!(out, "{from} -> {to};");
        } else {
            let _ = writeln!(
                out,
                "{from} -> {to} [label={}];",
                quote(&c.condition.to_string())
            );
        }
    }
    for d in &def.data {
        let from = endpoint_id(prefix, &d.from);
        let to = endpoint_id(prefix, &d.to);
        let (Some(from), Some(to)) = (from, to) else {
            continue; // process-level containers have no node
        };
        indent(out, level);
        let _ = writeln!(out, "{from} -> {to} [style=dashed, color=gray50];");
    }
}

fn decoration(act: &Activity) -> String {
    let mut extra = String::new();
    if act.start == StartCondition::Or {
        extra.push_str(", peripheries=2"); // OR-join drawn double-framed
    }
    if act.exit.expr.is_some() {
        extra.push_str(", style=\"bold\""); // looping activity
    }
    extra
}

fn endpoint_id(prefix: &str, e: &DataEndpoint) -> Option<String> {
    match e {
        DataEndpoint::ActivityInput(a) | DataEndpoint::ActivityOutput(a) => {
            Some(node_id(prefix, a))
        }
        _ => None,
    }
}

fn node_id(prefix: &str, name: &str) -> String {
    format!("{prefix}{}", ident(name))
}

fn ident(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if s.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true) {
        s.insert(0, '_');
    }
    s
}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\\\""))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcessBuilder;

    #[test]
    fn flat_process_renders_nodes_and_edges() {
        let def = ProcessBuilder::new("demo")
            .program("A", "pa")
            .program("B", "pb")
            .connect_when("A", "B", "RC = 1")
            .build()
            .unwrap();
        let dot = to_dot(&def);
        assert!(dot.starts_with("digraph demo {"));
        assert!(dot.contains("A [label=\"A\\n(pa)\"]"));
        assert!(dot.contains("A -> B [label=\"(RC = 1)\"];"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn blocks_render_as_clusters() {
        let inner = ProcessBuilder::new("Fwd")
            .program("T1", "p1")
            .build()
            .unwrap();
        let def = ProcessBuilder::new("outer")
            .block("Fwd", inner)
            .build()
            .unwrap();
        let dot = to_dot(&def);
        assert!(dot.contains("subgraph cluster_Fwd {"));
        assert!(dot.contains("Fwd_T1 [label=\"T1"));
    }

    #[test]
    fn noop_is_a_circle_and_or_join_double_framed() {
        let def = ProcessBuilder::new("p")
            .noop("NOP")
            .activity(
                crate::activity::Activity::program("X", "px")
                    .or_start()
                    .with_exit("RC = 1"),
            )
            .connect("NOP", "X")
            .build()
            .unwrap();
        let dot = to_dot(&def);
        assert!(dot.contains("NOP [label=\"NOP\", shape=circle];"));
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("style=\"bold\""));
        assert!(dot.contains("NOP -> X;"), "unconditional edge unlabelled");
    }

    #[test]
    fn data_connectors_are_dashed() {
        let def = ProcessBuilder::new("p")
            .activity(crate::activity::Activity::program("A", "pa").with_output(
                crate::container::ContainerSchema::of(&[("x", crate::types::DataType::Int)]),
            ))
            .activity(crate::activity::Activity::program("B", "pb").with_input(
                crate::container::ContainerSchema::of(&[("y", crate::types::DataType::Int)]),
            ))
            .connect("A", "B")
            .map_data("A", "B", &[("x", "y")])
            .build()
            .unwrap();
        let dot = to_dot(&def);
        assert!(dot.contains("A -> B [style=dashed, color=gray50];"));
    }

    #[test]
    fn weird_names_become_valid_identifiers() {
        let def = ProcessBuilder::new("9 weird name!")
            .program("A-B", "p")
            .build()
            .unwrap();
        let dot = to_dot(&def);
        assert!(dot.starts_with("digraph _9_weird_name_ {"));
        assert!(dot.contains("A_B [label=\"A-B"));
    }
}
