//! Data types of container members.

use serde::{Deserialize, Serialize};
use std::fmt;
use txn_substrate::Value;

/// The type of one container member. FlowMark containers hold typed
/// variables; this reproduction supports the three types the paper's
/// constructions use (integers for return codes and state flags,
/// strings for names and reasons, booleans for conditions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl DataType {
    /// True if `value` inhabits this type.
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (DataType::Int, Value::Int(_))
                | (DataType::Str, Value::Str(_))
                | (DataType::Bool, Value::Bool(_))
        )
    }

    /// The neutral default value of this type (used to initialise
    /// container members that no data connector has written).
    pub fn default_value(self) -> Value {
        match self {
            DataType::Int => Value::Int(0),
            DataType::Str => Value::Str(String::new()),
            DataType::Bool => Value::Bool(false),
        }
    }

    /// The type of `value`, if it is one of the container types.
    pub fn of(value: &Value) -> Option<DataType> {
        match value {
            Value::Int(_) => Some(DataType::Int),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Bytes(_) => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Str => "STRING",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_matches_variants() {
        assert!(DataType::Int.admits(&Value::Int(1)));
        assert!(!DataType::Int.admits(&Value::Bool(true)));
        assert!(DataType::Str.admits(&Value::from("x")));
        assert!(DataType::Bool.admits(&Value::Bool(false)));
        assert!(!DataType::Bool.admits(&Value::Bytes(vec![])));
    }

    #[test]
    fn defaults_are_typed() {
        for ty in [DataType::Int, DataType::Str, DataType::Bool] {
            assert!(ty.admits(&ty.default_value()));
        }
    }

    #[test]
    fn of_inverts_admits() {
        assert_eq!(DataType::of(&Value::Int(3)), Some(DataType::Int));
        assert_eq!(DataType::of(&Value::from("s")), Some(DataType::Str));
        assert_eq!(DataType::of(&Value::Bool(true)), Some(DataType::Bool));
        assert_eq!(DataType::of(&Value::Bytes(vec![1])), None);
    }

    #[test]
    fn display_names_match_fdl_keywords() {
        assert_eq!(DataType::Int.to_string(), "INT");
        assert_eq!(DataType::Str.to_string(), "STRING");
        assert_eq!(DataType::Bool.to_string(), "BOOL");
    }
}
