//! Static validation — the checks the FlowMark import stage performs
//! on an FDL definition before a process template becomes executable
//! (Figure 5: "the import module checks for inconsistencies in the
//! syntax of the process definition … the translator checks the
//! semantics of the FlowMark process").
//!
//! [`validate`] returns **all** problems found (not just the first):
//! a translation tool like Exotica/FMTM wants the complete list to
//! report against the originating specification.

use crate::activity::ActivityKind;
use crate::connector::DataEndpoint;
use crate::container::ContainerSchema;
use crate::process::ProcessDefinition;
use crate::types::DataType;
use crate::RC_MEMBER;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// One validation finding. `process` is the slash-separated path of
/// nested process names (blocks are validated recursively).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The process declares no activities.
    EmptyProcess { process: String },
    /// Two activities share a name.
    DuplicateActivity { process: String, activity: String },
    /// A container declares the same member twice.
    DuplicateMember {
        process: String,
        container: String,
        member: String,
    },
    /// A program activity names no program.
    MissingProgramName { process: String, activity: String },
    /// A control connector references an unknown activity.
    UnknownEndpoint {
        process: String,
        connector: String,
        endpoint: String,
    },
    /// A control connector loops an activity to itself.
    SelfLoop { process: String, activity: String },
    /// Two control connectors share the same (from, to) pair.
    DuplicateControl {
        process: String,
        from: String,
        to: String,
    },
    /// The control graph is cyclic.
    Cycle { process: String },
    /// A data connector's source cannot produce data or its sink
    /// cannot receive it.
    BadDataDirection { process: String, connector: String },
    /// A data connector references an unknown activity.
    UnknownDataActivity {
        process: String,
        connector: String,
        endpoint: String,
    },
    /// A mapping references a member absent from its container.
    UnknownMember {
        process: String,
        connector: String,
        container: String,
        member: String,
    },
    /// A mapping copies between incompatible member types.
    MappingTypeMismatch {
        process: String,
        connector: String,
        from_member: String,
        to_member: String,
        from_ty: DataType,
        to_ty: DataType,
    },
    /// A data connector between activities with no control path from
    /// source to sink (data flows along control flow).
    DataAgainstControlFlow { process: String, connector: String },
    /// A condition references a member that is not in scope.
    UnresolvedConditionVar {
        process: String,
        location: String,
        var: String,
    },
    /// The reserved `RC` member was declared with a non-INT type.
    ReservedRcWrongType { process: String, container: String },
    /// A block activity's containers do not match the embedded
    /// process's containers.
    BlockContainerMismatch {
        process: String,
        activity: String,
        which: &'static str,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ValidationError::*;
        match self {
            EmptyProcess { process } => write!(f, "[{process}] process has no activities"),
            DuplicateActivity { process, activity } => {
                write!(f, "[{process}] duplicate activity name {activity:?}")
            }
            DuplicateMember {
                process,
                container,
                member,
            } => write!(
                f,
                "[{process}] container {container} declares member {member:?} twice"
            ),
            MissingProgramName { process, activity } => write!(
                f,
                "[{process}] program activity {activity:?} names no program"
            ),
            UnknownEndpoint {
                process,
                connector,
                endpoint,
            } => write!(
                f,
                "[{process}] control connector {connector} references unknown activity {endpoint:?}"
            ),
            SelfLoop { process, activity } => write!(
                f,
                "[{process}] activity {activity:?} has a control connector to itself"
            ),
            DuplicateControl { process, from, to } => write!(
                f,
                "[{process}] duplicate control connector {from} -> {to}"
            ),
            Cycle { process } => write!(
                f,
                "[{process}] control graph is cyclic (workflow graphs must be acyclic; use exit conditions or blocks for loops)"
            ),
            BadDataDirection { process, connector } => write!(
                f,
                "[{process}] data connector {connector} flows in an illegal direction"
            ),
            UnknownDataActivity {
                process,
                connector,
                endpoint,
            } => write!(
                f,
                "[{process}] data connector {connector} references unknown activity {endpoint:?}"
            ),
            UnknownMember {
                process,
                connector,
                container,
                member,
            } => write!(
                f,
                "[{process}] data connector {connector}: container {container} has no member {member:?}"
            ),
            MappingTypeMismatch {
                process,
                connector,
                from_member,
                to_member,
                from_ty,
                to_ty,
            } => write!(
                f,
                "[{process}] data connector {connector}: cannot map {from_member} ({from_ty}) to {to_member} ({to_ty})"
            ),
            DataAgainstControlFlow { process, connector } => write!(
                f,
                "[{process}] data connector {connector} has no supporting control path from source to sink"
            ),
            UnresolvedConditionVar {
                process,
                location,
                var,
            } => write!(
                f,
                "[{process}] condition at {location} references {var:?}, which is not a member of the governing container"
            ),
            ReservedRcWrongType { process, container } => write!(
                f,
                "[{process}] container {container} declares reserved member {RC_MEMBER:?} with a non-INT type"
            ),
            BlockContainerMismatch {
                process,
                activity,
                which,
            } => write!(
                f,
                "[{process}] block activity {activity:?}: {which} container schema differs from the embedded process's {which} schema"
            ),
        }
    }
}

/// Validates `process` and every embedded block, returning all
/// findings. An empty vector means the definition is executable.
pub fn validate(process: &ProcessDefinition) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    validate_into(process, &process.name.clone(), &mut errors);
    errors
}

fn validate_into(p: &ProcessDefinition, path: &str, errors: &mut Vec<ValidationError>) {
    let proc_name = path.to_owned();

    if p.activities.is_empty() {
        errors.push(ValidationError::EmptyProcess {
            process: proc_name.clone(),
        });
    }

    // --- activity names & containers -------------------------------
    let mut seen = HashSet::new();
    for a in &p.activities {
        if !seen.insert(a.name.clone()) {
            errors.push(ValidationError::DuplicateActivity {
                process: proc_name.clone(),
                activity: a.name.clone(),
            });
        }
        if let ActivityKind::Program { program } = &a.kind {
            if program.is_empty() {
                errors.push(ValidationError::MissingProgramName {
                    process: proc_name.clone(),
                    activity: a.name.clone(),
                });
            }
        }
        check_schema(&a.input, &format!("{}.INPUT", a.name), &proc_name, errors);
        check_schema(&a.output, &format!("{}.OUTPUT", a.name), &proc_name, errors);
    }
    check_schema(&p.input, "PROCESS.INPUT", &proc_name, errors);
    check_schema(&p.output, "PROCESS.OUTPUT", &proc_name, errors);

    let names: HashSet<&str> = p.activities.iter().map(|a| a.name.as_str()).collect();

    // --- control connectors -----------------------------------------
    let mut edges = HashSet::new();
    for c in &p.control {
        let label = format!("{} -> {}", c.from, c.to);
        for endpoint in [&c.from, &c.to] {
            if !names.contains(endpoint.as_str()) {
                errors.push(ValidationError::UnknownEndpoint {
                    process: proc_name.clone(),
                    connector: label.clone(),
                    endpoint: endpoint.clone(),
                });
            }
        }
        if c.from == c.to {
            errors.push(ValidationError::SelfLoop {
                process: proc_name.clone(),
                activity: c.from.clone(),
            });
        }
        if !edges.insert((c.from.clone(), c.to.clone())) {
            errors.push(ValidationError::DuplicateControl {
                process: proc_name.clone(),
                from: c.from.clone(),
                to: c.to.clone(),
            });
        }
        // Transition condition variables resolve against the source
        // activity's effective output container.
        if let Some(src) = p.activity(&c.from) {
            let schema = p.effective_output(src);
            for var in c.condition.variables() {
                if !schema.has(&var) {
                    errors.push(ValidationError::UnresolvedConditionVar {
                        process: proc_name.clone(),
                        location: format!("control connector {label}"),
                        var,
                    });
                }
            }
        }
    }

    if p.topo_order().is_none() && !p.activities.is_empty() {
        errors.push(ValidationError::Cycle {
            process: proc_name.clone(),
        });
    }

    // --- exit conditions ---------------------------------------------
    for a in &p.activities {
        if let Some(expr) = &a.exit.expr {
            let schema = p.effective_output(a);
            for var in expr.variables() {
                if !schema.has(&var) {
                    errors.push(ValidationError::UnresolvedConditionVar {
                        process: proc_name.clone(),
                        location: format!("exit condition of {}", a.name),
                        var,
                    });
                }
            }
        }
    }

    // --- data connectors ----------------------------------------------
    for d in &p.data {
        let label = format!("{} => {}", d.from, d.to);
        if !d.from.is_source() || !d.to.is_sink() {
            errors.push(ValidationError::BadDataDirection {
                process: proc_name.clone(),
                connector: label.clone(),
            });
            continue;
        }
        let mut endpoint_ok = true;
        for ep in [&d.from, &d.to] {
            if let Some(act) = ep.activity() {
                if !names.contains(act) {
                    errors.push(ValidationError::UnknownDataActivity {
                        process: proc_name.clone(),
                        connector: label.clone(),
                        endpoint: act.to_owned(),
                    });
                    endpoint_ok = false;
                }
            }
        }
        if !endpoint_ok {
            continue;
        }
        let from_schema = endpoint_schema(p, &d.from);
        let to_schema = endpoint_schema(p, &d.to);
        for m in &d.mappings {
            let from_decl = from_schema.member(&m.from_member);
            let to_decl = to_schema.member(&m.to_member);
            if from_decl.is_none() {
                errors.push(ValidationError::UnknownMember {
                    process: proc_name.clone(),
                    connector: label.clone(),
                    container: d.from.to_string(),
                    member: m.from_member.clone(),
                });
            }
            if to_decl.is_none() {
                errors.push(ValidationError::UnknownMember {
                    process: proc_name.clone(),
                    connector: label.clone(),
                    container: d.to.to_string(),
                    member: m.to_member.clone(),
                });
            }
            if let (Some(fd), Some(td)) = (from_decl, to_decl) {
                if fd.ty != td.ty {
                    errors.push(ValidationError::MappingTypeMismatch {
                        process: proc_name.clone(),
                        connector: label.clone(),
                        from_member: m.from_member.clone(),
                        to_member: m.to_member.clone(),
                        from_ty: fd.ty,
                        to_ty: td.ty,
                    });
                }
            }
        }
        // Data must flow along control flow: activity-to-activity data
        // connectors need a control path from source to sink.
        if let (DataEndpoint::ActivityOutput(src), DataEndpoint::ActivityInput(dst)) =
            (&d.from, &d.to)
        {
            if !control_path_exists(p, src, dst) {
                errors.push(ValidationError::DataAgainstControlFlow {
                    process: proc_name.clone(),
                    connector: label.clone(),
                });
            }
        }
    }

    // --- blocks ---------------------------------------------------------
    for a in &p.activities {
        if let ActivityKind::Block { process: inner } = &a.kind {
            if !schemas_equal(&a.input, &inner.input) {
                errors.push(ValidationError::BlockContainerMismatch {
                    process: proc_name.clone(),
                    activity: a.name.clone(),
                    which: "input",
                });
            }
            if !schemas_equal(&a.output, &inner.output) {
                errors.push(ValidationError::BlockContainerMismatch {
                    process: proc_name.clone(),
                    activity: a.name.clone(),
                    which: "output",
                });
            }
            validate_into(inner, &format!("{proc_name}/{}", inner.name), errors);
        }
    }
}

fn schemas_equal(a: &ContainerSchema, b: &ContainerSchema) -> bool {
    // Order-insensitive comparison of (name, type) pairs; defaults may
    // differ between the block activity facade and the inner process.
    let key = |s: &ContainerSchema| {
        let mut v: Vec<(String, DataType)> =
            s.members.iter().map(|m| (m.name.clone(), m.ty)).collect();
        v.sort();
        v
    };
    key(a) == key(b)
}

fn check_schema(
    schema: &ContainerSchema,
    label: &str,
    proc_name: &str,
    errors: &mut Vec<ValidationError>,
) {
    for dup in schema.duplicate_names() {
        errors.push(ValidationError::DuplicateMember {
            process: proc_name.to_owned(),
            container: label.to_owned(),
            member: dup,
        });
    }
    if let Some(rc) = schema.member(RC_MEMBER) {
        if rc.ty != DataType::Int {
            errors.push(ValidationError::ReservedRcWrongType {
                process: proc_name.to_owned(),
                container: label.to_owned(),
            });
        }
    }
}

fn endpoint_schema(p: &ProcessDefinition, ep: &DataEndpoint) -> ContainerSchema {
    match ep {
        DataEndpoint::ProcessInput => p.input.clone(),
        DataEndpoint::ProcessOutput => p.output.clone(),
        DataEndpoint::ActivityInput(a) => {
            p.activity(a).map(|a| a.input.clone()).unwrap_or_default()
        }
        DataEndpoint::ActivityOutput(a) => p
            .activity(a)
            .map(|a| p.effective_output(a))
            .unwrap_or_default(),
    }
}

fn control_path_exists(p: &ProcessDefinition, from: &str, to: &str) -> bool {
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for c in &p.control {
        adj.entry(c.from.as_str()).or_default().push(c.to.as_str());
    }
    let mut queue = VecDeque::from([from]);
    let mut seen = HashSet::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            return true;
        }
        for &next in adj.get(n).into_iter().flatten() {
            if seen.insert(next) {
                queue.push_back(next);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;
    use crate::connector::{ControlConnector, DataConnector};
    use crate::container::ContainerSchema;

    fn ok_process() -> ProcessDefinition {
        let mut p = ProcessDefinition::new("p");
        p.activities = vec![
            Activity::program("A", "pa").with_output(ContainerSchema::of(&[("x", DataType::Int)])),
            Activity::program("B", "pb").with_input(ContainerSchema::of(&[("y", DataType::Int)])),
        ];
        p.control = vec![ControlConnector::when("A", "B", "RC = 1")];
        p.data = vec![DataConnector::new(
            DataEndpoint::ActivityOutput("A".into()),
            DataEndpoint::ActivityInput("B".into()),
            &[("x", "y")],
        )];
        p
    }

    #[test]
    fn valid_process_has_no_errors() {
        assert_eq!(validate(&ok_process()), vec![]);
    }

    #[test]
    fn empty_process_flagged() {
        let p = ProcessDefinition::new("e");
        let errs = validate(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::EmptyProcess { .. })));
    }

    #[test]
    fn duplicate_activity_names() {
        let mut p = ok_process();
        p.activities.push(Activity::program("A", "dup"));
        assert!(validate(&p).iter().any(
            |e| matches!(e, ValidationError::DuplicateActivity { activity, .. } if activity == "A")
        ));
    }

    #[test]
    fn unknown_connector_endpoint() {
        let mut p = ok_process();
        p.control.push(ControlConnector::new("A", "Ghost"));
        assert!(validate(&p)
            .iter()
            .any(|e| matches!(e, ValidationError::UnknownEndpoint { endpoint, .. } if endpoint == "Ghost")));
    }

    #[test]
    fn self_loop_flagged() {
        let mut p = ok_process();
        p.control.push(ControlConnector::new("A", "A"));
        let errs = validate(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::SelfLoop { .. })));
        // Self-loop also makes the graph cyclic.
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::Cycle { .. })));
    }

    #[test]
    fn duplicate_control_flagged() {
        let mut p = ok_process();
        p.control.push(ControlConnector::new("A", "B"));
        assert!(validate(&p)
            .iter()
            .any(|e| matches!(e, ValidationError::DuplicateControl { .. })));
    }

    #[test]
    fn cycle_flagged() {
        let mut p = ok_process();
        p.control.push(ControlConnector::new("B", "A"));
        assert!(validate(&p)
            .iter()
            .any(|e| matches!(e, ValidationError::Cycle { .. })));
    }

    #[test]
    fn condition_vars_must_resolve() {
        let mut p = ok_process();
        p.control = vec![ControlConnector::when("A", "B", "Ghost = 1")];
        assert!(validate(&p).iter().any(
            |e| matches!(e, ValidationError::UnresolvedConditionVar { var, .. } if var == "Ghost")
        ));
        // RC always resolves (implicit member).
        let mut p2 = ok_process();
        p2.control = vec![ControlConnector::when("A", "B", "RC = 1 AND x = 2")];
        p2.data.clear();
        assert_eq!(validate(&p2), vec![]);
    }

    #[test]
    fn exit_condition_vars_must_resolve() {
        let mut p = ok_process();
        p.activities[0] = p.activities[0].clone().with_exit("Nope = 1");
        assert!(validate(&p).iter().any(|e| matches!(
            e,
            ValidationError::UnresolvedConditionVar { location, .. } if location.contains("exit condition")
        )));
    }

    #[test]
    fn data_direction_rules() {
        let mut p = ok_process();
        p.data = vec![DataConnector::new(
            DataEndpoint::ActivityInput("B".into()),
            DataEndpoint::ActivityOutput("A".into()),
            &[("y", "x")],
        )];
        assert!(validate(&p)
            .iter()
            .any(|e| matches!(e, ValidationError::BadDataDirection { .. })));
    }

    #[test]
    fn mapping_members_and_types_checked() {
        let mut p = ok_process();
        p.data = vec![DataConnector::new(
            DataEndpoint::ActivityOutput("A".into()),
            DataEndpoint::ActivityInput("B".into()),
            &[("missing", "y"), ("x", "missing2")],
        )];
        let errs = validate(&p);
        assert_eq!(
            errs.iter()
                .filter(|e| matches!(e, ValidationError::UnknownMember { .. }))
                .count(),
            2
        );

        // Type mismatch: map INT x to a BOOL member.
        let mut p2 = ok_process();
        p2.activities[1] =
            Activity::program("B", "pb").with_input(ContainerSchema::of(&[("y", DataType::Bool)]));
        assert!(validate(&p2)
            .iter()
            .any(|e| matches!(e, ValidationError::MappingTypeMismatch { .. })));
    }

    #[test]
    fn data_needs_control_path() {
        let mut p = ok_process();
        p.control.clear(); // no path A -> B any more
        assert!(validate(&p)
            .iter()
            .any(|e| matches!(e, ValidationError::DataAgainstControlFlow { .. })));
    }

    #[test]
    fn reserved_rc_must_be_int() {
        let mut p = ok_process();
        p.activities[0] = p.activities[0]
            .clone()
            .with_output(ContainerSchema::of(&[(RC_MEMBER, DataType::Str)]));
        p.data.clear();
        assert!(validate(&p)
            .iter()
            .any(|e| matches!(e, ValidationError::ReservedRcWrongType { .. })));
    }

    #[test]
    fn missing_program_name_flagged() {
        let mut p = ok_process();
        p.activities.push(Activity::program("C", ""));
        p.control.push(ControlConnector::new("B", "C"));
        assert!(validate(&p).iter().any(
            |e| matches!(e, ValidationError::MissingProgramName { activity, .. } if activity == "C")
        ));
    }

    #[test]
    fn blocks_validated_recursively_with_path() {
        let mut inner = ProcessDefinition::new("inner");
        inner.activities = vec![Activity::program("X", "")]; // missing program
        let mut outer = ProcessDefinition::new("outer");
        let block = Activity::block("B", inner);
        outer.activities = vec![block];
        let errs = validate(&outer);
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::MissingProgramName { process, .. } if process == "outer/inner"
        )));
    }

    #[test]
    fn block_container_mismatch_flagged() {
        let mut inner = ProcessDefinition::new("inner");
        inner.activities = vec![Activity::program("X", "px")];
        inner.input = ContainerSchema::of(&[("a", DataType::Int)]);
        let mut outer = ProcessDefinition::new("outer");
        // Block facade omits the inner input schema.
        outer.activities = vec![Activity::block("B", inner)];
        assert!(validate(&outer).iter().any(|e| matches!(
            e,
            ValidationError::BlockContainerMismatch { which: "input", .. }
        )));
    }

    #[test]
    fn duplicate_member_flagged() {
        let mut p = ok_process();
        p.activities[0] = p.activities[0].clone().with_output(
            ContainerSchema::empty()
                .with("x", DataType::Int)
                .with("x", DataType::Int),
        );
        p.data.clear();
        assert!(validate(&p).iter().any(
            |e| matches!(e, ValidationError::DuplicateMember { member, .. } if member == "x")
        ));
    }

    #[test]
    fn errors_display_mentions_process() {
        let p = ProcessDefinition::new("solo");
        let errs = validate(&p);
        assert!(errs[0].to_string().contains("[solo]"));
    }

    #[test]
    fn one_pass_reports_every_violation() {
        // The validator keeps going after the first finding — tools
        // like `fmtm lint` rely on getting the complete list at once.
        let mut p = ok_process();
        p.activities.push(Activity::program("A", "pa")); // duplicate name
        p.activities.push(Activity::program("C", "")); // no program
        p.control.push(ControlConnector::when("A", "A", "RC = 1")); // self loop
        p.control
            .push(ControlConnector::when("A", "Ghost", "RC = 1")); // unknown
        let errs = validate(&p);
        for expect in [
            |e: &ValidationError| matches!(e, ValidationError::DuplicateActivity { activity, .. } if activity == "A"),
            |e: &ValidationError| matches!(e, ValidationError::MissingProgramName { activity, .. } if activity == "C"),
            |e: &ValidationError| matches!(e, ValidationError::SelfLoop { activity, .. } if activity == "A"),
            |e: &ValidationError| matches!(e, ValidationError::UnknownEndpoint { endpoint, .. } if endpoint == "Ghost"),
        ] {
            assert!(errs.iter().any(expect), "missing a variant in {errs:?}");
        }
        assert!(errs.len() >= 4, "{errs:?}");
    }
}
