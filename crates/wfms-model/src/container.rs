//! Data containers: the typed variable records flowing between
//! activities.
//!
//! Every activity (and the process itself) has an **input container**
//! and an **output container** (§3.2): "a sequence of typed variables
//! and structures". A [`ContainerSchema`] declares the members; a
//! [`Container`] is the run-time instance holding values. Data
//! connectors copy members between containers; the engine materialises
//! them when an activity starts and when it terminates.

use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use txn_substrate::Value;

/// Declaration of one container member.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberDecl {
    /// Member name (unique within the container).
    pub name: String,
    /// Member type.
    pub ty: DataType,
    /// Optional explicit default; when absent the type's neutral
    /// default is used.
    pub default: Option<Value>,
}

impl MemberDecl {
    /// A member with the type's neutral default.
    pub fn new(name: &str, ty: DataType) -> Self {
        Self {
            name: name.to_owned(),
            ty,
            default: None,
        }
    }

    /// A member with an explicit default value.
    pub fn with_default(name: &str, ty: DataType, default: Value) -> Self {
        Self {
            name: name.to_owned(),
            ty,
            default: Some(default),
        }
    }

    /// The value a fresh container holds for this member.
    pub fn initial_value(&self) -> Value {
        self.default
            .clone()
            .unwrap_or_else(|| self.ty.default_value())
    }
}

/// An ordered sequence of member declarations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ContainerSchema {
    /// Members in declaration order.
    pub members: Vec<MemberDecl>,
}

impl ContainerSchema {
    /// The empty schema.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a schema from `(name, type)` pairs.
    pub fn of(members: &[(&str, DataType)]) -> Self {
        Self {
            members: members
                .iter()
                .map(|(n, t)| MemberDecl::new(n, *t))
                .collect(),
        }
    }

    /// Adds a member (builder style).
    pub fn with(mut self, name: &str, ty: DataType) -> Self {
        self.members.push(MemberDecl::new(name, ty));
        self
    }

    /// Looks up a member declaration by name.
    pub fn member(&self, name: &str) -> Option<&MemberDecl> {
        self.members.iter().find(|m| m.name == name)
    }

    /// True if `name` is declared.
    pub fn has(&self, name: &str) -> bool {
        self.member(name).is_some()
    }

    /// Member names that appear more than once (a validation error).
    pub fn duplicate_names(&self) -> Vec<String> {
        let mut seen = std::collections::BTreeMap::new();
        for m in &self.members {
            *seen.entry(m.name.clone()).or_insert(0u32) += 1;
        }
        seen.into_iter()
            .filter(|&(_, n)| n > 1)
            .map(|(name, _)| name)
            .collect()
    }

    /// Instantiates a fresh container with every member at its
    /// initial value.
    pub fn instantiate(&self) -> Container {
        if self.members.is_empty() {
            return Container::empty();
        }
        self.members
            .iter()
            .map(|m| (m.name.clone(), m.initial_value()))
            .collect()
    }
}

/// A run-time container: member name → value.
///
/// Values live behind an [`Arc`](std::sync::Arc) with copy-on-write
/// semantics: `clone` is a reference-count bump (containers flow
/// between activities, into journal events and through data connectors
/// far more often than they are mutated), and the first `set` on a
/// shared container clones the underlying map once. The serialized
/// form is unchanged — the `Arc` is transparent to serde.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Container {
    values: std::sync::Arc<BTreeMap<String, Value>>,
}

impl Default for Container {
    fn default() -> Self {
        Self::empty()
    }
}

/// The one shared empty map: `Container::empty()` is an `Arc` clone,
/// not an allocation (empty containers are the most common value on
/// the navigation hot path).
fn empty_values() -> std::sync::Arc<BTreeMap<String, Value>> {
    static EMPTY: std::sync::OnceLock<std::sync::Arc<BTreeMap<String, Value>>> =
        std::sync::OnceLock::new();
    std::sync::Arc::clone(EMPTY.get_or_init(|| std::sync::Arc::new(BTreeMap::new())))
}

impl Container {
    /// An empty container (no members).
    pub fn empty() -> Self {
        Self {
            values: empty_values(),
        }
    }

    /// Reads a member.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// Writes a member. The engine type-checks against the schema at
    /// mapping time; `set` itself is schema-agnostic so recovery can
    /// replay journal entries verbatim.
    pub fn set(&mut self, name: &str, value: Value) {
        std::sync::Arc::make_mut(&mut self.values).insert(name.to_owned(), value);
    }

    /// True if the member exists.
    pub fn has(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Iterates members in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.values.iter()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the container holds no members.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Checks this container against `schema`: every declared member
    /// present and well-typed. Returns the offending member names.
    pub fn type_errors(&self, schema: &ContainerSchema) -> Vec<String> {
        let mut errors = Vec::new();
        for m in &schema.members {
            match self.values.get(&m.name) {
                Some(v) if m.ty.admits(v) => {}
                _ => errors.push(m.name.clone()),
            }
        }
        errors
    }
}

impl FromIterator<(String, Value)> for Container {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Self {
            values: std::sync::Arc::new(iter.into_iter().collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_uses_defaults() {
        let schema = ContainerSchema::empty()
            .with("RC", DataType::Int)
            .with("who", DataType::Str);
        let c = schema.instantiate();
        assert_eq!(c.get("RC"), Some(&Value::Int(0)));
        assert_eq!(c.get("who"), Some(&Value::Str(String::new())));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn explicit_defaults_win() {
        let schema = ContainerSchema {
            members: vec![MemberDecl::with_default("n", DataType::Int, Value::Int(42))],
        };
        assert_eq!(schema.instantiate().get("n"), Some(&Value::Int(42)));
    }

    #[test]
    fn duplicate_names_detected() {
        let schema = ContainerSchema::empty()
            .with("a", DataType::Int)
            .with("b", DataType::Int)
            .with("a", DataType::Str);
        assert_eq!(schema.duplicate_names(), vec!["a".to_string()]);
    }

    #[test]
    fn type_errors_flags_missing_and_mistyped() {
        let schema = ContainerSchema::of(&[("x", DataType::Int), ("y", DataType::Bool)]);
        let mut c = Container::empty();
        c.set("x", Value::Str("oops".into()));
        let errs = c.type_errors(&schema);
        assert_eq!(errs, vec!["x".to_string(), "y".to_string()]);
        c.set("x", Value::Int(1));
        c.set("y", Value::Bool(true));
        assert!(c.type_errors(&schema).is_empty());
    }

    #[test]
    fn iter_is_name_ordered() {
        let mut c = Container::empty();
        c.set("z", Value::Int(1));
        c.set("a", Value::Int(2));
        let names: Vec<_> = c.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(names, vec!["a".to_string(), "z".to_string()]);
    }

    #[test]
    fn from_iterator_collects() {
        let c: Container = vec![("k".to_string(), Value::Int(3))].into_iter().collect();
        assert_eq!(c.get("k"), Some(&Value::Int(3)));
        assert!(!c.is_empty());
    }

    #[test]
    fn schema_member_lookup() {
        let schema = ContainerSchema::of(&[("m", DataType::Str)]);
        assert!(schema.has("m"));
        assert!(!schema.has("n"));
        assert_eq!(schema.member("m").unwrap().ty, DataType::Str);
    }
}
