//! Control and data connectors — the edges of the process graph.

use crate::expr::Expr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A control connector: "the order in which activities are executed"
/// (§3.2), guarded by a *transition condition* evaluated over the
/// **source** activity's output container when the source terminates.
/// A connector that evaluates false does not trigger its target and
/// feeds dead path elimination instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlConnector {
    /// Source activity name.
    pub from: String,
    /// Target activity name.
    pub to: String,
    /// Transition condition; `Expr::truth()` for unconditional edges.
    pub condition: Expr,
}

impl ControlConnector {
    /// An unconditional connector.
    pub fn new(from: &str, to: &str) -> Self {
        Self {
            from: from.to_owned(),
            to: to.to_owned(),
            condition: Expr::truth(),
        }
    }

    /// A connector guarded by `condition` (parsed).
    ///
    /// # Panics
    /// Panics on a syntactically invalid expression (builder
    /// convenience; use [`Expr::parse`] for user input).
    pub fn when(from: &str, to: &str, condition: &str) -> Self {
        Self {
            from: from.to_owned(),
            to: to.to_owned(),
            condition: Expr::parse(condition).expect("invalid transition condition"),
        }
    }
}

impl fmt::Display for ControlConnector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} [{}]", self.from, self.to, self.condition)
    }
}

/// One end of a data connector.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataEndpoint {
    /// The process's own input container (valid as a source).
    ProcessInput,
    /// The process's own output container (valid as a sink).
    ProcessOutput,
    /// The input container of the named activity (valid as a sink).
    ActivityInput(String),
    /// The output container of the named activity (valid as a source).
    ActivityOutput(String),
}

impl DataEndpoint {
    /// True if this endpoint may appear as a data-connector source.
    pub fn is_source(&self) -> bool {
        matches!(
            self,
            DataEndpoint::ProcessInput | DataEndpoint::ActivityOutput(_)
        )
    }

    /// True if this endpoint may appear as a data-connector sink.
    pub fn is_sink(&self) -> bool {
        matches!(
            self,
            DataEndpoint::ProcessOutput | DataEndpoint::ActivityInput(_)
        )
    }

    /// The activity this endpoint refers to, if any.
    pub fn activity(&self) -> Option<&str> {
        match self {
            DataEndpoint::ActivityInput(a) | DataEndpoint::ActivityOutput(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for DataEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataEndpoint::ProcessInput => f.write_str("PROCESS.INPUT"),
            DataEndpoint::ProcessOutput => f.write_str("PROCESS.OUTPUT"),
            DataEndpoint::ActivityInput(a) => write!(f, "{a}.INPUT"),
            DataEndpoint::ActivityOutput(a) => write!(f, "{a}.OUTPUT"),
        }
    }
}

/// One member-to-member copy within a data connector.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    /// Member read from the source container.
    pub from_member: String,
    /// Member written in the sink container.
    pub to_member: String,
}

impl Mapping {
    /// Builds a mapping.
    pub fn new(from_member: &str, to_member: &str) -> Self {
        Self {
            from_member: from_member.to_owned(),
            to_member: to_member.to_owned(),
        }
    }
}

/// A data connector: "a series of mappings between output data
/// containers and input data containers" (§3.2). The Figure 2 saga
/// construction leans on these twice: activity outputs (`State_i`)
/// flow to the forward block's output, and the forward block's output
/// flows into the compensation block's input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataConnector {
    /// Source container.
    pub from: DataEndpoint,
    /// Sink container.
    pub to: DataEndpoint,
    /// Member copies applied in order.
    pub mappings: Vec<Mapping>,
}

impl DataConnector {
    /// Builds a data connector from `(from_member, to_member)` pairs.
    pub fn new(from: DataEndpoint, to: DataEndpoint, pairs: &[(&str, &str)]) -> Self {
        Self {
            from,
            to,
            mappings: pairs.iter().map(|(f, t)| Mapping::new(f, t)).collect(),
        }
    }
}

impl fmt::Display for DataConnector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} => {} {{", self.from, self.to)?;
        for (i, m) in self.mappings.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{} -> {}", m.from_member, m.to_member)?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconditional_connector_is_true() {
        let c = ControlConnector::new("A", "B");
        assert_eq!(c.condition, Expr::truth());
        assert_eq!(c.to_string(), "A -> B [TRUE]");
    }

    #[test]
    fn conditional_connector_parses() {
        let c = ControlConnector::when("T1", "T2", "RC = 1");
        assert_eq!(c.to_string(), "T1 -> T2 [(RC = 1)]");
    }

    #[test]
    #[should_panic(expected = "invalid transition condition")]
    fn invalid_condition_panics() {
        let _ = ControlConnector::when("A", "B", "AND AND");
    }

    #[test]
    fn endpoint_direction_rules() {
        assert!(DataEndpoint::ProcessInput.is_source());
        assert!(!DataEndpoint::ProcessInput.is_sink());
        assert!(DataEndpoint::ProcessOutput.is_sink());
        assert!(!DataEndpoint::ProcessOutput.is_source());
        assert!(DataEndpoint::ActivityOutput("A".into()).is_source());
        assert!(DataEndpoint::ActivityInput("A".into()).is_sink());
        assert!(!DataEndpoint::ActivityInput("A".into()).is_source());
    }

    #[test]
    fn endpoint_activity_accessor() {
        assert_eq!(
            DataEndpoint::ActivityInput("X".into()).activity(),
            Some("X")
        );
        assert_eq!(DataEndpoint::ProcessInput.activity(), None);
    }

    #[test]
    fn data_connector_display() {
        let d = DataConnector::new(
            DataEndpoint::ActivityOutput("T1".into()),
            DataEndpoint::ProcessOutput,
            &[("State_1", "State_1"), ("RC", "RC_1")],
        );
        assert_eq!(
            d.to_string(),
            "T1.OUTPUT => PROCESS.OUTPUT {State_1 -> State_1, RC -> RC_1}"
        );
    }
}
