//! Name interning — dense integer ids for activity names.
//!
//! The engine's compiled templates replace string-keyed lookups with
//! index arithmetic: every activity name of a scope is interned to a
//! dense `u32` in declaration order, so per-scope state can live in
//! plain vectors and hot-path comparisons are integer compares. The
//! interner is built once per scope at compile time and read-only
//! afterwards.

use std::collections::HashMap;
use std::sync::Arc;

/// A bidirectional `name ↔ u32` map with dense ids assigned in
/// insertion order. First insertion wins: re-interning an existing
/// name returns its original id, matching the first-match semantics of
/// [`crate::ProcessDefinition::activity`].
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its dense id. Existing names keep
    /// their original id.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.index.insert(shared, id);
        id
    }

    /// The id of `name`, if interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was never assigned.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_in_insertion_order() {
        let mut i = Interner::new();
        assert_eq!(i.intern("A"), 0);
        assert_eq!(i.intern("B"), 1);
        assert_eq!(i.intern("A"), 0, "re-intern keeps the first id");
        assert_eq!(i.len(), 2);
        assert_eq!(i.name(1), "B");
        assert_eq!(i.get("B"), Some(1));
        assert_eq!(i.get("C"), None);
    }

    #[test]
    fn iter_yields_id_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let all: Vec<(u32, String)> = i.iter().map(|(id, n)| (id, n.to_owned())).collect();
        assert_eq!(all, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn empty() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
