//! Property-based tests of the substrate's core invariants:
//! recovery correctness, abort atomicity, and serialisability of the
//! committed history.

use proptest::prelude::*;
use txn_substrate::{Database, DbConfig, Value};

/// One scripted operation in a transaction.
#[derive(Debug, Clone)]
enum Op {
    Put(u8, i64),
    Delete(u8),
    Get(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, any::<i64>()).prop_map(|(k, v)| Op::Put(k, v)),
        (0u8..8).prop_map(Op::Delete),
        (0u8..8).prop_map(Op::Get),
    ]
}

/// A scripted transaction: operations plus whether it commits.
fn txn_strategy() -> impl Strategy<Value = (Vec<Op>, bool)> {
    (prop::collection::vec(op_strategy(), 1..6), any::<bool>())
}

fn key(k: u8) -> String {
    format!("k{k}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Aborted transactions leave no trace: executing any script where
    /// some transactions abort yields the same state as executing only
    /// the committed ones.
    #[test]
    fn abort_atomicity(scripts in prop::collection::vec(txn_strategy(), 1..12)) {
        let full = Database::new(DbConfig::named("full"));
        let filtered = Database::new(DbConfig::named("filtered"));
        for (ops, commit) in &scripts {
            // Run on `full` always; on `filtered` only if committing.
            let mut t = full.begin();
            for op in ops {
                match op {
                    Op::Put(k, v) => t.put(&key(*k), *v).unwrap(),
                    Op::Delete(k) => t.delete(&key(*k)).unwrap(),
                    Op::Get(k) => { t.get(&key(*k)).unwrap(); }
                }
            }
            if *commit {
                t.commit().unwrap();
                let mut t2 = filtered.begin();
                for op in ops {
                    match op {
                        Op::Put(k, v) => t2.put(&key(*k), *v).unwrap(),
                        Op::Delete(k) => t2.delete(&key(*k)).unwrap(),
                        Op::Get(k) => { t2.get(&key(*k)).unwrap(); }
                    }
                }
                t2.commit().unwrap();
            } else {
                t.abort();
            }
        }
        prop_assert_eq!(full.snapshot(), filtered.snapshot());
    }

    /// Crash–recover reproduces exactly the committed state, from any
    /// script, any number of times.
    #[test]
    fn recovery_reproduces_committed_state(
        scripts in prop::collection::vec(txn_strategy(), 1..12)
    ) {
        let db = Database::new(DbConfig::named("d"));
        for (ops, commit) in &scripts {
            let mut t = db.begin();
            for op in ops {
                match op {
                    Op::Put(k, v) => t.put(&key(*k), *v).unwrap(),
                    Op::Delete(k) => t.delete(&key(*k)).unwrap(),
                    Op::Get(k) => { t.get(&key(*k)).unwrap(); }
                }
            }
            if *commit { t.commit().unwrap(); } else { t.abort(); }
        }
        let before = db.snapshot();
        db.crash();
        db.recover();
        prop_assert_eq!(db.snapshot(), before.clone());
        // Idempotent.
        db.crash();
        db.recover();
        prop_assert_eq!(db.snapshot(), before);
    }

    /// A transaction that crashes mid-flight (no commit record) is a
    /// loser: recovery excludes all of its updates.
    #[test]
    fn in_flight_transactions_are_losers(
        committed_ops in prop::collection::vec(op_strategy(), 1..6),
        loser_ops in prop::collection::vec(op_strategy(), 1..6),
    ) {
        let db = Database::new(DbConfig::named("d"));
        let mut t = db.begin();
        for op in &committed_ops {
            match op {
                Op::Put(k, v) => t.put(&key(*k), *v).unwrap(),
                Op::Delete(k) => t.delete(&key(*k)).unwrap(),
                Op::Get(k) => { t.get(&key(*k)).unwrap(); }
            }
        }
        t.commit().unwrap();
        let committed_state = db.snapshot();

        let mut loser = db.begin();
        for op in &loser_ops {
            match op {
                Op::Put(k, v) => loser.put(&key(*k), *v).unwrap(),
                Op::Delete(k) => loser.delete(&key(*k)).unwrap(),
                Op::Get(k) => { loser.get(&key(*k)).unwrap(); }
            }
        }
        std::mem::forget(loser); // crash with the txn in flight
        db.crash();
        db.recover();
        prop_assert_eq!(db.snapshot(), committed_state);
    }
}

/// Concurrent increments with retries never lose updates (strict 2PL
/// serialisability on the one observable we can count exactly).
#[test]
fn concurrent_increments_are_serialisable() {
    use std::sync::Arc;
    for threads in [2usize, 4] {
        let db = Arc::new(Database::new(DbConfig::named("d")));
        let per = 100;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    for i in 0..per {
                        let k = key((i % 3) as u8);
                        loop {
                            let mut t = db.begin();
                            let cur = match t.get(&k) {
                                Ok(v) => v.and_then(|v| v.as_int()).unwrap_or(0),
                                Err(_) => continue,
                            };
                            if t.put(&k, cur + 1).is_err() {
                                continue;
                            }
                            if t.commit().is_ok() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        let total: i64 = db.snapshot().values().filter_map(Value::as_int).sum();
        assert_eq!(total as usize, threads * per, "threads={threads}");
    }
}
