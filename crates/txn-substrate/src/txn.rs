//! Transaction identity, status and the transaction handle.
//!
//! A [`Transaction`] is a short-lived handle onto one local
//! [`Database`]. It obeys strict 2PL: every read takes
//! a shared lock, every write an exclusive lock, and all locks are held
//! until [`Transaction::commit`] or [`Transaction::abort`]. Dropping an
//! active handle aborts it (no dangling locks, ever).

use crate::db::{Database, DbError};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A database-local transaction identifier.
///
/// Identifiers are allocated by each [`Database`] from a monotonically
/// increasing counter; they are unique *per database*, matching the
/// multidatabase assumption that local DBMSs share nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnStatus {
    /// Running; may still read, write, commit or abort.
    Active,
    /// Successfully committed; effects durable.
    Committed,
    /// Rolled back; effects undone.
    Aborted,
}

/// A handle on an active transaction against one local database.
#[derive(Debug)]
pub struct Transaction<'db> {
    pub(crate) db: &'db Database,
    pub(crate) id: TxnId,
    pub(crate) status: TxnStatus,
}

impl<'db> Transaction<'db> {
    /// This transaction's identifier.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Current lifecycle status of this handle.
    pub fn status(&self) -> TxnStatus {
        self.status
    }

    fn ensure_active(&self) -> Result<(), DbError> {
        match self.status {
            TxnStatus::Active => Ok(()),
            other => Err(DbError::NotActive {
                txn: self.id,
                status: other,
            }),
        }
    }

    /// Reads `key` under a shared lock.
    pub fn get(&mut self, key: &str) -> Result<Option<Value>, DbError> {
        self.ensure_active()?;
        match self.db.txn_get(self.id, key) {
            Err(e) => {
                self.rollback_on_error();
                Err(e)
            }
            ok => ok,
        }
    }

    /// Writes `value` under `key` under an exclusive lock.
    pub fn put(&mut self, key: &str, value: impl Into<Value>) -> Result<(), DbError> {
        self.ensure_active()?;
        match self.db.txn_put(self.id, key, Some(value.into())) {
            Err(e) => {
                self.rollback_on_error();
                Err(e)
            }
            ok => ok,
        }
    }

    /// Deletes `key` under an exclusive lock.
    pub fn delete(&mut self, key: &str) -> Result<(), DbError> {
        self.ensure_active()?;
        match self.db.txn_put(self.id, key, None) {
            Err(e) => {
                self.rollback_on_error();
                Err(e)
            }
            ok => ok,
        }
    }

    /// Commits the transaction. May still fail with
    /// [`DbError::InjectedAbort`] — the local database exercising its
    /// autonomy to unilaterally abort at the commit point, which is the
    /// exact failure mode flexible transactions are designed around.
    pub fn commit(mut self) -> Result<(), DbError> {
        self.ensure_active()?;
        match self.db.txn_commit(self.id) {
            Ok(()) => {
                self.status = TxnStatus::Committed;
                Ok(())
            }
            Err(e) => {
                // The database already rolled the transaction back.
                self.status = TxnStatus::Aborted;
                Err(e)
            }
        }
    }

    /// Aborts the transaction, undoing its updates in place.
    pub fn abort(mut self) {
        if self.status == TxnStatus::Active {
            self.db.txn_abort(self.id);
            self.status = TxnStatus::Aborted;
        }
    }

    /// After a failed operation (deadlock, injected abort) the database
    /// has rolled us back; mark the handle so later calls fail fast.
    fn rollback_on_error(&mut self) {
        self.status = TxnStatus::Aborted;
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if self.status == TxnStatus::Active {
            self.db.txn_abort(self.id);
            self.status = TxnStatus::Aborted;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Database, DbConfig};

    #[test]
    fn txn_id_display() {
        assert_eq!(TxnId(5).to_string(), "txn#5");
    }

    #[test]
    fn drop_aborts_active_transaction() {
        let db = Database::new(DbConfig::named("d"));
        {
            let mut t = db.begin();
            t.put("k", 1i64).unwrap();
            // dropped without commit
        }
        let mut t2 = db.begin();
        assert_eq!(t2.get("k").unwrap(), None, "write was rolled back");
        t2.commit().unwrap();
    }

    #[test]
    fn status_transitions() {
        let db = Database::new(DbConfig::named("d"));
        let mut t = db.begin();
        assert_eq!(t.status(), TxnStatus::Active);
        t.put("k", 1i64).unwrap();
        t.commit().unwrap();
    }

    #[test]
    fn explicit_abort_undoes() {
        let db = Database::new(DbConfig::named("d"));
        let mut seed = db.begin();
        seed.put("k", 1i64).unwrap();
        seed.commit().unwrap();

        let mut t = db.begin();
        t.put("k", 2i64).unwrap();
        t.delete("k2").unwrap();
        t.abort();

        let mut check = db.begin();
        assert_eq!(check.get("k").unwrap(), Some(Value::Int(1)));
        check.commit().unwrap();
    }
}
