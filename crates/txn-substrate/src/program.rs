//! Transactional programs — the unit of work the upper layers invoke.
//!
//! The paper is explicit about granularity (§3.1): a workflow system
//! controls *applications*, not operations inside them. A
//! [`TxnProgram`] is that application: a named, registered unit that,
//! when invoked, runs (typically) one transaction against one local
//! database and reports an outcome with a **return code** — exactly
//! what the Figure 2/Figure 4 constructions consume through their
//! transition conditions.
//!
//! The vocabulary of saga and flexible-transaction steps lives here
//! too: a step is *compensatable* (has a registered compensation
//! program), *retriable* (will eventually commit if retried), a
//! *pivot* (neither), or both compensatable and retriable
//! ([`StepClass`]).

use crate::db::DbError;
use crate::inject::{FailureAction, InjectorHandle};
use crate::multidb::MultiDatabase;
use crate::value::Value;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Classification of a subtransaction in the saga / flexible
/// transaction models (after Mehrotra et al. and Zhang et al., as
/// summarised in §4.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StepClass {
    /// Effects can be semantically undone after commit by a
    /// compensation program.
    Compensatable,
    /// Will eventually commit if retried sufficiently often.
    Retriable,
    /// Both compensatable and retriable.
    CompensatableRetriable,
    /// Neither: once attempted, commit is the only safe forward path.
    Pivot,
}

impl StepClass {
    /// True if a compensation program can undo this step after commit.
    pub fn is_compensatable(self) -> bool {
        matches!(
            self,
            StepClass::Compensatable | StepClass::CompensatableRetriable
        )
    }

    /// True if retrying is guaranteed to eventually commit.
    pub fn is_retriable(self) -> bool {
        matches!(
            self,
            StepClass::Retriable | StepClass::CompensatableRetriable
        )
    }

    /// True if this step is a pivot.
    pub fn is_pivot(self) -> bool {
        self == StepClass::Pivot
    }
}

/// The result of invoking a program.
///
/// `rc` is the program's return code as seen by workflow transition
/// conditions. The constructions in the paper use the convention
/// *committed ⇒ rc = 1, aborted ⇒ rc = 0* (§4.2); programs are free to
/// return richer codes, and conditions compare against them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProgramOutcome {
    /// The program's transaction committed.
    Committed {
        /// Return code (defaults to 1).
        rc: i64,
        /// Named outputs handed back to the caller (mapped into
        /// workflow output containers).
        outputs: BTreeMap<String, Value>,
    },
    /// The program's transaction aborted (unilaterally or by choice).
    Aborted {
        /// Return code (defaults to 0).
        rc: i64,
        /// Human-readable reason, kept in audit trails.
        reason: String,
    },
}

impl ProgramOutcome {
    /// A plain successful outcome with `rc = 1` and no outputs.
    pub fn committed() -> Self {
        ProgramOutcome::Committed {
            rc: 1,
            outputs: BTreeMap::new(),
        }
    }

    /// A plain aborted outcome with `rc = 0`.
    pub fn aborted(reason: impl Into<String>) -> Self {
        ProgramOutcome::Aborted {
            rc: 0,
            reason: reason.into(),
        }
    }

    /// True if the outcome is `Committed`.
    pub fn is_committed(&self) -> bool {
        matches!(self, ProgramOutcome::Committed { .. })
    }

    /// The return code of either variant.
    pub fn rc(&self) -> i64 {
        match self {
            ProgramOutcome::Committed { rc, .. } => *rc,
            ProgramOutcome::Aborted { rc, .. } => *rc,
        }
    }

    /// Outputs of a committed outcome (empty map for aborted ones).
    pub fn outputs(&self) -> BTreeMap<String, Value> {
        match self {
            ProgramOutcome::Committed { outputs, .. } => outputs.clone(),
            ProgramOutcome::Aborted { .. } => BTreeMap::new(),
        }
    }
}

/// Alias used by compensation runners: compensations report the same
/// shape of outcome as forward programs.
pub type CompensationOutcome = ProgramOutcome;

/// Everything a program may touch while running.
pub struct ProgramContext {
    /// The federation of local databases.
    pub multidb: Arc<MultiDatabase>,
    /// Input parameters (mapped from a workflow input container or
    /// passed by a native executor).
    pub params: BTreeMap<String, Value>,
    /// Zero-based attempt number (> 0 when an exit condition or a
    /// retriable executor re-runs the program).
    pub attempt: u32,
}

impl ProgramContext {
    /// Builds a context with no parameters.
    pub fn new(multidb: Arc<MultiDatabase>) -> Self {
        Self {
            multidb,
            params: BTreeMap::new(),
            attempt: 0,
        }
    }

    /// Adds a parameter (builder style).
    pub fn with_param(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.params.insert(key.to_owned(), value.into());
        self
    }

    /// The shared failure injector.
    pub fn injector(&self) -> &InjectorHandle {
        self.multidb.injector()
    }
}

/// A named transactional program.
pub trait TxnProgram: Send + Sync {
    /// The program's registered name.
    fn name(&self) -> &str;

    /// Runs the program. Implementations should begin, run and commit
    /// (or abort) their own transactions against `ctx.multidb`.
    fn run(&self, ctx: &mut ProgramContext) -> ProgramOutcome;
}

/// A program defined by a closure — the workhorse for tests and
/// examples.
pub struct FnProgram<F> {
    name: String,
    body: F,
}

impl<F> FnProgram<F>
where
    F: Fn(&mut ProgramContext) -> ProgramOutcome + Send + Sync,
{
    /// Wraps `body` as a program named `name`.
    pub fn new(name: &str, body: F) -> Self {
        Self {
            name: name.to_owned(),
            body,
        }
    }
}

impl<F> TxnProgram for FnProgram<F>
where
    F: Fn(&mut ProgramContext) -> ProgramOutcome + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, ctx: &mut ProgramContext) -> ProgramOutcome {
        (self.body)(ctx)
    }
}

/// A declarative key/value program: one transaction against one local
/// database, applying a list of writes. Before committing it consults
/// the failure injector under its **own name**, which is how tests and
/// benchmarks script "this subtransaction aborts on attempt k" without
/// writing bespoke closures.
#[derive(Debug, Clone)]
pub struct KvProgram {
    /// Registered name; also the default injection label.
    pub name: String,
    /// Target local database.
    pub db: String,
    /// Writes applied in order (`None` deletes the key).
    pub writes: Vec<(String, Option<Value>)>,
    /// Keys read before writing; their values appear in the outputs
    /// as `read:<key>`.
    pub reads: Vec<String>,
    /// Failure-injection label consulted before commit; defaults to
    /// the program name. Distinct labels let several programs share a
    /// failure plan (or a program be scripted under a step name).
    pub label: Option<String>,
    /// Simulated duration in virtual-clock ticks (0 = instantaneous).
    pub duration: u64,
}

impl KvProgram {
    /// A program that writes `key = value` on database `db`.
    pub fn write(name: &str, db: &str, key: &str, value: impl Into<Value>) -> Self {
        Self {
            name: name.to_owned(),
            db: db.to_owned(),
            writes: vec![(key.to_owned(), Some(value.into()))],
            reads: Vec::new(),
            label: None,
            duration: 0,
        }
    }

    /// A program that deletes `key` on database `db`.
    pub fn delete(name: &str, db: &str, key: &str) -> Self {
        Self {
            name: name.to_owned(),
            db: db.to_owned(),
            writes: vec![(key.to_owned(), None)],
            reads: Vec::new(),
            label: None,
            duration: 0,
        }
    }

    /// Adds an additional write.
    pub fn and_write(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.writes.push((key.to_owned(), Some(value.into())));
        self
    }

    /// Adds a read whose value is exported as output `read:<key>`.
    pub fn and_read(mut self, key: &str) -> Self {
        self.reads.push(key.to_owned());
        self
    }

    /// Overrides the failure-injection label (defaults to the program
    /// name).
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = Some(label.to_owned());
        self
    }

    /// Declares a simulated duration: each invocation advances the
    /// federation's virtual clock by `ticks` before committing. The
    /// engine is synchronous, so virtual time accumulates along the
    /// executed path — which makes *simulated makespan* a measurable
    /// output of workflow runs (used by the duration experiments).
    pub fn with_duration(mut self, ticks: u64) -> Self {
        self.duration = ticks;
        self
    }
}

impl TxnProgram for KvProgram {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, ctx: &mut ProgramContext) -> ProgramOutcome {
        let Some(db) = ctx.multidb.db(&self.db) else {
            return ProgramOutcome::aborted(format!("unknown database {:?}", self.db));
        };
        if self.duration > 0 {
            ctx.multidb.clock().advance(self.duration);
        }
        // Program-level scripted failure (distinct from the db's own
        // commit-point injection, which uses the "<db>/commit" label).
        let label = self.label.as_deref().unwrap_or(&self.name);
        if ctx.injector().decide(label) == FailureAction::Abort {
            return ProgramOutcome::aborted(format!("injected abort of {label:?}"));
        }
        let mut txn = db.begin();
        let mut outputs = BTreeMap::new();
        for key in &self.reads {
            match txn.get(key) {
                Ok(v) => {
                    outputs.insert(
                        format!("read:{key}"),
                        v.unwrap_or(Value::Str(String::new())),
                    );
                }
                Err(e) => return Self::abort_outcome(e),
            }
        }
        for (key, value) in &self.writes {
            let res = match value {
                Some(v) => txn.put(key, v.clone()),
                None => txn.delete(key),
            };
            if let Err(e) = res {
                return Self::abort_outcome(e);
            }
        }
        match txn.commit() {
            Ok(()) => ProgramOutcome::Committed { rc: 1, outputs },
            Err(e) => Self::abort_outcome(e),
        }
    }
}

impl KvProgram {
    fn abort_outcome(e: DbError) -> ProgramOutcome {
        ProgramOutcome::aborted(e.to_string())
    }
}

/// A registry mapping program names to implementations — the paper's
/// "once a program is registered it can be invoked from any activity"
/// (§3.3).
#[derive(Default)]
pub struct ProgramRegistry {
    map: RwLock<HashMap<String, Arc<dyn TxnProgram>>>,
}

impl ProgramRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `program`, replacing any previous program of the same
    /// name. Returns `&self` for chaining.
    pub fn register(&self, program: Arc<dyn TxnProgram>) -> &Self {
        self.map.write().insert(program.name().to_owned(), program);
        self
    }

    /// Convenience: registers a closure under `name`.
    pub fn register_fn<F>(&self, name: &str, body: F) -> &Self
    where
        F: Fn(&mut ProgramContext) -> ProgramOutcome + Send + Sync + 'static,
    {
        self.register(Arc::new(FnProgram::new(name, body)))
    }

    /// Looks up a program by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn TxnProgram>> {
        self.map.read().get(name).cloned()
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.map.read().contains_key(name)
    }

    /// Registered program names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.map.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Invokes `name` with `ctx`. Returns an aborted outcome (rc = 0)
    /// if no such program exists — an unregistered program is a static
    /// error the FDL importer catches, but the engine must still fail
    /// safe at run time.
    pub fn invoke(&self, name: &str, ctx: &mut ProgramContext) -> ProgramOutcome {
        match self.get(name) {
            Some(p) => p.run(ctx),
            None => ProgramOutcome::aborted(format!("program {name:?} not registered")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::FailurePlan;

    fn fed_with_db() -> Arc<MultiDatabase> {
        let fed = MultiDatabase::new(0);
        fed.add_database("d");
        fed
    }

    #[test]
    fn step_class_predicates() {
        assert!(StepClass::Compensatable.is_compensatable());
        assert!(!StepClass::Compensatable.is_retriable());
        assert!(StepClass::Retriable.is_retriable());
        assert!(!StepClass::Retriable.is_compensatable());
        assert!(StepClass::CompensatableRetriable.is_compensatable());
        assert!(StepClass::CompensatableRetriable.is_retriable());
        assert!(StepClass::Pivot.is_pivot());
        assert!(!StepClass::Pivot.is_compensatable());
        assert!(!StepClass::Pivot.is_retriable());
    }

    #[test]
    fn kv_program_commits_and_reports_rc1() {
        let fed = fed_with_db();
        let prog = KvProgram::write("p", "d", "k", 9i64);
        let mut ctx = ProgramContext::new(Arc::clone(&fed));
        let out = prog.run(&mut ctx);
        assert!(out.is_committed());
        assert_eq!(out.rc(), 1);
        assert_eq!(fed.db("d").unwrap().peek("k"), Some(Value::Int(9)));
    }

    #[test]
    fn kv_program_reads_export_outputs() {
        let fed = fed_with_db();
        let db = fed.db("d").unwrap();
        let mut t = db.begin();
        t.put("src", 5i64).unwrap();
        t.commit().unwrap();

        let prog = KvProgram::write("p", "d", "dst", 1i64).and_read("src");
        let mut ctx = ProgramContext::new(Arc::clone(&fed));
        let out = prog.run(&mut ctx);
        assert_eq!(out.outputs().get("read:src"), Some(&Value::Int(5)));
    }

    #[test]
    fn kv_program_injected_abort_has_rc0() {
        let fed = fed_with_db();
        fed.injector().set_plan("p", FailurePlan::FirstN(1));
        let prog = KvProgram::write("p", "d", "k", 1i64);
        let mut ctx = ProgramContext::new(Arc::clone(&fed));
        let out = prog.run(&mut ctx);
        assert!(!out.is_committed());
        assert_eq!(out.rc(), 0);
        assert_eq!(fed.db("d").unwrap().peek("k"), None);
        // Second attempt succeeds: the retriable pattern end to end.
        let out2 = prog.run(&mut ctx);
        assert!(out2.is_committed());
    }

    #[test]
    fn kv_program_unknown_db_aborts() {
        let fed = MultiDatabase::new(0);
        let prog = KvProgram::write("p", "ghost", "k", 1i64);
        let out = prog.run(&mut ProgramContext::new(fed));
        assert!(!out.is_committed());
    }

    #[test]
    fn registry_invoke_and_missing() {
        let fed = fed_with_db();
        let reg = ProgramRegistry::new();
        reg.register(Arc::new(KvProgram::write("w", "d", "k", 2i64)));
        reg.register_fn("f", |_| ProgramOutcome::committed());
        assert!(reg.contains("w"));
        assert_eq!(reg.names(), vec!["f".to_string(), "w".to_string()]);

        let mut ctx = ProgramContext::new(Arc::clone(&fed));
        assert!(reg.invoke("w", &mut ctx).is_committed());
        assert!(reg.invoke("f", &mut ctx).is_committed());
        let missing = reg.invoke("ghost", &mut ctx);
        assert!(!missing.is_committed());
    }

    #[test]
    fn context_params_builder() {
        let fed = fed_with_db();
        let ctx = ProgramContext::new(fed)
            .with_param("amount", 10i64)
            .with_param("who", "alice");
        assert_eq!(ctx.params["amount"], Value::Int(10));
        assert_eq!(ctx.params["who"], Value::from("alice"));
    }

    #[test]
    fn delete_program_removes_key() {
        let fed = fed_with_db();
        let db = fed.db("d").unwrap();
        let mut t = db.begin();
        t.put("k", 1i64).unwrap();
        t.commit().unwrap();
        let prog = KvProgram::delete("del", "d", "k");
        let out = prog.run(&mut ProgramContext::new(Arc::clone(&fed)));
        assert!(out.is_committed());
        assert_eq!(db.peek("k"), None);
    }
}
