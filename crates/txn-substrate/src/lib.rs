//! # txn-substrate
//!
//! The transactional substrate underneath the workflow/transaction-model
//! stack: a **heterogeneous multidatabase** made of autonomous local
//! databases, each providing ACID transactions via strict two-phase
//! locking and a write-ahead log.
//!
//! The paper this repository reproduces (Alonso et al., *Advanced
//! Transaction Models in Workflow Contexts*, ICDE 1996) treats
//! subtransactions of sagas and flexible transactions as ordinary ACID
//! transactions executed against independent local DBMSs that may
//! **unilaterally abort**. This crate supplies exactly that building
//! block:
//!
//! * [`Database`] — one autonomous local database: an in-memory
//!   versioned key/value store guarded by a [`lock::LockManager`]
//!   (strict 2PL, deadlock detection by wait-for-graph cycle search)
//!   and a [`wal::Wal`] (physiological before/after-image logging,
//!   redo-from-log recovery).
//! * [`MultiDatabase`] — a federation of named local databases with no
//!   global concurrency control or global commit — the multidatabase
//!   assumption of flexible transactions.
//! * [`inject`] — deterministic failure injection: scripted unilateral
//!   aborts (e.g. "abort the first 2 attempts" to model *retriable*
//!   subtransactions) and crash points.
//! * [`program`] — the *transactional program* abstraction used by the
//!   upper layers: a named unit of work that runs one transaction and
//!   reports a return code, optionally paired with a compensation
//!   program (the saga/flexible-transaction vocabulary of
//!   compensatable / retriable / pivot steps).
//! * [`clock`] — a virtual clock shared with the workflow engine so
//!   tests and benchmarks are deterministic.
//!
//! The store is deliberately key/value rather than relational: the
//! paper's constructions only need atomic state changes, return codes
//! and compensation; a SQL front end would add bulk without exercising
//! any additional behaviour from the paper.

pub mod clock;
pub mod db;
pub mod durability;
pub mod inject;
pub mod lock;
pub mod multidb;
pub mod program;
pub mod storage;
pub mod txn;
pub mod value;
pub mod wal;

pub use clock::{Tick, VirtualClock};
pub use db::{Database, DbConfig, DbError, DbStats};
pub use durability::{DurabilityPolicy, MirrorError, TailReport, TornTail};
pub use inject::{on_attempts, CrashPoint, FailureAction, FailurePlan, Injector, InjectorHandle};
pub use lock::{LockError, LockManager, LockMode, LockStats};
pub use multidb::MultiDatabase;
pub use program::{
    CompensationOutcome, FnProgram, KvProgram, ProgramContext, ProgramOutcome, ProgramRegistry,
    StepClass, TxnProgram,
};
pub use storage::{Key, Storage};
pub use txn::{Transaction, TxnId, TxnStatus};
pub use value::Value;
pub use wal::{LogRecord, Lsn, Wal, WalStats};
