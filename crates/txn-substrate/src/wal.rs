//! Write-ahead logging and redo recovery for one local database.
//!
//! Each local database logs physiological before/after images of every
//! update, plus transaction begin/commit/abort records. Two uses:
//!
//! 1. **Abort (in-place undo)** — the transaction layer walks its own
//!    update records backwards and restores before-images.
//! 2. **Crash recovery (redo)** — the in-memory store is volatile;
//!    after a (simulated or real) crash, [`Wal::replay_committed`]
//!    rebuilds it by re-applying the after-images of committed
//!    transactions in log order. Updates of losers are skipped, which
//!    makes undo at restart unnecessary: the store is rebuilt from
//!    empty, so only winner writes ever reach it.
//!
//! The log can live purely in memory (fast, for tests and benchmarks
//! that only crash "logically") or be mirrored to a file of JSON lines
//! (one record per line, flushed on commit) so recovery across real
//! process restarts works too.

use crate::storage::Storage;
use crate::txn::TxnId;
use crate::value::Value;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Log sequence number: the index of a record in the log.
pub type Lsn = u64;

/// One write-ahead-log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogRecord {
    /// A transaction started.
    Begin { txn: TxnId },
    /// An update with before/after images (`None` = key absent).
    Update {
        txn: TxnId,
        key: String,
        before: Option<Value>,
        after: Option<Value>,
    },
    /// The transaction committed; its updates are durable.
    Commit { txn: TxnId },
    /// The transaction aborted; its updates have been undone in place.
    Abort { txn: TxnId },
    /// A fuzzy-free checkpoint: the complete committed state at a
    /// quiescent point. Recovery restarts from the **last** checkpoint
    /// and redoes only the committed updates after it; compaction
    /// drops everything before it.
    Checkpoint { state: Vec<(String, Value)> },
}

impl LogRecord {
    /// The transaction this record belongs to (`None` for
    /// checkpoints, which are transaction-independent).
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => Some(*txn),
            LogRecord::Update { txn, .. } => Some(*txn),
            LogRecord::Checkpoint { .. } => None,
        }
    }
}

/// The write-ahead log of one local database.
#[derive(Debug, Default)]
pub struct Wal {
    records: Mutex<Vec<LogRecord>>,
    file: Option<Mutex<BufWriter<File>>>,
}

impl Wal {
    /// An in-memory log (survives a *simulated* crash that clears the
    /// store but keeps the process alive).
    pub fn new() -> Self {
        Self::default()
    }

    /// A log mirrored to `path` (appending if the file exists). Each
    /// record is one JSON line; the writer is flushed on commit/abort
    /// records so the durability point matches the commit point.
    pub fn with_file(path: &Path) -> std::io::Result<Self> {
        let mut wal = Self::new();
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            let mut records = Vec::new();
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let rec: LogRecord = serde_json::from_str(&line).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
                })?;
                records.push(rec);
            }
            wal.records = Mutex::new(records);
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        wal.file = Some(Mutex::new(BufWriter::new(file)));
        Ok(wal)
    }

    /// Appends a record, returning its LSN.
    pub fn append(&self, rec: LogRecord) -> Lsn {
        let flush = matches!(rec, LogRecord::Commit { .. } | LogRecord::Abort { .. });
        if let Some(file) = &self.file {
            let mut w = file.lock();
            // Serialization of LogRecord cannot fail; IO errors on the
            // mirror are surfaced as panics because a database whose
            // log cannot be written must stop.
            let line = serde_json::to_string(&rec).expect("LogRecord is always serializable");
            writeln!(w, "{line}").expect("WAL mirror write failed");
            if flush {
                w.flush().expect("WAL mirror flush failed");
            }
        }
        let mut records = self.records.lock();
        records.push(rec);
        (records.len() - 1) as Lsn
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// A copy of the full log (for audit dumps and tests).
    pub fn records(&self) -> Vec<LogRecord> {
        self.records.lock().clone()
    }

    /// Update records of `txn` in log order (the transaction layer
    /// walks these backwards to undo an abort).
    pub fn updates_of(&self, txn: TxnId) -> Vec<(String, Option<Value>)> {
        self.records
            .lock()
            .iter()
            .filter_map(|r| match r {
                LogRecord::Update {
                    txn: t,
                    key,
                    before,
                    ..
                } if *t == txn => Some((key.clone(), before.clone())),
                _ => None,
            })
            .collect()
    }

    /// Redo recovery: rebuilds `storage` (assumed empty/cleared). If
    /// the log contains checkpoints, the state of the **last** one is
    /// installed first and only records after it are considered;
    /// committed transactions' after-images are then re-applied in log
    /// order. Returns the number of updates replayed (checkpoint
    /// installs count one per key).
    pub fn replay_committed(&self, storage: &Storage) -> usize {
        let records = self.records.lock();
        let start = records
            .iter()
            .rposition(|r| matches!(r, LogRecord::Checkpoint { .. }))
            .unwrap_or(0);
        let tail = &records[start..];
        let mut replayed = 0;
        if let Some(LogRecord::Checkpoint { state }) = tail.first() {
            for (k, v) in state {
                storage.apply(k, Some(v.clone()));
                replayed += 1;
            }
        }
        let committed: std::collections::HashSet<TxnId> = tail
            .iter()
            .filter_map(|r| match r {
                LogRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        for rec in tail {
            if let LogRecord::Update {
                txn, key, after, ..
            } = rec
            {
                if committed.contains(txn) {
                    storage.apply(key, after.clone());
                    replayed += 1;
                }
            }
        }
        replayed
    }

    /// Drops every record before the last checkpoint (log compaction).
    /// A no-op when the log holds no checkpoint. When the log is
    /// mirrored to a file, the file is rewritten to match. Returns the
    /// number of records dropped.
    pub fn compact(&self) -> usize {
        let mut records = self.records.lock();
        let Some(start) = records
            .iter()
            .rposition(|r| matches!(r, LogRecord::Checkpoint { .. }))
        else {
            return 0;
        };
        let dropped = start;
        records.drain(..start);
        if let Some(file) = &self.file {
            // Rewrite the mirror: flush any buffered lines first (the
            // truncation below acts on the file, not the buffer), then
            // truncate and re-append the tail.
            let mut w = file.lock();
            w.flush().expect("WAL mirror flush failed");
            let inner = w.get_mut();
            use std::io::Seek;
            inner.set_len(0).expect("WAL mirror truncate failed");
            inner
                .seek(std::io::SeekFrom::Start(0))
                .expect("WAL mirror seek failed");
            for rec in records.iter() {
                let line =
                    serde_json::to_string(rec).expect("LogRecord is always serializable");
                writeln!(w, "{line}").expect("WAL mirror write failed");
            }
            w.flush().expect("WAL mirror flush failed");
        }
        dropped
    }

    /// Transactions with a `Begin` but neither `Commit` nor `Abort` —
    /// the in-flight losers at crash time.
    pub fn in_flight(&self) -> Vec<TxnId> {
        let records = self.records.lock();
        let mut open: Vec<TxnId> = Vec::new();
        for rec in records.iter() {
            match rec {
                LogRecord::Begin { txn } => open.push(*txn),
                LogRecord::Commit { txn } | LogRecord::Abort { txn } => {
                    open.retain(|t| t != txn)
                }
                LogRecord::Update { .. } | LogRecord::Checkpoint { .. } => {}
            }
        }
        open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    fn upd(txn: u64, key: &str, before: Option<i64>, after: Option<i64>) -> LogRecord {
        LogRecord::Update {
            txn: t(txn),
            key: key.into(),
            before: before.map(Value::Int),
            after: after.map(Value::Int),
        }
    }

    #[test]
    fn lsns_are_sequential() {
        let wal = Wal::new();
        assert_eq!(wal.append(LogRecord::Begin { txn: t(1) }), 0);
        assert_eq!(wal.append(upd(1, "k", None, Some(1))), 1);
        assert_eq!(wal.append(LogRecord::Commit { txn: t(1) }), 2);
        assert_eq!(wal.len(), 3);
    }

    #[test]
    fn replay_redoes_only_committed() {
        let wal = Wal::new();
        // Winner txn 1.
        wal.append(LogRecord::Begin { txn: t(1) });
        wal.append(upd(1, "a", None, Some(10)));
        wal.append(LogRecord::Commit { txn: t(1) });
        // Loser txn 2 (in flight at crash).
        wal.append(LogRecord::Begin { txn: t(2) });
        wal.append(upd(2, "b", None, Some(20)));
        // Aborted txn 3.
        wal.append(LogRecord::Begin { txn: t(3) });
        wal.append(upd(3, "c", None, Some(30)));
        wal.append(LogRecord::Abort { txn: t(3) });

        let storage = Storage::new();
        let n = wal.replay_committed(&storage);
        assert_eq!(n, 1);
        assert_eq!(storage.get("a"), Some(Value::Int(10)));
        assert_eq!(storage.get("b"), None);
        assert_eq!(storage.get("c"), None);
        assert_eq!(wal.in_flight(), vec![t(2)]);
    }

    #[test]
    fn replay_applies_in_log_order() {
        let wal = Wal::new();
        wal.append(LogRecord::Begin { txn: t(1) });
        wal.append(upd(1, "k", None, Some(1)));
        wal.append(LogRecord::Commit { txn: t(1) });
        wal.append(LogRecord::Begin { txn: t(2) });
        wal.append(upd(2, "k", Some(1), Some(2)));
        wal.append(LogRecord::Commit { txn: t(2) });
        let storage = Storage::new();
        wal.replay_committed(&storage);
        assert_eq!(storage.get("k"), Some(Value::Int(2)));
    }

    #[test]
    fn updates_of_returns_before_images_in_order() {
        let wal = Wal::new();
        wal.append(LogRecord::Begin { txn: t(1) });
        wal.append(upd(1, "x", None, Some(1)));
        wal.append(upd(1, "x", Some(1), Some(2)));
        wal.append(upd(2, "y", None, Some(9)));
        let ups = wal.updates_of(t(1));
        assert_eq!(
            ups,
            vec![
                ("x".to_string(), None),
                ("x".to_string(), Some(Value::Int(1)))
            ]
        );
    }

    #[test]
    fn checkpoint_replay_and_compaction() {
        let wal = Wal::new();
        wal.append(LogRecord::Begin { txn: t(1) });
        wal.append(upd(1, "a", None, Some(1)));
        wal.append(LogRecord::Commit { txn: t(1) });
        wal.append(LogRecord::Checkpoint {
            state: vec![("a".into(), Value::Int(1))],
        });
        wal.append(LogRecord::Begin { txn: t(2) });
        wal.append(upd(2, "b", None, Some(2)));
        wal.append(LogRecord::Commit { txn: t(2) });

        let storage = Storage::new();
        let replayed = wal.replay_committed(&storage);
        assert_eq!(replayed, 2, "1 checkpoint key + 1 redo");
        assert_eq!(storage.get("a"), Some(Value::Int(1)));
        assert_eq!(storage.get("b"), Some(Value::Int(2)));

        // Compaction drops the pre-checkpoint records only.
        let dropped = wal.compact();
        assert_eq!(dropped, 3);
        let storage2 = Storage::new();
        wal.replay_committed(&storage2);
        assert_eq!(storage2.snapshot(), storage.snapshot());
        // Compacting again is a no-op (checkpoint is now first).
        assert_eq!(wal.compact(), 0);
    }

    #[test]
    fn compact_without_checkpoint_is_noop() {
        let wal = Wal::new();
        wal.append(LogRecord::Begin { txn: t(1) });
        assert_eq!(wal.compact(), 0);
        assert_eq!(wal.len(), 1);
    }

    #[test]
    fn file_mirror_compaction_rewrites_file() {
        let dir = std::env::temp_dir().join(format!(
            "wftx-wal-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append(LogRecord::Begin { txn: t(1) });
            wal.append(upd(1, "k", None, Some(7)));
            wal.append(LogRecord::Commit { txn: t(1) });
            wal.append(LogRecord::Checkpoint {
                state: vec![("k".into(), Value::Int(7))],
            });
            assert_eq!(wal.compact(), 3);
        }
        // Reopen: only the checkpoint survives, and replay still
        // reproduces the state.
        let wal2 = Wal::with_file(&path).unwrap();
        assert_eq!(wal2.len(), 1);
        let storage = Storage::new();
        wal2.replay_committed(&storage);
        assert_eq!(storage.get("k"), Some(Value::Int(7)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_mirror_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "wftx-wal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append(LogRecord::Begin { txn: t(7) });
            wal.append(upd(7, "k", None, Some(42)));
            wal.append(LogRecord::Commit { txn: t(7) });
        }
        // Reopen: records come back and replay rebuilds the store.
        let wal2 = Wal::with_file(&path).unwrap();
        assert_eq!(wal2.len(), 3);
        let storage = Storage::new();
        wal2.replay_committed(&storage);
        assert_eq!(storage.get("k"), Some(Value::Int(42)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
