//! Write-ahead logging and redo recovery for one local database.
//!
//! Each local database logs physiological before/after images of every
//! update, plus transaction begin/commit/abort records. Two uses:
//!
//! 1. **Abort (in-place undo)** — the transaction layer walks its own
//!    update records backwards and restores before-images.
//! 2. **Crash recovery (redo)** — the in-memory store is volatile;
//!    after a (simulated or real) crash, [`Wal::replay_committed`]
//!    rebuilds it by re-applying the after-images of committed
//!    transactions in log order. Updates of losers are skipped, which
//!    makes undo at restart unnecessary: the store is rebuilt from
//!    empty, so only winner writes ever reach it.
//!
//! The log can live purely in memory (fast, for tests and benchmarks
//! that only crash "logically") or be mirrored to a file of JSON lines
//! under a [`DurabilityPolicy`]. Commit and abort records always force
//! a flush regardless of policy — the durability point is the commit
//! point. Reopening a mirrored log tolerates a **torn tail** (a crash
//! mid-append leaves a partial final line; it is truncated away with a
//! diagnostic) while still rejecting mid-file corruption; see
//! [`crate::durability::read_json_lines`] and `docs/recovery.md`.
//!
//! Mirror I/O errors do not panic: the first error is remembered
//! ([`Wal::mirror_error`]), the file mirror is disabled, and the log
//! keeps serving from memory so the owning database can surface the
//! failure at its API boundary instead of dying mid-transaction.

use crate::durability::{
    atomic_rewrite, read_json_lines, DurabilityPolicy, DurableWriter, MirrorError, TailReport,
};
use crate::storage::Storage;
use crate::txn::TxnId;
use crate::value::Value;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

/// Log sequence number: the index of a record in the log.
pub type Lsn = u64;

/// One write-ahead-log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogRecord {
    /// A transaction started.
    Begin { txn: TxnId },
    /// An update with before/after images (`None` = key absent).
    Update {
        txn: TxnId,
        key: String,
        before: Option<Value>,
        after: Option<Value>,
    },
    /// The transaction committed; its updates are durable.
    Commit { txn: TxnId },
    /// The transaction aborted; its updates have been undone in place.
    Abort { txn: TxnId },
    /// A fuzzy-free checkpoint: the complete committed state at a
    /// quiescent point. Recovery restarts from the **last** checkpoint
    /// and redoes only the committed updates after it; compaction
    /// drops everything before it.
    Checkpoint { state: Vec<(String, Value)> },
}

impl LogRecord {
    /// The transaction this record belongs to (`None` for
    /// checkpoints, which are transaction-independent).
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn } | LogRecord::Commit { txn } | LogRecord::Abort { txn } => {
                Some(*txn)
            }
            LogRecord::Update { txn, .. } => Some(*txn),
            LogRecord::Checkpoint { .. } => None,
        }
    }
}

/// The file mirror of a [`Wal`]: the policy-driven writer plus the
/// path (needed for atomic compaction rewrites).
#[derive(Debug)]
struct WalMirror {
    writer: DurableWriter,
    path: PathBuf,
}

/// Append/flush counters of one WAL, exposed for the engine's
/// observability snapshot (atomically maintained; reading never blocks
/// writers).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since creation.
    pub appends: u64,
    /// Appends that forced a flush (commit/abort durability barriers).
    pub barrier_flushes: u64,
    /// Total wall-clock nanoseconds spent in mirror file I/O
    /// (append + policy-driven flush). Zero for in-memory logs.
    pub mirror_nanos: u64,
}

/// The write-ahead log of one local database.
///
/// Lock order (matters for the append/compact race): `records` is
/// always acquired **before** `mirror`, and the `records` lock is held
/// across the mirror write — so the file's record order is exactly the
/// in-memory order, and a concurrent `compact` can never rewrite the
/// file while an append sits between "in memory" and "in file".
#[derive(Debug, Default)]
pub struct Wal {
    records: Mutex<Vec<LogRecord>>,
    mirror: Mutex<Option<WalMirror>>,
    mirror_error: Mutex<Option<MirrorError>>,
    appends: std::sync::atomic::AtomicU64,
    barrier_flushes: std::sync::atomic::AtomicU64,
    mirror_nanos: std::sync::atomic::AtomicU64,
}

impl Wal {
    /// An in-memory log (survives a *simulated* crash that clears the
    /// store but keeps the process alive).
    pub fn new() -> Self {
        Self::default()
    }

    /// A log mirrored to `path` (appending if the file exists) under
    /// the default [`DurabilityPolicy::PerEvent`].
    pub fn with_file(path: &Path) -> std::io::Result<Self> {
        Self::with_file_policy(path, DurabilityPolicy::default())
    }

    /// A log mirrored to `path` under an explicit durability policy.
    /// Commit/abort records force a flush under every policy.
    pub fn with_file_policy(path: &Path, policy: DurabilityPolicy) -> std::io::Result<Self> {
        Self::with_file_report(path, policy).map(|(wal, _)| wal)
    }

    /// Like [`Wal::with_file_policy`] but also returns the
    /// [`TailReport`] of the reopen — tests and recovery audits use it
    /// to observe whether a torn tail was truncated.
    pub fn with_file_report(
        path: &Path,
        policy: DurabilityPolicy,
    ) -> std::io::Result<(Self, TailReport)> {
        let wal = Self::new();
        let mut report = TailReport::default();
        if path.exists() {
            let (records, rep) = read_json_lines::<LogRecord>(path)?;
            if let Some(tail) = &rep.torn_tail {
                eprintln!(
                    "wal: torn tail in {} at byte {}: truncated partial record {:?}",
                    path.display(),
                    tail.offset,
                    tail.discarded
                );
            }
            report = rep;
            *wal.records.lock() = records;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        *wal.mirror.lock() = Some(WalMirror {
            writer: DurableWriter::new(file, policy),
            path: path.to_path_buf(),
        });
        Ok((wal, report))
    }

    /// Test-only: mirrors the log to an already-open `file` (e.g. one
    /// opened read-only, to exercise the mirror-failure path).
    #[doc(hidden)]
    pub fn with_injected_file(
        file: std::fs::File,
        path: PathBuf,
        policy: DurabilityPolicy,
    ) -> Self {
        let wal = Self::new();
        *wal.mirror.lock() = Some(WalMirror {
            writer: DurableWriter::new(file, policy),
            path,
        });
        wal
    }

    /// The first mirror I/O error hit, if any. Once set, the file
    /// mirror is disabled and the log serves from memory only.
    pub fn mirror_error(&self) -> Option<MirrorError> {
        self.mirror_error.lock().clone()
    }

    /// Records the first mirror failure and disables the mirror.
    fn fail_mirror(
        guard: &mut Option<WalMirror>,
        sticky: &Mutex<Option<MirrorError>>,
        context: &str,
        e: &std::io::Error,
    ) {
        let err = MirrorError::new(context, e);
        eprintln!("wal: {err}; disabling file mirror, log continues in memory");
        let mut slot = sticky.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        *guard = None;
    }

    /// Appends a record, returning its LSN. Never panics on mirror
    /// I/O failure — see [`Wal::mirror_error`].
    pub fn append(&self, rec: LogRecord) -> Lsn {
        use std::sync::atomic::Ordering;
        let barrier = matches!(rec, LogRecord::Commit { .. } | LogRecord::Abort { .. });
        // Serialization of LogRecord cannot fail: every variant is
        // plain data with serializable fields.
        let line = serde_json::to_string(&rec).expect("LogRecord is always serializable");
        let mut records = self.records.lock();
        records.push(rec);
        let lsn = (records.len() - 1) as Lsn;
        self.appends.fetch_add(1, Ordering::Relaxed);
        if barrier {
            self.barrier_flushes.fetch_add(1, Ordering::Relaxed);
        }
        let mut guard = self.mirror.lock();
        if let Some(m) = guard.as_mut() {
            let t0 = std::time::Instant::now();
            let result = m.writer.append_line(&line, barrier);
            self.mirror_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if let Err(e) = result {
                Self::fail_mirror(&mut guard, &self.mirror_error, "append", &e);
            }
        }
        lsn
    }

    /// Snapshot of the append/flush counters.
    pub fn stats(&self) -> WalStats {
        use std::sync::atomic::Ordering;
        WalStats {
            appends: self.appends.load(Ordering::Relaxed),
            barrier_flushes: self.barrier_flushes.load(Ordering::Relaxed),
            mirror_nanos: self.mirror_nanos.load(Ordering::Relaxed),
        }
    }

    /// Forces buffered mirror lines to the file (a durability barrier
    /// under any policy; a no-op for unmirrored logs).
    pub fn flush(&self) {
        let _records = self.records.lock();
        let mut guard = self.mirror.lock();
        if let Some(m) = guard.as_mut() {
            if let Err(e) = m.writer.flush() {
                Self::fail_mirror(&mut guard, &self.mirror_error, "flush", &e);
            }
        }
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// A copy of the full log (for audit dumps and tests).
    pub fn records(&self) -> Vec<LogRecord> {
        self.records.lock().clone()
    }

    /// Update records of `txn` in log order (the transaction layer
    /// walks these backwards to undo an abort).
    pub fn updates_of(&self, txn: TxnId) -> Vec<(String, Option<Value>)> {
        self.records
            .lock()
            .iter()
            .filter_map(|r| match r {
                LogRecord::Update {
                    txn: t,
                    key,
                    before,
                    ..
                } if *t == txn => Some((key.clone(), before.clone())),
                _ => None,
            })
            .collect()
    }

    /// Redo recovery: rebuilds `storage` (assumed empty/cleared). If
    /// the log contains checkpoints, the state of the **last** one is
    /// installed first and only records after it are considered;
    /// committed transactions' after-images are then re-applied in log
    /// order. Returns the number of updates replayed (checkpoint
    /// installs count one per key).
    pub fn replay_committed(&self, storage: &Storage) -> usize {
        let records = self.records.lock();
        let start = records
            .iter()
            .rposition(|r| matches!(r, LogRecord::Checkpoint { .. }))
            .unwrap_or(0);
        let tail = &records[start..];
        let mut replayed = 0;
        if let Some(LogRecord::Checkpoint { state }) = tail.first() {
            for (k, v) in state {
                storage.apply(k, Some(v.clone()));
                replayed += 1;
            }
        }
        let committed: std::collections::HashSet<TxnId> = tail
            .iter()
            .filter_map(|r| match r {
                LogRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        for rec in tail {
            if let LogRecord::Update {
                txn, key, after, ..
            } = rec
            {
                if committed.contains(txn) {
                    storage.apply(key, after.clone());
                    replayed += 1;
                }
            }
        }
        replayed
    }

    /// Drops every record before the last checkpoint (log compaction).
    /// A no-op when the log holds no checkpoint. When the log is
    /// mirrored to a file, the file is **atomically rewritten** (temp
    /// file + rename): a crash during compaction leaves either the old
    /// or the new complete file, never a half-truncated one. Returns
    /// the number of records dropped.
    pub fn compact(&self) -> usize {
        let mut records = self.records.lock();
        let Some(start) = records
            .iter()
            .rposition(|r| matches!(r, LogRecord::Checkpoint { .. }))
        else {
            return 0;
        };
        let dropped = start;
        records.drain(..start);
        let mut guard = self.mirror.lock();
        if let Some(m) = guard.as_mut() {
            let lines = records
                .iter()
                .map(|rec| serde_json::to_string(rec).expect("LogRecord is always serializable"));
            match atomic_rewrite(&m.path, lines) {
                Ok(file) => m.writer.replace_file(file),
                Err(e) => Self::fail_mirror(&mut guard, &self.mirror_error, "compact", &e),
            }
        }
        dropped
    }

    /// Transactions with a `Begin` but neither `Commit` nor `Abort` —
    /// the in-flight losers at crash time.
    pub fn in_flight(&self) -> Vec<TxnId> {
        let records = self.records.lock();
        let mut open: Vec<TxnId> = Vec::new();
        for rec in records.iter() {
            match rec {
                LogRecord::Begin { txn } => open.push(*txn),
                LogRecord::Commit { txn } | LogRecord::Abort { txn } => open.retain(|t| t != txn),
                LogRecord::Update { .. } | LogRecord::Checkpoint { .. } => {}
            }
        }
        open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    fn upd(txn: u64, key: &str, before: Option<i64>, after: Option<i64>) -> LogRecord {
        LogRecord::Update {
            txn: t(txn),
            key: key.into(),
            before: before.map(Value::Int),
            after: after.map(Value::Int),
        }
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wftx-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lsns_are_sequential() {
        let wal = Wal::new();
        assert_eq!(wal.append(LogRecord::Begin { txn: t(1) }), 0);
        assert_eq!(wal.append(upd(1, "k", None, Some(1))), 1);
        assert_eq!(wal.append(LogRecord::Commit { txn: t(1) }), 2);
        assert_eq!(wal.len(), 3);
    }

    #[test]
    fn replay_redoes_only_committed() {
        let wal = Wal::new();
        // Winner txn 1.
        wal.append(LogRecord::Begin { txn: t(1) });
        wal.append(upd(1, "a", None, Some(10)));
        wal.append(LogRecord::Commit { txn: t(1) });
        // Loser txn 2 (in flight at crash).
        wal.append(LogRecord::Begin { txn: t(2) });
        wal.append(upd(2, "b", None, Some(20)));
        // Aborted txn 3.
        wal.append(LogRecord::Begin { txn: t(3) });
        wal.append(upd(3, "c", None, Some(30)));
        wal.append(LogRecord::Abort { txn: t(3) });

        let storage = Storage::new();
        let n = wal.replay_committed(&storage);
        assert_eq!(n, 1);
        assert_eq!(storage.get("a"), Some(Value::Int(10)));
        assert_eq!(storage.get("b"), None);
        assert_eq!(storage.get("c"), None);
        assert_eq!(wal.in_flight(), vec![t(2)]);
    }

    #[test]
    fn replay_applies_in_log_order() {
        let wal = Wal::new();
        wal.append(LogRecord::Begin { txn: t(1) });
        wal.append(upd(1, "k", None, Some(1)));
        wal.append(LogRecord::Commit { txn: t(1) });
        wal.append(LogRecord::Begin { txn: t(2) });
        wal.append(upd(2, "k", Some(1), Some(2)));
        wal.append(LogRecord::Commit { txn: t(2) });
        let storage = Storage::new();
        wal.replay_committed(&storage);
        assert_eq!(storage.get("k"), Some(Value::Int(2)));
    }

    #[test]
    fn updates_of_returns_before_images_in_order() {
        let wal = Wal::new();
        wal.append(LogRecord::Begin { txn: t(1) });
        wal.append(upd(1, "x", None, Some(1)));
        wal.append(upd(1, "x", Some(1), Some(2)));
        wal.append(upd(2, "y", None, Some(9)));
        let ups = wal.updates_of(t(1));
        assert_eq!(
            ups,
            vec![
                ("x".to_string(), None),
                ("x".to_string(), Some(Value::Int(1)))
            ]
        );
    }

    #[test]
    fn checkpoint_replay_and_compaction() {
        let wal = Wal::new();
        wal.append(LogRecord::Begin { txn: t(1) });
        wal.append(upd(1, "a", None, Some(1)));
        wal.append(LogRecord::Commit { txn: t(1) });
        wal.append(LogRecord::Checkpoint {
            state: vec![("a".into(), Value::Int(1))],
        });
        wal.append(LogRecord::Begin { txn: t(2) });
        wal.append(upd(2, "b", None, Some(2)));
        wal.append(LogRecord::Commit { txn: t(2) });

        let storage = Storage::new();
        let replayed = wal.replay_committed(&storage);
        assert_eq!(replayed, 2, "1 checkpoint key + 1 redo");
        assert_eq!(storage.get("a"), Some(Value::Int(1)));
        assert_eq!(storage.get("b"), Some(Value::Int(2)));

        // Compaction drops the pre-checkpoint records only.
        let dropped = wal.compact();
        assert_eq!(dropped, 3);
        let storage2 = Storage::new();
        wal.replay_committed(&storage2);
        assert_eq!(storage2.snapshot(), storage.snapshot());
        // Compacting again is a no-op (checkpoint is now first).
        assert_eq!(wal.compact(), 0);
    }

    #[test]
    fn compact_without_checkpoint_is_noop() {
        let wal = Wal::new();
        wal.append(LogRecord::Begin { txn: t(1) });
        assert_eq!(wal.compact(), 0);
        assert_eq!(wal.len(), 1);
    }

    #[test]
    fn file_mirror_compaction_rewrites_file() {
        let dir = tmp_dir("ckpt");
        let path = dir.join("db.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append(LogRecord::Begin { txn: t(1) });
            wal.append(upd(1, "k", None, Some(7)));
            wal.append(LogRecord::Commit { txn: t(1) });
            wal.append(LogRecord::Checkpoint {
                state: vec![("k".into(), Value::Int(7))],
            });
            assert_eq!(wal.compact(), 3);
            assert!(wal.mirror_error().is_none());
        }
        // Reopen: only the checkpoint survives, and replay still
        // reproduces the state. The compaction temp file is gone.
        assert!(!dir.join("db.rewrite-tmp").exists());
        let wal2 = Wal::with_file(&path).unwrap();
        assert_eq!(wal2.len(), 1);
        let storage = Storage::new();
        wal2.replay_committed(&storage);
        assert_eq!(storage.get("k"), Some(Value::Int(7)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_mirror_round_trips() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("db.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append(LogRecord::Begin { txn: t(7) });
            wal.append(upd(7, "k", None, Some(42)));
            wal.append(LogRecord::Commit { txn: t(7) });
        }
        // Reopen: records come back and replay rebuilds the store.
        let wal2 = Wal::with_file(&path).unwrap();
        assert_eq!(wal2.len(), 3);
        let storage = Storage::new();
        wal2.replay_committed(&storage);
        assert_eq!(storage.get("k"), Some(Value::Int(42)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_reopen_recovers() {
        let dir = tmp_dir("torn");
        let path = dir.join("db.wal");
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append(LogRecord::Begin { txn: t(1) });
            wal.append(upd(1, "k", None, Some(5)));
            wal.append(LogRecord::Commit { txn: t(1) });
        }
        // Simulate a crash mid-append: half of a Begin record.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"Begin\":{{\"tx").unwrap();
        }
        let (wal2, report) = Wal::with_file_report(&path, DurabilityPolicy::PerEvent).unwrap();
        assert_eq!(wal2.len(), 3, "complete records survive");
        let tail = report.torn_tail.expect("torn tail reported");
        assert_eq!(tail.discarded, "{\"Begin\":{\"tx");
        let storage = Storage::new();
        wal2.replay_committed(&storage);
        assert_eq!(storage.get("k"), Some(Value::Int(5)));
        // The WAL is writable again after truncation: new appends land
        // on a clean record boundary.
        wal2.append(LogRecord::Begin { txn: t(2) });
        wal2.append(LogRecord::Abort { txn: t(2) });
        drop(wal2);
        let wal3 = Wal::with_file(&path).unwrap();
        assert_eq!(wal3.len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_still_rejected() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("db.wal");
        std::fs::write(
            &path,
            "{\"Begin\":{\"txn\":1}}\ngarbage\n{\"Commit\":{\"txn\":1}}\n",
        )
        .unwrap();
        let err = Wal::with_file(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mirror_write_failure_is_sticky_not_fatal() {
        let dir = tmp_dir("sticky");
        let path = dir.join("db.wal");
        std::fs::write(&path, "").unwrap();
        // A read-only handle makes every write fail (EBADF), which
        // stands in for disk-full without needing a full disk.
        let ro = OpenOptions::new().read(true).open(&path).unwrap();
        let wal = Wal::with_injected_file(ro, path.clone(), DurabilityPolicy::PerEvent);
        let lsn = wal.append(LogRecord::Begin { txn: t(1) });
        assert_eq!(lsn, 0, "in-memory log keeps working");
        let err = wal.mirror_error().expect("first failure recorded");
        assert!(err.message.contains("append"), "{err}");
        // Later appends neither panic nor overwrite the first error.
        wal.append(LogRecord::Commit { txn: t(1) });
        assert_eq!(wal.mirror_error(), Some(err));
        assert_eq!(wal.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_policy_commit_is_still_a_barrier() {
        let dir = tmp_dir("batch");
        let path = dir.join("db.wal");
        let wal = Wal::with_file_policy(&path, DurabilityPolicy::Batched { n: 100 }).unwrap();
        wal.append(LogRecord::Begin { txn: t(1) });
        wal.append(upd(1, "k", None, Some(1)));
        // Nothing flushed yet under Batched{100}...
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        // ...but a commit record forces the group to disk.
        wal.append(LogRecord::Commit { txn: t(1) });
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk.lines().count(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_append_and_compact_keep_file_consistent() {
        let dir = tmp_dir("race");
        let path = dir.join("db.wal");
        let wal = std::sync::Arc::new(Wal::with_file(&path).unwrap());
        wal.append(LogRecord::Checkpoint { state: vec![] });
        let appender = {
            let wal = wal.clone();
            std::thread::spawn(move || {
                for i in 0..200u64 {
                    wal.append(LogRecord::Begin { txn: t(i) });
                    wal.append(LogRecord::Abort { txn: t(i) });
                }
            })
        };
        let compactor = {
            let wal = wal.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    wal.compact();
                    std::thread::yield_now();
                }
            })
        };
        appender.join().unwrap();
        compactor.join().unwrap();
        assert!(wal.mirror_error().is_none());
        wal.flush();
        let in_memory = wal.records();
        drop(wal);
        // The file must hold exactly the in-memory records: no append
        // lost to a concurrent rewrite, no duplicated tail.
        let wal2 = Wal::with_file(&path).unwrap();
        assert_eq!(wal2.records(), in_memory);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
