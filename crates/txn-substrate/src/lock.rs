//! Strict two-phase locking.
//!
//! The paper observes (§2) that, for all the sophistication of the
//! concurrency-control literature, "most databases today use Strict 2
//! Phase Locking for write operations". The local databases of this
//! substrate do exactly that: shared/exclusive record locks held until
//! commit or abort, blocking waits, and deadlock detection by cycle
//! search in the wait-for graph.
//!
//! ## Deadlock policy
//!
//! Detection is performed by the *requester* at block time: before a
//! transaction starts waiting, it adds its wait-for edges and searches
//! for a cycle through itself. If one exists the requester aborts
//! itself ([`LockError::Deadlock`]) — a deterministic
//! "victim-is-the-closer" policy that needs no cross-thread victim
//! signalling and guarantees progress (the cycle is broken before
//! anyone sleeps on it). Upper layers treat a deadlock abort like any
//! other unilateral abort, which is precisely the multidatabase
//! behaviour flexible transactions were designed around.

use crate::txn::TxnId;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Lock mode for a record lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (read) lock: compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock: compatible with nothing.
    Exclusive,
}

impl LockMode {
    /// Lock compatibility matrix: only S/S is compatible.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    /// True if `self` is at least as strong as `needed`.
    pub fn covers(self, needed: LockMode) -> bool {
        self == LockMode::Exclusive || needed == LockMode::Shared
    }
}

/// Errors surfaced by lock acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Granting the request would close a cycle in the wait-for graph;
    /// the requesting transaction must abort.
    Deadlock {
        /// The transactions forming the detected cycle, starting and
        /// ending (implicitly) at the requester.
        cycle: Vec<TxnId>,
    },
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Deadlock { cycle } => {
                write!(f, "deadlock detected; wait-for cycle: {cycle:?}")
            }
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Debug, Default)]
struct LockEntry {
    /// Current holders with their strongest granted mode.
    holders: Vec<(TxnId, LockMode)>,
    /// FIFO queue of blocked requests.
    waiters: VecDeque<(TxnId, LockMode)>,
}

#[derive(Debug, Default)]
struct LmState {
    table: HashMap<String, LockEntry>,
    /// Edges `waiter -> {holders it waits for}` for deadlock search.
    waits_for: HashMap<TxnId, HashSet<TxnId>>,
    stats: LockStats,
}

/// Counters exposed for the substrate benchmarks (experiment B8) and
/// the engine's observability snapshot.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LockStats {
    /// Locks granted without waiting.
    pub immediate_grants: u64,
    /// Requests that had to block at least once.
    pub waits: u64,
    /// Requests refused because they would have deadlocked.
    pub deadlocks: u64,
    /// Shared→exclusive upgrades granted.
    pub upgrades: u64,
    /// Total wall-clock nanoseconds requests spent blocked (both
    /// eventually granted and deadlock-refused waits).
    pub wait_nanos: u64,
}

/// The lock manager of one local database.
#[derive(Debug, Default)]
pub struct LockManager {
    state: Mutex<LmState>,
    wakeup: Condvar,
}

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires `mode` on `key` for `txn`, blocking until granted.
    ///
    /// Returns `Err(LockError::Deadlock)` if waiting would create a
    /// wait-for cycle; the caller is expected to abort `txn`.
    pub fn acquire(&self, txn: TxnId, key: &str, mode: LockMode) -> Result<(), LockError> {
        let mut st = self.state.lock();
        let mut wait_start: Option<std::time::Instant> = None;
        loop {
            let registered = wait_start.is_some();
            if Self::try_grant(&mut st, txn, key, mode, registered) {
                if let Some(t0) = wait_start {
                    Self::clear_waiter(&mut st, txn, key);
                    st.stats.wait_nanos += t0.elapsed().as_nanos() as u64;
                } else {
                    st.stats.immediate_grants += 1;
                }
                return Ok(());
            }
            if !registered {
                st.table
                    .entry(key.to_owned())
                    .or_default()
                    .waiters
                    .push_back((txn, mode));
                wait_start = Some(std::time::Instant::now());
                st.stats.waits += 1;
            }
            // (Re)compute this waiter's outgoing wait-for edges and run
            // the cycle check before sleeping.
            let blockers = Self::blockers(&st, txn, key, mode);
            st.waits_for.insert(txn, blockers);
            if let Some(cycle) = Self::find_cycle(&st, txn) {
                Self::clear_waiter(&mut st, txn, key);
                st.waits_for.remove(&txn);
                st.stats.deadlocks += 1;
                if let Some(t0) = wait_start {
                    st.stats.wait_nanos += t0.elapsed().as_nanos() as u64;
                }
                return Err(LockError::Deadlock { cycle });
            }
            self.wakeup.wait(&mut st);
        }
    }

    /// True if `txn` already holds a lock on `key` covering `mode`.
    pub fn holds(&self, txn: TxnId, key: &str, mode: LockMode) -> bool {
        let st = self.state.lock();
        st.table
            .get(key)
            .map(|e| e.holders.iter().any(|&(t, m)| t == txn && m.covers(mode)))
            .unwrap_or(false)
    }

    /// Releases every lock held by `txn` (strict 2PL: called only at
    /// commit or abort) and wakes all blocked requesters.
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.state.lock();
        st.table.retain(|_, entry| {
            entry.holders.retain(|&(t, _)| t != txn);
            entry.waiters.retain(|&(t, _)| t != txn);
            !(entry.holders.is_empty() && entry.waiters.is_empty())
        });
        st.waits_for.remove(&txn);
        for targets in st.waits_for.values_mut() {
            targets.remove(&txn);
        }
        drop(st);
        self.wakeup.notify_all();
    }

    /// Keys currently locked by `txn`, in key order, with their modes.
    pub fn held_by(&self, txn: TxnId) -> BTreeMap<String, LockMode> {
        let st = self.state.lock();
        st.table
            .iter()
            .filter_map(|(k, e)| {
                e.holders
                    .iter()
                    .find(|&&(t, _)| t == txn)
                    .map(|&(_, m)| (k.clone(), m))
            })
            .collect()
    }

    /// Snapshot of the lock-manager counters.
    pub fn stats(&self) -> LockStats {
        self.state.lock().stats
    }

    /// Attempts the grant under the table lock. `is_queued` indicates
    /// the request is already in the waiter queue (so queue-front
    /// fairness applies to it).
    fn try_grant(st: &mut LmState, txn: TxnId, key: &str, mode: LockMode, is_queued: bool) -> bool {
        let entry = st.table.entry(key.to_owned()).or_default();

        // Re-entrant request covered by an existing grant.
        if entry
            .holders
            .iter()
            .any(|&(t, m)| t == txn && m.covers(mode))
        {
            return true;
        }

        // Upgrade: sole holder asking for exclusive.
        if mode == LockMode::Exclusive && entry.holders.len() == 1 && entry.holders[0].0 == txn {
            entry.holders[0].1 = LockMode::Exclusive;
            st.stats.upgrades += 1;
            return true;
        }

        let compatible_with_holders = entry
            .holders
            .iter()
            .all(|&(t, m)| t == txn || mode.compatible(m));
        if !compatible_with_holders {
            return false;
        }

        // FIFO fairness: a new request may not overtake queued waiters
        // it conflicts with; a queued request is granted only at the
        // front of the conflicting prefix.
        let blocked_by_queue = entry
            .waiters
            .iter()
            .take_while(|&&(t, _)| t != txn)
            .any(|&(t, wmode)| t != txn && (!mode.compatible(wmode) || !wmode.compatible(mode)));
        if blocked_by_queue && !is_queued {
            return false;
        }
        if is_queued {
            // Only grantable if no conflicting waiter precedes us.
            if blocked_by_queue {
                return false;
            }
        }

        entry.holders.push((txn, mode));
        true
    }

    /// Transactions `txn` would wait for on `key`: conflicting holders
    /// plus conflicting earlier waiters.
    fn blockers(st: &LmState, txn: TxnId, key: &str, mode: LockMode) -> HashSet<TxnId> {
        let mut out = HashSet::new();
        if let Some(entry) = st.table.get(key) {
            for &(t, m) in &entry.holders {
                if t != txn && !mode.compatible(m) {
                    out.insert(t);
                }
            }
            // With an upgrade pending, even compatible holders block us.
            if mode == LockMode::Exclusive {
                for &(t, _) in &entry.holders {
                    if t != txn {
                        out.insert(t);
                    }
                }
            }
            for &(t, wmode) in entry.waiters.iter().take_while(|&&(t, _)| t != txn) {
                if t != txn && (!mode.compatible(wmode) || !wmode.compatible(mode)) {
                    out.insert(t);
                }
            }
        }
        out
    }

    fn clear_waiter(st: &mut LmState, txn: TxnId, key: &str) {
        if let Some(entry) = st.table.get_mut(key) {
            entry.waiters.retain(|&(t, _)| t != txn);
        }
        st.waits_for.remove(&txn);
    }

    /// Depth-first search for a cycle through `start` in the wait-for
    /// graph. Returns the cycle path if found.
    fn find_cycle(st: &LmState, start: TxnId) -> Option<Vec<TxnId>> {
        let mut path = vec![start];
        let mut visited = HashSet::new();
        Self::dfs(st, start, start, &mut path, &mut visited)
    }

    fn dfs(
        st: &LmState,
        start: TxnId,
        at: TxnId,
        path: &mut Vec<TxnId>,
        visited: &mut HashSet<TxnId>,
    ) -> Option<Vec<TxnId>> {
        if let Some(nexts) = st.waits_for.get(&at) {
            // BTreeSet-like determinism for tests: sort the frontier.
            let mut nexts: Vec<_> = nexts.iter().copied().collect();
            nexts.sort();
            for n in nexts {
                if n == start {
                    return Some(path.clone());
                }
                if visited.insert(n) {
                    path.push(n);
                    if let Some(c) = Self::dfs(st, start, n, path, visited) {
                        return Some(c);
                    }
                    path.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.acquire(t(1), "k", LockMode::Shared).unwrap();
        lm.acquire(t(2), "k", LockMode::Shared).unwrap();
        assert!(lm.holds(t(1), "k", LockMode::Shared));
        assert!(lm.holds(t(2), "k", LockMode::Shared));
    }

    #[test]
    fn exclusive_covers_shared() {
        let lm = LockManager::new();
        lm.acquire(t(1), "k", LockMode::Exclusive).unwrap();
        assert!(lm.holds(t(1), "k", LockMode::Shared));
        // Re-entrant exclusive is a no-op.
        lm.acquire(t(1), "k", LockMode::Exclusive).unwrap();
        assert_eq!(lm.held_by(t(1)).len(), 1);
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let lm = LockManager::new();
        lm.acquire(t(1), "k", LockMode::Shared).unwrap();
        lm.acquire(t(1), "k", LockMode::Exclusive).unwrap();
        assert!(lm.holds(t(1), "k", LockMode::Exclusive));
        assert_eq!(lm.stats().upgrades, 1);
    }

    #[test]
    fn exclusive_blocks_and_release_unblocks() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(t(1), "k", LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || lm2.acquire(t(2), "k", LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        assert!(!lm.holds(t(2), "k", LockMode::Shared), "t2 still waiting");
        lm.release_all(t(1));
        h.join().unwrap().unwrap();
        assert!(lm.holds(t(2), "k", LockMode::Exclusive));
    }

    #[test]
    fn two_party_deadlock_detected() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(t(1), "a", LockMode::Exclusive).unwrap();
        lm.acquire(t(2), "b", LockMode::Exclusive).unwrap();
        // t1 blocks on b.
        let lm1 = Arc::clone(&lm);
        let h = thread::spawn(move || lm1.acquire(t(1), "b", LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        // t2 requesting a closes the cycle and must be refused.
        let err = lm.acquire(t(2), "a", LockMode::Exclusive).unwrap_err();
        match err {
            LockError::Deadlock { cycle } => assert!(cycle.contains(&t(2))),
        }
        assert_eq!(lm.stats().deadlocks, 1);
        // Breaking the deadlock: t2 aborts, t1 proceeds.
        lm.release_all(t(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn upgrade_deadlock_between_two_readers() {
        // Both hold S; both want X: classic upgrade deadlock. The
        // second requester must be refused.
        let lm = Arc::new(LockManager::new());
        lm.acquire(t(1), "k", LockMode::Shared).unwrap();
        lm.acquire(t(2), "k", LockMode::Shared).unwrap();
        let lm1 = Arc::clone(&lm);
        let h = thread::spawn(move || lm1.acquire(t(1), "k", LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        let err = lm.acquire(t(2), "k", LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, LockError::Deadlock { .. }));
        lm.release_all(t(2));
        h.join().unwrap().unwrap();
        assert!(lm.holds(t(1), "k", LockMode::Exclusive));
    }

    #[test]
    fn fifo_fairness_no_overtaking() {
        // t1 holds X; t2 queues for X; a later S request by t3 must not
        // overtake t2 (it conflicts with the queued X).
        let lm = Arc::new(LockManager::new());
        lm.acquire(t(1), "k", LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let h2 = thread::spawn(move || {
            lm2.acquire(t(2), "k", LockMode::Exclusive).unwrap();
            // Hold briefly so t3 cannot sneak in between.
            thread::sleep(Duration::from_millis(30));
            lm2.release_all(t(2));
        });
        thread::sleep(Duration::from_millis(20));
        let lm3 = Arc::clone(&lm);
        let h3 = thread::spawn(move || {
            lm3.acquire(t(3), "k", LockMode::Shared).unwrap();
            assert!(lm3.holds(t(3), "k", LockMode::Shared));
            lm3.release_all(t(3));
        });
        thread::sleep(Duration::from_millis(20));
        lm.release_all(t(1));
        h2.join().unwrap();
        h3.join().unwrap();
        assert!(lm.stats().waits >= 2);
    }

    #[test]
    fn release_all_clears_table() {
        let lm = LockManager::new();
        lm.acquire(t(1), "a", LockMode::Shared).unwrap();
        lm.acquire(t(1), "b", LockMode::Exclusive).unwrap();
        assert_eq!(lm.held_by(t(1)).len(), 2);
        lm.release_all(t(1));
        assert!(lm.held_by(t(1)).is_empty());
    }

    #[test]
    fn held_by_reports_modes_in_key_order() {
        let lm = LockManager::new();
        lm.acquire(t(1), "z", LockMode::Shared).unwrap();
        lm.acquire(t(1), "a", LockMode::Exclusive).unwrap();
        let held = lm.held_by(t(1));
        let keys: Vec<_> = held.keys().cloned().collect();
        assert_eq!(keys, vec!["a".to_string(), "z".to_string()]);
        assert_eq!(held["a"], LockMode::Exclusive);
        assert_eq!(held["z"], LockMode::Shared);
    }
}
