//! A virtual clock.
//!
//! Everything in this workspace that needs time — deadlines on workflow
//! activities, notification timers, audit timestamps, retry backoff —
//! reads a [`VirtualClock`] instead of the wall clock. Tests advance it
//! explicitly, which makes every execution trace deterministic and lets
//! golden-trace tests (the appendix reproductions) compare timestamps
//! exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A logical timestamp in clock ticks. The unit is deliberately
/// abstract; the engine documents deadlines in ticks.
pub type Tick = u64;

/// A shareable, monotonically non-decreasing virtual clock.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same time.
///
/// ```
/// use txn_substrate::VirtualClock;
/// let clock = VirtualClock::new();
/// assert_eq!(clock.now(), 0);
/// clock.advance(5);
/// let other = clock.clone();
/// assert_eq!(other.now(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    ticks: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at an arbitrary tick (useful when
    /// resuming a recovered engine whose journal records a later time).
    pub fn starting_at(tick: Tick) -> Self {
        Self {
            ticks: Arc::new(AtomicU64::new(tick)),
        }
    }

    /// Current tick.
    pub fn now(&self) -> Tick {
        self.ticks.load(Ordering::Acquire)
    }

    /// Advances the clock by `delta` ticks and returns the new time.
    pub fn advance(&self, delta: Tick) -> Tick {
        self.ticks.fetch_add(delta, Ordering::AcqRel) + delta
    }

    /// Moves the clock forward to `tick` if `tick` is in the future;
    /// the clock never goes backwards. Returns the resulting time.
    pub fn advance_to(&self, tick: Tick) -> Tick {
        let mut cur = self.ticks.load(Ordering::Acquire);
        loop {
            if tick <= cur {
                return cur;
            }
            match self
                .ticks
                .compare_exchange(cur, tick, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return tick,
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.advance(3), 3);
        assert_eq!(c.advance(4), 7);
        assert_eq!(c.now(), 7);
    }

    #[test]
    fn clones_share_time() {
        let c = VirtualClock::new();
        let d = c.clone();
        c.advance(10);
        assert_eq!(d.now(), 10);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = VirtualClock::starting_at(100);
        assert_eq!(c.advance_to(50), 100, "never goes backwards");
        assert_eq!(c.advance_to(150), 150);
        assert_eq!(c.now(), 150);
    }

    #[test]
    fn advance_to_races_settle_at_max() {
        let c = VirtualClock::new();
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                c.advance_to(i * 10);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), 70);
    }
}
