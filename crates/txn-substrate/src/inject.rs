//! Deterministic failure injection.
//!
//! The transaction models reproduced here are *defined by* their
//! response to failure: a saga aborts partway and compensates; a
//! retriable subtransaction "will eventually commit if retried a
//! sufficient number of times"; a pivot either commits or forces a
//! path switch. To test and benchmark those behaviours the substrate
//! must fail **on demand and reproducibly**.
//!
//! An [`Injector`] maps *labels* (usually a program or database name)
//! to [`FailurePlan`]s. Each time a labelled operation reaches its
//! decision point it calls [`Injector::decide`], which counts the
//! attempt and answers *proceed* or *abort*. Plans express every
//! pattern the paper's constructions need:
//!
//! * `FirstN(k)` — fail the first `k` attempts, then succeed: a
//!   **retriable** subtransaction that needs `k` retries.
//! * `Always` — a subtransaction that can never commit (exercises the
//!   alternative-path machinery of flexible transactions).
//! * `OnAttempts{..}` — fail exactly the listed attempts: lets tests
//!   enumerate *every* outcome vector of a transaction exhaustively
//!   (experiment E4).
//! * `Probability{p}` — seeded stochastic failures for the benchmark
//!   sweeps (experiment B3).
//!
//! Stochastic plans are reproducible even under the engine's parallel
//! scheduler: each label owns its **own** random stream, seeded with
//! `seed ⊕ fnv1a(label)`. With one shared generator the decision a
//! label saw would depend on how many draws *other* labels had made
//! first — i.e. on thread interleaving — and `run_all_parallel` would
//! diverge from the sequential run. Per-label streams make a label's
//! k-th draw a pure function of `(seed, label, k)`.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// What a labelled operation should do at its decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureAction {
    /// Carry on normally.
    Proceed,
    /// Unilaterally abort.
    Abort,
}

/// A scripted failure pattern for one label.
#[derive(Debug, Clone, PartialEq)]
pub enum FailurePlan {
    /// Never fail (the default for unknown labels).
    Never,
    /// Fail every attempt.
    Always,
    /// Fail attempts `0..n`, succeed from attempt `n` on.
    FirstN(u32),
    /// Fail exactly the listed attempt numbers (0-based).
    OnAttempts(BTreeSet<u32>),
    /// Fail each attempt independently with probability `p`,
    /// drawn from the injector's seeded generator.
    Probability { p: f64 },
}

/// Legacy alias kept for API symmetry with the engine's crash tests:
/// a crash is modelled as clearing volatile state at a chosen point;
/// the point is identified by a label in the same namespace as abort
/// plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash before the commit record is written (txn is a loser).
    BeforeCommit,
    /// Crash after the commit record is written (txn is a winner).
    AfterCommit,
}

#[derive(Debug)]
struct PlanState {
    plan: FailurePlan,
    attempts: u32,
    /// This label's private random stream (seeded `seed ⊕
    /// fnv1a(label)`), consulted only by `Probability` plans. Keeping
    /// it per label makes stochastic decisions independent of what any
    /// other label draws, so parallel and sequential runs agree.
    rng: StdRng,
}

/// FNV-1a over the label bytes: a stable, dependency-free 64-bit hash
/// (`std`'s `DefaultHasher` is explicitly allowed to change between
/// releases, which would silently reshuffle every seeded benchmark).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A shared, thread-safe failure-injection oracle.
#[derive(Debug)]
pub struct Injector {
    plans: Mutex<HashMap<String, PlanState>>,
    seed: u64,
}

/// Shared handle to an [`Injector`].
pub type InjectorHandle = Arc<Injector>;

impl Injector {
    /// Creates an injector whose stochastic plans draw from per-label
    /// generators derived from `seed` (identical seeds ⇒ identical
    /// runs, regardless of scheduling).
    pub fn new(seed: u64) -> InjectorHandle {
        Arc::new(Self {
            plans: Mutex::new(HashMap::new()),
            seed,
        })
    }

    /// The base seed the per-label streams are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Installs (or replaces) the plan for `label`, resetting its
    /// attempt counter and re-seeding its random stream.
    pub fn set_plan(&self, label: &str, plan: FailurePlan) {
        self.plans.lock().insert(
            label.to_owned(),
            PlanState {
                plan,
                attempts: 0,
                rng: StdRng::seed_from_u64(self.seed ^ fnv1a(label.as_bytes())),
            },
        );
    }

    /// Removes the plan for `label` (it reverts to `Never`).
    pub fn clear_plan(&self, label: &str) {
        self.plans.lock().remove(label);
    }

    /// Consults the plan for `label`, counting this call as one
    /// attempt. Unknown labels always proceed.
    pub fn decide(&self, label: &str) -> FailureAction {
        let mut plans = self.plans.lock();
        let Some(state) = plans.get_mut(label) else {
            return FailureAction::Proceed;
        };
        let attempt = state.attempts;
        state.attempts += 1;
        let fail = match &state.plan {
            FailurePlan::Never => false,
            FailurePlan::Always => true,
            FailurePlan::FirstN(n) => attempt < *n,
            FailurePlan::OnAttempts(set) => set.contains(&attempt),
            FailurePlan::Probability { p } => {
                let p = *p;
                let roll: f64 = state.rng.gen();
                roll < p
            }
        };
        if fail {
            FailureAction::Abort
        } else {
            FailureAction::Proceed
        }
    }

    /// How many attempts `label` has made so far.
    pub fn attempts(&self, label: &str) -> u32 {
        self.plans
            .lock()
            .get(label)
            .map(|s| s.attempts)
            .unwrap_or(0)
    }
}

/// Convenience constructor for [`FailurePlan::OnAttempts`].
pub fn on_attempts<I: IntoIterator<Item = u32>>(attempts: I) -> FailurePlan {
    FailurePlan::OnAttempts(attempts.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_labels_proceed() {
        let inj = Injector::new(0);
        assert_eq!(inj.decide("nope"), FailureAction::Proceed);
        assert_eq!(inj.attempts("nope"), 0);
    }

    #[test]
    fn first_n_models_retriable() {
        let inj = Injector::new(0);
        inj.set_plan("T3", FailurePlan::FirstN(2));
        assert_eq!(inj.decide("T3"), FailureAction::Abort);
        assert_eq!(inj.decide("T3"), FailureAction::Abort);
        assert_eq!(inj.decide("T3"), FailureAction::Proceed);
        assert_eq!(inj.decide("T3"), FailureAction::Proceed);
        assert_eq!(inj.attempts("T3"), 4);
    }

    #[test]
    fn always_fails() {
        let inj = Injector::new(0);
        inj.set_plan("dead", FailurePlan::Always);
        for _ in 0..5 {
            assert_eq!(inj.decide("dead"), FailureAction::Abort);
        }
    }

    #[test]
    fn on_attempts_targets_exact_attempts() {
        let inj = Injector::new(0);
        inj.set_plan("T", on_attempts([1, 3]));
        let pattern: Vec<_> = (0..5).map(|_| inj.decide("T")).collect();
        assert_eq!(
            pattern,
            vec![
                FailureAction::Proceed,
                FailureAction::Abort,
                FailureAction::Proceed,
                FailureAction::Abort,
                FailureAction::Proceed,
            ]
        );
    }

    #[test]
    fn probability_is_seed_deterministic() {
        let run = |seed| {
            let inj = Injector::new(seed);
            inj.set_plan("p", FailurePlan::Probability { p: 0.5 });
            (0..32).map(|_| inj.decide("p")).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42), "same seed, same outcomes");
        assert_ne!(run(42), run(43), "different seeds diverge (w.h.p.)");
    }

    #[test]
    fn set_plan_resets_attempts() {
        let inj = Injector::new(0);
        inj.set_plan("x", FailurePlan::FirstN(1));
        inj.decide("x");
        inj.decide("x");
        assert_eq!(inj.attempts("x"), 2);
        inj.set_plan("x", FailurePlan::FirstN(1));
        assert_eq!(inj.attempts("x"), 0);
        assert_eq!(inj.decide("x"), FailureAction::Abort);
    }

    #[test]
    fn clear_plan_reverts_to_never() {
        let inj = Injector::new(0);
        inj.set_plan("x", FailurePlan::Always);
        assert_eq!(inj.decide("x"), FailureAction::Abort);
        inj.clear_plan("x");
        assert_eq!(inj.decide("x"), FailureAction::Proceed);
    }

    #[test]
    fn probability_streams_are_per_label() {
        // Label "a"'s k-th decision is a pure function of (seed,
        // label, k): interleaving draws on other labels — which is
        // exactly what a parallel scheduler does — must not perturb it.
        let solo = {
            let inj = Injector::new(7);
            inj.set_plan("a", FailurePlan::Probability { p: 0.5 });
            (0..32).map(|_| inj.decide("a")).collect::<Vec<_>>()
        };
        let interleaved = {
            let inj = Injector::new(7);
            inj.set_plan("a", FailurePlan::Probability { p: 0.5 });
            inj.set_plan("b", FailurePlan::Probability { p: 0.5 });
            (0..32)
                .map(|i| {
                    for _ in 0..(i % 3) {
                        inj.decide("b");
                    }
                    inj.decide("a")
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(solo, interleaved, "label streams are independent");
    }

    #[test]
    fn probability_extremes() {
        let inj = Injector::new(1);
        inj.set_plan("zero", FailurePlan::Probability { p: 0.0 });
        inj.set_plan("one", FailurePlan::Probability { p: 1.0 });
        for _ in 0..16 {
            assert_eq!(inj.decide("zero"), FailureAction::Proceed);
            assert_eq!(inj.decide("one"), FailureAction::Abort);
        }
    }
}
