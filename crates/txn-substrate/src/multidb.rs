//! The multidatabase federation.
//!
//! A [`MultiDatabase`] is nothing more than a set of named, fully
//! autonomous [`Database`]s plus the shared plumbing (failure injector
//! and virtual clock). There is deliberately **no** global transaction
//! manager, no two-phase commit and no global lock table: the whole
//! premise of flexible transactions (§4.2 of the paper) is that local
//! sites cannot be coordinated, so global atomicity has to be built
//! *above* them — by sagas, flexible transactions, or (the paper's
//! point) by a workflow process.

use crate::clock::VirtualClock;
use crate::db::{Database, DbConfig};
use crate::inject::{Injector, InjectorHandle};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A federation of autonomous local databases.
#[derive(Debug)]
pub struct MultiDatabase {
    dbs: RwLock<BTreeMap<String, Arc<Database>>>,
    injector: InjectorHandle,
    clock: VirtualClock,
}

impl MultiDatabase {
    /// Creates an empty federation with a fresh injector seeded by
    /// `seed` and a clock at tick 0.
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(Self {
            dbs: RwLock::new(BTreeMap::new()),
            injector: Injector::new(seed),
            clock: VirtualClock::new(),
        })
    }

    /// Creates a federation that shares an existing injector and clock
    /// (so the workflow engine and the databases fail and tick
    /// together).
    pub fn with_shared(injector: InjectorHandle, clock: VirtualClock) -> Arc<Self> {
        Arc::new(Self {
            dbs: RwLock::new(BTreeMap::new()),
            injector,
            clock,
        })
    }

    /// Adds (or replaces) a local database named `name`, wired to the
    /// federation's injector. Returns the database handle.
    pub fn add_database(&self, name: &str) -> Arc<Database> {
        let db = Arc::new(Database::new(
            DbConfig::named(name).with_injector(Arc::clone(&self.injector)),
        ));
        self.dbs.write().insert(name.to_owned(), Arc::clone(&db));
        db
    }

    /// Looks up a database by name.
    pub fn db(&self, name: &str) -> Option<Arc<Database>> {
        self.dbs.read().get(name).cloned()
    }

    /// Names of all member databases, in order.
    pub fn names(&self) -> Vec<String> {
        self.dbs.read().keys().cloned().collect()
    }

    /// The shared failure injector.
    pub fn injector(&self) -> &InjectorHandle {
        &self.injector
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::FailurePlan;

    #[test]
    fn databases_are_independent() {
        let fed = MultiDatabase::new(0);
        let a = fed.add_database("a");
        let b = fed.add_database("b");
        let mut ta = a.begin();
        ta.put("k", 1i64).unwrap();
        ta.commit().unwrap();
        assert_eq!(b.peek("k"), None, "no state leaks between sites");
        assert_eq!(fed.names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn shared_injector_reaches_every_member() {
        let fed = MultiDatabase::new(0);
        let a = fed.add_database("a");
        fed.injector().set_plan("a/commit", FailurePlan::Always);
        let mut t = a.begin();
        t.put("k", 1i64).unwrap();
        assert!(t.commit().is_err(), "member db honours federation plans");
    }

    #[test]
    fn lookup_missing_is_none() {
        let fed = MultiDatabase::new(0);
        assert!(fed.db("ghost").is_none());
    }

    #[test]
    fn one_site_down_does_not_affect_others() {
        let fed = MultiDatabase::new(0);
        let a = fed.add_database("a");
        let b = fed.add_database("b");
        a.set_down(true);
        let mut tb = b.begin();
        tb.put("k", 7i64).unwrap();
        tb.commit().unwrap();
        assert!(a.is_down());
        assert!(!b.is_down());
    }
}
