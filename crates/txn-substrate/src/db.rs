//! One autonomous local database.
//!
//! A [`Database`] bundles the pieces of the classic architecture —
//! [`Storage`] (volatile data),
//! [`LockManager`] (strict 2PL) and
//! [`Wal`] (durable log) — behind a begin/read/write/
//! commit/abort transaction interface.
//!
//! "Autonomous" is load-bearing: each database decides its own fate.
//! It may unilaterally abort any transaction (via a deadlock or an
//! injected failure), it may be *down* (site failure), and it shares
//! no state with any other database. These are the multidatabase
//! assumptions under which flexible transactions were designed and the
//! environment the reproduced paper's workflow processes operate in.

use crate::inject::{FailureAction, InjectorHandle};
use crate::lock::{LockError, LockManager, LockMode, LockStats};
use crate::storage::Storage;
use crate::txn::{Transaction, TxnId, TxnStatus};
use crate::value::Value;
use crate::wal::{LogRecord, Wal};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Errors surfaced by database operations. Any error on an active
/// transaction rolls that transaction back before returning — the
/// caller never has to clean up a half-failed transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Granting a lock would have deadlocked; the transaction aborted.
    Deadlock { txn: TxnId, cycle: Vec<TxnId> },
    /// The database exercised its autonomy and unilaterally aborted
    /// the transaction (scripted by the failure injector).
    InjectedAbort { txn: TxnId, label: String },
    /// The database is down (simulated site failure).
    Unavailable { db: String },
    /// Operation on a handle that is no longer active.
    NotActive { txn: TxnId, status: TxnStatus },
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Deadlock { txn, cycle } => {
                write!(f, "{txn} aborted by deadlock (cycle {cycle:?})")
            }
            DbError::InjectedAbort { txn, label } => {
                write!(f, "{txn} unilaterally aborted (injected at {label:?})")
            }
            DbError::Unavailable { db } => write!(f, "database {db:?} is unavailable"),
            DbError::NotActive { txn, status } => {
                write!(f, "{txn} is not active (status {status:?})")
            }
        }
    }
}

impl std::error::Error for DbError {}

/// Construction-time configuration of a [`Database`].
#[derive(Debug, Default)]
pub struct DbConfig {
    /// Human-readable database name (also the default injection label
    /// prefix for commit-point failures: `"<name>/commit"`).
    pub name: String,
    /// Optional failure injector shared with other components.
    pub injector: Option<InjectorHandle>,
    /// Mirror the WAL to this file (enables recovery across real
    /// process restarts, not just simulated crashes).
    pub wal_path: Option<PathBuf>,
}

impl DbConfig {
    /// Minimal configuration: a named in-memory database, no injection.
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            ..Self::default()
        }
    }

    /// Attaches a failure injector.
    pub fn with_injector(mut self, injector: InjectorHandle) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Mirrors the WAL to `path`.
    pub fn with_wal_file(mut self, path: PathBuf) -> Self {
        self.wal_path = Some(path);
        self
    }
}

/// Operation counters for one database (experiment B8 reads these).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DbStats {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted for any reason.
    pub aborted: u64,
    /// Aborts caused by deadlock.
    pub deadlock_aborts: u64,
    /// Aborts caused by the failure injector.
    pub injected_aborts: u64,
    /// Individual read operations served.
    pub reads: u64,
    /// Individual write operations applied.
    pub writes: u64,
}

/// One autonomous local database of the federation.
///
/// ```
/// use txn_substrate::{Database, DbConfig, Value};
///
/// let db = Database::new(DbConfig::named("bank"));
/// let mut txn = db.begin();
/// txn.put("alice", 100i64).unwrap();
/// txn.put("bob", 50i64).unwrap();
/// txn.commit().unwrap();
///
/// // Crash and recover from the write-ahead log.
/// db.crash();
/// db.recover();
/// assert_eq!(db.peek("alice"), Some(Value::Int(100)));
/// ```
#[derive(Debug)]
pub struct Database {
    name: String,
    storage: Storage,
    locks: LockManager,
    wal: Wal,
    next_txn: AtomicU64,
    injector: Option<InjectorHandle>,
    down: AtomicBool,
    stats: Mutex<DbStats>,
}

impl Database {
    /// Creates a database from `config`.
    ///
    /// # Panics
    /// Panics if a WAL file was requested but cannot be opened — a
    /// database that cannot log must not start.
    pub fn new(config: DbConfig) -> Self {
        let wal = match &config.wal_path {
            Some(path) => Wal::with_file(path).expect("cannot open WAL file"),
            None => Wal::new(),
        };
        Self {
            name: config.name,
            storage: Storage::new(),
            locks: LockManager::new(),
            wal,
            next_txn: AtomicU64::new(1),
            injector: config.injector,
            down: AtomicBool::new(false),
            stats: Mutex::new(DbStats::default()),
        }
    }

    /// This database's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Begins a new transaction.
    pub fn begin(&self) -> Transaction<'_> {
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
        self.wal.append(LogRecord::Begin { txn: id });
        self.stats.lock().begun += 1;
        Transaction {
            db: self,
            id,
            status: TxnStatus::Active,
        }
    }

    /// Marks the database down (every operation fails with
    /// [`DbError::Unavailable`]) or back up.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Release);
    }

    /// True if the database is currently down.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    /// Simulates losing volatile memory: the store is cleared; the WAL
    /// survives. In-flight transactions become losers (no commit
    /// record). Callers must ensure no transaction is concurrently
    /// active on another thread — exactly the quiescence a real
    /// restart implies.
    pub fn crash(&self) {
        self.storage.clear();
        self.down.store(true, Ordering::Release);
    }

    /// Recovers after [`Database::crash`]: rebuilds the store by
    /// redoing committed transactions from the WAL (starting at the
    /// last checkpoint, if any) and brings the database back up.
    /// Returns the number of updates replayed.
    pub fn recover(&self) -> usize {
        self.storage.clear();
        let replayed = self.wal.replay_committed(&self.storage);
        self.down.store(false, Ordering::Release);
        replayed
    }

    /// Writes a checkpoint capturing the complete committed state and
    /// compacts the log, bounding recovery time (experiment B5's
    /// replay cost is linear in post-checkpoint log length). The
    /// caller must ensure no transaction is active — the same
    /// quiescence a crash-consistent snapshot needs. Returns the
    /// number of log records dropped by compaction.
    pub fn checkpoint(&self) -> usize {
        let state: Vec<(String, Value)> = self.storage.snapshot().into_iter().collect();
        self.wal.append(LogRecord::Checkpoint { state });
        self.wal.compact()
    }

    /// A point-in-time copy of committed state (keys in order).
    /// Only meaningful when no writer is concurrently active.
    pub fn snapshot(&self) -> BTreeMap<String, Value> {
        self.storage.snapshot()
    }

    /// Non-transactional read of current state. Intended for tests and
    /// audit dumps; regular code should use a transaction.
    pub fn peek(&self, key: &str) -> Option<Value> {
        self.storage.get(key)
    }

    /// Operation counters.
    pub fn stats(&self) -> DbStats {
        *self.stats.lock()
    }

    /// Lock-manager counters.
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// WAL append/flush counters.
    pub fn wal_stats(&self) -> crate::wal::WalStats {
        self.wal.stats()
    }

    /// Full WAL copy (audit/tests).
    pub fn wal_records(&self) -> Vec<LogRecord> {
        self.wal.records()
    }

    fn check_up(&self) -> Result<(), DbError> {
        if self.is_down() {
            Err(DbError::Unavailable {
                db: self.name.clone(),
            })
        } else {
            Ok(())
        }
    }

    pub(crate) fn txn_get(&self, txn: TxnId, key: &str) -> Result<Option<Value>, DbError> {
        if let Err(e) = self.check_up() {
            self.txn_abort(txn);
            return Err(e);
        }
        match self.locks.acquire(txn, key, LockMode::Shared) {
            Ok(()) => {
                self.stats.lock().reads += 1;
                Ok(self.storage.get(key))
            }
            Err(LockError::Deadlock { cycle }) => {
                self.txn_abort(txn);
                self.stats.lock().deadlock_aborts += 1;
                Err(DbError::Deadlock { txn, cycle })
            }
        }
    }

    pub(crate) fn txn_put(
        &self,
        txn: TxnId,
        key: &str,
        value: Option<Value>,
    ) -> Result<(), DbError> {
        if let Err(e) = self.check_up() {
            self.txn_abort(txn);
            return Err(e);
        }
        match self.locks.acquire(txn, key, LockMode::Exclusive) {
            Ok(()) => {
                // WAL rule: log before applying.
                let before = self.storage.get(key);
                self.wal.append(LogRecord::Update {
                    txn,
                    key: key.to_owned(),
                    before: before.clone(),
                    after: value.clone(),
                });
                self.storage.apply(key, value);
                self.stats.lock().writes += 1;
                Ok(())
            }
            Err(LockError::Deadlock { cycle }) => {
                self.txn_abort(txn);
                self.stats.lock().deadlock_aborts += 1;
                Err(DbError::Deadlock { txn, cycle })
            }
        }
    }

    pub(crate) fn txn_commit(&self, txn: TxnId) -> Result<(), DbError> {
        if let Err(e) = self.check_up() {
            self.txn_abort(txn);
            return Err(e);
        }
        // The commit point is where local autonomy bites: the database
        // may refuse the commit even though every operation succeeded.
        if let Some(inj) = &self.injector {
            let label = format!("{}/commit", self.name);
            if inj.decide(&label) == FailureAction::Abort {
                self.txn_abort(txn);
                self.stats.lock().injected_aborts += 1;
                return Err(DbError::InjectedAbort { txn, label });
            }
        }
        self.wal.append(LogRecord::Commit { txn });
        self.locks.release_all(txn);
        self.stats.lock().committed += 1;
        Ok(())
    }

    pub(crate) fn txn_abort(&self, txn: TxnId) {
        // Undo in place: restore before-images in reverse log order.
        let updates = self.wal.updates_of(txn);
        for (key, before) in updates.into_iter().rev() {
            self.storage.apply(&key, before);
        }
        self.wal.append(LogRecord::Abort { txn });
        self.locks.release_all(txn);
        self.stats.lock().aborted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{FailurePlan, Injector};
    use std::sync::Arc;

    #[test]
    fn commit_makes_writes_visible() {
        let db = Database::new(DbConfig::named("bank"));
        let mut t = db.begin();
        t.put("alice", 100i64).unwrap();
        t.put("bob", 50i64).unwrap();
        t.commit().unwrap();
        assert_eq!(db.peek("alice"), Some(Value::Int(100)));
        assert_eq!(db.stats().committed, 1);
        assert_eq!(db.stats().writes, 2);
    }

    #[test]
    fn abort_restores_before_images_in_reverse() {
        let db = Database::new(DbConfig::named("d"));
        let mut seed = db.begin();
        seed.put("k", 1i64).unwrap();
        seed.commit().unwrap();

        let mut t = db.begin();
        t.put("k", 2i64).unwrap();
        t.put("k", 3i64).unwrap();
        t.abort();
        assert_eq!(db.peek("k"), Some(Value::Int(1)));
    }

    #[test]
    fn injected_commit_abort_rolls_back() {
        let inj = Injector::new(0);
        inj.set_plan("flaky/commit", FailurePlan::FirstN(1));
        let db = Database::new(DbConfig::named("flaky").with_injector(Arc::clone(&inj)));

        let mut t = db.begin();
        t.put("k", 1i64).unwrap();
        let err = t.commit().unwrap_err();
        assert!(matches!(err, DbError::InjectedAbort { .. }));
        assert_eq!(db.peek("k"), None);
        assert_eq!(db.stats().injected_aborts, 1);

        // Retry succeeds: the retriable pattern.
        let mut t2 = db.begin();
        t2.put("k", 1i64).unwrap();
        t2.commit().unwrap();
        assert_eq!(db.peek("k"), Some(Value::Int(1)));
    }

    #[test]
    fn unavailable_database_fails_and_rolls_back() {
        let db = Database::new(DbConfig::named("remote"));
        let mut t = db.begin();
        t.put("k", 1i64).unwrap();
        db.set_down(true);
        let err = t.put("k2", 2i64).unwrap_err();
        assert!(matches!(err, DbError::Unavailable { .. }));
        db.set_down(false);
        assert_eq!(db.peek("k"), None, "partial work undone");
    }

    #[test]
    fn crash_then_recover_rebuilds_committed_state() {
        let db = Database::new(DbConfig::named("d"));
        let mut t1 = db.begin();
        t1.put("a", 1i64).unwrap();
        t1.commit().unwrap();
        let mut t2 = db.begin();
        t2.put("b", 2i64).unwrap();
        // t2 is in flight at the crash: it must not survive.
        std::mem::forget(t2); // simulate losing the handle in the crash
        db.crash();
        assert!(db.is_down());
        let replayed = db.recover();
        assert_eq!(replayed, 1);
        assert_eq!(db.peek("a"), Some(Value::Int(1)));
        assert_eq!(db.peek("b"), None);
    }

    #[test]
    fn checkpoint_bounds_recovery_and_preserves_state() {
        let db = Database::new(DbConfig::named("d"));
        for i in 0..20i64 {
            let mut t = db.begin();
            t.put(&format!("k{}", i % 5), i).unwrap();
            t.commit().unwrap();
        }
        let before = db.snapshot();
        let records_before = db.wal_records().len();
        let dropped = db.checkpoint();
        assert!(dropped > 0);
        assert!(db.wal_records().len() < records_before);

        // Recovery from the compacted log reproduces the state.
        db.crash();
        let replayed = db.recover();
        assert_eq!(db.snapshot(), before);
        assert_eq!(replayed, 5, "one install per live key, no redo tail");

        // Post-checkpoint updates are redone on top of the checkpoint.
        let mut t = db.begin();
        t.put("k0", 999i64).unwrap();
        t.commit().unwrap();
        db.crash();
        db.recover();
        assert_eq!(db.peek("k0"), Some(Value::Int(999)));
        assert_eq!(db.peek("k4"), before.get("k4").cloned());
    }

    #[test]
    fn checkpoint_on_empty_db_is_harmless() {
        let db = Database::new(DbConfig::named("d"));
        assert_eq!(db.checkpoint(), 0);
        db.crash();
        assert_eq!(db.recover(), 0);
        assert!(db.snapshot().is_empty());
    }

    #[test]
    fn recover_is_idempotent() {
        let db = Database::new(DbConfig::named("d"));
        let mut t = db.begin();
        t.put("a", 1i64).unwrap();
        t.commit().unwrap();
        db.crash();
        db.recover();
        let snap1 = db.snapshot();
        db.crash();
        db.recover();
        assert_eq!(db.snapshot(), snap1);
    }

    #[test]
    fn two_txns_serialize_on_conflict() {
        let db = Arc::new(Database::new(DbConfig::named("d")));
        let mut t0 = db.begin();
        t0.put("x", 0i64).unwrap();
        t0.commit().unwrap();

        let db2 = Arc::clone(&db);
        // Writer increments x by 1, 50 times, each in its own txn, on
        // two threads: final value must be 100 (lost updates would
        // show less).
        let work = move |db: Arc<Database>| {
            for _ in 0..50 {
                loop {
                    let mut t = db.begin();
                    let cur = match t.get("x") {
                        Ok(v) => v.and_then(|v| v.as_int()).unwrap_or(0),
                        Err(_) => continue, // deadlock: retry
                    };
                    if t.put("x", cur + 1).is_err() {
                        continue;
                    }
                    if t.commit().is_ok() {
                        break;
                    }
                }
            }
        };
        let h = std::thread::spawn(move || work(db2));
        {
            let db3 = Arc::clone(&db);
            work(db3);
        }
        h.join().unwrap();
        assert_eq!(db.peek("x"), Some(Value::Int(100)));
    }

    #[test]
    fn deadlock_error_carries_txn() {
        let db = Arc::new(Database::new(DbConfig::named("d")));
        let mut seed = db.begin();
        seed.put("a", 0i64).unwrap();
        seed.put("b", 0i64).unwrap();
        seed.commit().unwrap();

        let db2 = Arc::clone(&db);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let b2 = Arc::clone(&barrier);
        let h = std::thread::spawn(move || {
            let mut t = db2.begin();
            t.put("a", 1i64).unwrap();
            b2.wait();
            // May deadlock against the main thread; either outcome ok.
            let _ = t.put("b", 1i64);
            let _ = t.commit();
        });
        let mut t = db.begin();
        t.put("b", 2i64).unwrap();
        barrier.wait();
        let res = t.put("a", 2i64);
        // One of the two gets a deadlock; at least the system makes
        // progress and both threads finish.
        if let Err(e) = res {
            assert!(matches!(e, DbError::Deadlock { .. }));
        } else {
            let _ = t.commit();
        }
        h.join().unwrap();
    }
}
