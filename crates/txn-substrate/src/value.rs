//! The value type stored in local databases.
//!
//! Subtransactions in the reproduced paper manipulate ordinary database
//! state; the constructions only require that state changes are atomic,
//! loggable (before/after images) and comparable. A small tagged value
//! covers everything the examples, tests and benchmarks need.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A database value: the unit read and written by transactions.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer (account balances, counters, quantities).
    Int(i64),
    /// UTF-8 string (names, status fields).
    Str(String),
    /// Boolean flag.
    Bool(bool),
    /// Raw bytes (opaque payloads).
    Bytes(Vec<u8>),
}

impl Value {
    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the raw-bytes payload, if this is `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(vec![1u8, 2]).as_bytes(), Some(&[1u8, 2][..]));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("a b").to_string(), "\"a b\"");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::Bytes(vec![0; 4]).to_string(), "<4 bytes>");
    }

    #[test]
    fn serde_round_trip() {
        for v in [
            Value::Int(42),
            Value::from("hello"),
            Value::Bool(true),
            Value::Bytes(vec![9, 8, 7]),
        ] {
            let json = serde_json::to_string(&v).unwrap();
            let back: Value = serde_json::from_str(&json).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn ordering_is_total_within_variant() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::from("a") < Value::from("b"));
    }
}
