//! Durability policies for file-mirrored logs.
//!
//! Both logs in this workspace — the database [`Wal`](crate::Wal) and
//! the engine journal (`wfms_engine::Journal`) — are JSON-lines files
//! behind a `BufWriter`. *When* the buffered bytes actually reach the
//! file (and the disk) is a policy decision with a real trade-off:
//! flushing more often narrows the window of work lost in a crash,
//! syncing pushes the durability point through the OS page cache at a
//! per-event `fdatasync` cost, and batching amortises both over group
//! commits the way high-throughput WAL implementations do.
//!
//! The torn-tail semantics documented on the reopen paths
//! ([`read_json_lines`]) hold under every policy: a crash can leave at
//! most one partially written record at the end of the file, and
//! reopen truncates it. What the policy changes is how many *complete*
//! records may be lost (`PerEvent`/`PerEventSync`: none that the
//! appender returned from; `Batched { n }`: up to `n - 1`).

use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufWriter, Write};

/// When a file-mirrored log makes appended records durable.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DurabilityPolicy {
    /// Flush the writer to the OS after every append. A process crash
    /// loses nothing that was appended; an OS crash may lose records
    /// still in the page cache. This is the default and what the
    /// recovery tests' notion of "crash after event *k*" assumes.
    #[default]
    PerEvent,
    /// Flush **and** `fdatasync` after every append: the record is on
    /// stable storage before the append returns. Survives OS/power
    /// failure at the cost of a sync per event.
    PerEventSync,
    /// Group commit: flush once every `n` appends (and at forced
    /// barriers such as transaction commit records or an explicit
    /// [`crate::Wal::flush`]). Up to `n - 1` trailing records may be
    /// lost in a crash; throughput-oriented sweeps use this.
    Batched {
        /// Flush interval in appended records (`0` is treated as `1`).
        n: usize,
    },
}

/// A `BufWriter<File>` plus the policy state deciding when to flush
/// and sync. Shared by the WAL and (re-exported) the engine journal.
#[derive(Debug)]
pub struct DurableWriter {
    writer: BufWriter<File>,
    policy: DurabilityPolicy,
    /// Appends since the last flush (only meaningful for `Batched`).
    pending: usize,
}

impl DurableWriter {
    /// Wraps `file` (positioned at its end, append mode) under `policy`.
    pub fn new(file: File, policy: DurabilityPolicy) -> Self {
        Self {
            writer: BufWriter::new(file),
            policy,
            pending: 0,
        }
    }

    /// The policy this writer enforces.
    pub fn policy(&self) -> DurabilityPolicy {
        self.policy
    }

    /// Writes one record line. `barrier` forces a flush regardless of
    /// policy (commit records; journal callers pass `false`). Returns
    /// any I/O error without panicking — callers decide whether a log
    /// that cannot be written is fatal.
    pub fn append_line(&mut self, line: &str, barrier: bool) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.pending += 1;
        let flush_now = barrier
            || match self.policy {
                DurabilityPolicy::PerEvent | DurabilityPolicy::PerEventSync => true,
                DurabilityPolicy::Batched { n } => self.pending >= n.max(1),
            };
        if flush_now {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes a pre-assembled chunk of `records` newline-terminated
    /// record lines in one `write_all` — the group-commit form of
    /// [`DurableWriter::append_line`]. The policy sees `records`
    /// appends; `barrier` forces a flush at the chunk end regardless
    /// of policy.
    pub fn append_chunk(
        &mut self,
        chunk: &str,
        records: usize,
        barrier: bool,
    ) -> std::io::Result<()> {
        self.writer.write_all(chunk.as_bytes())?;
        self.pending += records;
        let flush_now = barrier
            || match self.policy {
                DurabilityPolicy::PerEvent | DurabilityPolicy::PerEventSync => true,
                DurabilityPolicy::Batched { n } => self.pending >= n.max(1),
            };
        if flush_now {
            self.flush()?;
        }
        Ok(())
    }

    /// Flushes buffered lines to the OS (and to disk under
    /// `PerEventSync`).
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        self.pending = 0;
        if self.policy == DurabilityPolicy::PerEventSync {
            self.writer.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Replaces the underlying file (after an atomic rewrite swapped a
    /// new file into place). Pending policy state resets.
    pub fn replace_file(&mut self, file: File) {
        self.writer = BufWriter::new(file);
        self.pending = 0;
    }

    /// The underlying file, flushing buffered lines first.
    pub fn file_mut(&mut self) -> std::io::Result<&mut File> {
        self.writer.flush()?;
        self.pending = 0;
        Ok(self.writer.get_mut())
    }
}

/// A cloneable capture of the first I/O error a log mirror hit.
///
/// `std::io::Error` is not `Clone`, but the sticky-error pattern the
/// logs use ("remember the first failure, keep serving from memory,
/// surface the failure at the API boundary") needs to hand the error
/// out repeatedly — so the kind and rendered message are kept instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirrorError {
    /// The `ErrorKind` of the original error.
    pub kind: std::io::ErrorKind,
    /// Rendered message of the original error, with context.
    pub message: String,
}

impl MirrorError {
    /// Captures `err` with a short `context` ("append", "compact", …).
    pub fn new(context: &str, err: &std::io::Error) -> Self {
        Self {
            kind: err.kind(),
            message: format!("log mirror {context} failed: {err}"),
        }
    }
}

impl std::fmt::Display for MirrorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for MirrorError {}

/// What the reopen path found at the end of an existing log file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TailReport {
    /// Complete records loaded.
    pub records: usize,
    /// A torn (partially written) final record was found and truncated
    /// away: its byte offset and the prefix that was discarded.
    pub torn_tail: Option<TornTail>,
}

/// Diagnostic describing a truncated torn tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset at which the file was truncated.
    pub offset: u64,
    /// The discarded partial line (for the recovery log).
    pub discarded: String,
}

/// Reads a JSON-lines log file, tolerating a **torn tail**: if the
/// *final* line fails to parse (a crash interrupted an append), the
/// file is truncated back to the end of the last complete record and
/// reopen succeeds — recovery must work exactly when it is needed. A
/// parse failure on any *non-final* line is mid-file corruption, which
/// no amount of truncation can repair, and is still an
/// [`InvalidData`](std::io::ErrorKind::InvalidData) error (naming the
/// line number).
///
/// A final line that parses but lacks its trailing newline (the crash
/// hit between the record bytes and the `\n`) is kept; the missing
/// newline is re-written so subsequent appends don't fuse with it.
pub fn read_json_lines<T: serde::Deserialize>(
    path: &std::path::Path,
) -> std::io::Result<(Vec<T>, TailReport)> {
    let bytes = std::fs::read(path)?;
    let mut records = Vec::new();
    let mut report = TailReport::default();
    let mut offset = 0usize; // start of the current line
    let mut needs_newline_fix = false;
    let mut lines = bytes.split_inclusive(|&b| b == b'\n').peekable();
    let mut line_no = 0usize;
    while let Some(raw) = lines.next() {
        line_no += 1;
        let is_last = lines.peek().is_none();
        let line_len = raw.len();
        let line = match std::str::from_utf8(raw) {
            Ok(s) => s.trim_end_matches('\n').trim(),
            Err(_) if is_last => {
                // Torn mid-UTF-8: treat as a torn tail below.
                report.torn_tail = Some(TornTail {
                    offset: offset as u64,
                    discarded: String::from_utf8_lossy(raw).into_owned(),
                });
                break;
            }
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("corrupt record at line {line_no}: {e}"),
                ))
            }
        };
        if line.is_empty() {
            offset += line_len;
            continue;
        }
        match serde_json::from_str::<T>(line) {
            Ok(rec) => {
                records.push(rec);
                if is_last && !raw.ends_with(b"\n") {
                    needs_newline_fix = true;
                }
            }
            Err(_) if is_last => {
                report.torn_tail = Some(TornTail {
                    offset: offset as u64,
                    discarded: line.to_owned(),
                });
            }
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("corrupt record at line {line_no}: {e}"),
                ))
            }
        }
        offset += line_len;
    }
    if let Some(tail) = &report.torn_tail {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(tail.offset)?;
        f.sync_data()?;
    } else if needs_newline_fix {
        let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
        f.write_all(b"\n")?;
        f.sync_data()?;
    }
    report.records = records.len();
    Ok((records, report))
}

/// Atomically rewrites the log at `path` with `lines`: writes a
/// sibling temp file, syncs it, and renames it over the original —
/// a crash during compaction leaves either the old complete file or
/// the new complete file, never a half-rewritten one. Returns the
/// reopened (append-positioned) file.
pub fn atomic_rewrite(
    path: &std::path::Path,
    lines: impl Iterator<Item = String>,
) -> std::io::Result<File> {
    let tmp_path = path.with_extension("rewrite-tmp");
    {
        let mut tmp = BufWriter::new(File::create(&tmp_path)?);
        for line in lines {
            tmp.write_all(line.as_bytes())?;
            tmp.write_all(b"\n")?;
        }
        tmp.flush()?;
        tmp.get_ref().sync_data()?;
    }
    std::fs::rename(&tmp_path, path)?;
    std::fs::OpenOptions::new().append(true).open(path)
}

/// Convenience used by tests and the reopen paths: does the reader
/// side consider this line a complete record?
pub fn is_complete_record<T: serde::Deserialize>(line: &str) -> bool {
    serde_json::from_str::<T>(line.trim()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wftx-durability-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = tmp_dir("torn");
        let path = dir.join("log");
        std::fs::write(&path, "1\n2\n{\"truncat").unwrap();
        let (recs, report) = read_json_lines::<i64>(&path).unwrap();
        assert_eq!(recs, vec![1, 2]);
        let tail = report.torn_tail.expect("tail reported");
        assert_eq!(tail.offset, 4);
        assert_eq!(tail.discarded, "{\"truncat");
        // The file itself was repaired: a second reopen is clean.
        let (recs2, report2) = read_json_lines::<i64>(&path).unwrap();
        assert_eq!(recs2, vec![1, 2]);
        assert!(report2.torn_tail.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_final_newline_is_repaired() {
        let dir = tmp_dir("nl");
        let path = dir.join("log");
        std::fs::write(&path, "1\n2").unwrap();
        let (recs, report) = read_json_lines::<i64>(&path).unwrap();
        assert_eq!(recs, vec![1, 2]);
        assert!(report.torn_tail.is_none());
        let mut s = String::new();
        File::open(&path).unwrap().read_to_string(&mut s).unwrap();
        assert_eq!(s, "1\n2\n", "newline restored so appends don't fuse");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_still_errors() {
        let dir = tmp_dir("mid");
        let path = dir.join("log");
        std::fs::write(&path, "1\n{\"bad\n3\n").unwrap();
        let err = read_json_lines::<i64>(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_policy_defers_flush() {
        let dir = tmp_dir("batch");
        let path = dir.join("log");
        let file = File::create(&path).unwrap();
        let mut w = DurableWriter::new(file, DurabilityPolicy::Batched { n: 3 });
        w.append_line("1", false).unwrap();
        w.append_line("2", false).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"", "still buffered");
        w.append_line("3", false).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"1\n2\n3\n", "group flushed");
        w.append_line("4", true).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"1\n2\n3\n4\n",
            "barrier flushes"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_rewrite_replaces_contents() {
        let dir = tmp_dir("rewrite");
        let path = dir.join("log");
        std::fs::write(&path, "1\n2\n3\n").unwrap();
        let mut f = atomic_rewrite(&path, ["9".to_owned()].into_iter()).unwrap();
        use std::io::Write as _;
        writeln!(f, "10").unwrap();
        let (recs, _) = read_json_lines::<i64>(&path).unwrap();
        assert_eq!(recs, vec![9, 10], "rewritten file accepts appends");
        assert!(!dir.join("log.rewrite-tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn per_event_sync_policy_syncs_every_append() {
        let dir = tmp_dir("sync");
        let path = dir.join("log");
        let file = File::create(&path).unwrap();
        let mut w = DurableWriter::new(file, DurabilityPolicy::PerEventSync);
        w.append_line("42", false).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"42\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
