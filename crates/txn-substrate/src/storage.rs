//! In-memory key/value storage for one local database.
//!
//! Transactions update the store **in place** while holding exclusive
//! locks (classic strict-2PL with before-image undo); the store itself
//! is therefore a plain map with no transaction awareness. Atomicity
//! and isolation live in [`crate::txn`] and [`crate::lock`]; durability
//! lives in [`crate::wal`].

use crate::value::Value;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// The record key type. `String` keys keep examples and traces
/// readable; the substrate is not performance-critical enough to
/// justify interned keys.
pub type Key = String;

/// A thread-safe in-memory key/value store.
///
/// A `BTreeMap` (rather than a hash map) keeps iteration order — and
/// therefore every dump, trace and test fixture — deterministic.
#[derive(Debug, Default)]
pub struct Storage {
    map: RwLock<BTreeMap<Key, Value>>,
}

impl Storage {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<Value> {
        self.map.read().get(key).cloned()
    }

    /// Writes `value` under `key`, returning the previous value
    /// (the before-image the caller must log for undo).
    pub fn set(&self, key: &str, value: Value) -> Option<Value> {
        self.map.write().insert(key.to_owned(), value)
    }

    /// Removes `key`, returning the removed value if it existed.
    pub fn remove(&self, key: &str) -> Option<Value> {
        self.map.write().remove(key)
    }

    /// Applies a logical write: `Some(v)` stores `v`, `None` deletes.
    /// Returns the before-image. This is the single primitive both
    /// forward execution and undo/redo use, which guarantees that
    /// recovery applies exactly the same state transitions as normal
    /// operation.
    pub fn apply(&self, key: &str, value: Option<Value>) -> Option<Value> {
        match value {
            Some(v) => self.set(key, v),
            None => self.remove(key),
        }
    }

    /// True if the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// A point-in-time copy of the whole store, in key order. Used by
    /// tests to compare pre/post states and by the recovery tests to
    /// check that a rebuilt database equals the lost one.
    pub fn snapshot(&self) -> BTreeMap<Key, Value> {
        self.map.read().clone()
    }

    /// Drops every record (simulates losing volatile memory in a
    /// crash; the WAL survives and recovery rebuilds the map).
    pub fn clear(&self) {
        self.map.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let s = Storage::new();
        assert_eq!(s.get("a"), None);
        assert_eq!(s.set("a", Value::Int(1)), None);
        assert_eq!(s.get("a"), Some(Value::Int(1)));
        assert_eq!(s.set("a", Value::Int(2)), Some(Value::Int(1)));
        assert_eq!(s.remove("a"), Some(Value::Int(2)));
        assert_eq!(s.get("a"), None);
        assert!(s.is_empty());
    }

    #[test]
    fn apply_returns_before_image() {
        let s = Storage::new();
        assert_eq!(s.apply("k", Some(Value::Int(1))), None);
        assert_eq!(s.apply("k", Some(Value::Int(2))), Some(Value::Int(1)));
        assert_eq!(s.apply("k", None), Some(Value::Int(2)));
        assert_eq!(s.apply("k", None), None);
    }

    #[test]
    fn snapshot_is_ordered_and_detached() {
        let s = Storage::new();
        s.set("b", Value::Int(2));
        s.set("a", Value::Int(1));
        let snap = s.snapshot();
        assert_eq!(
            snap.keys().cloned().collect::<Vec<_>>(),
            vec!["a".to_string(), "b".to_string()]
        );
        s.set("a", Value::Int(99));
        assert_eq!(
            snap["a"],
            Value::Int(1),
            "snapshot unaffected by later writes"
        );
    }

    #[test]
    fn clear_empties() {
        let s = Storage::new();
        s.set("x", Value::Bool(true));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
