//! Deterministic crash-point sweep — the standing oracle for §3.3's
//! "forward recovery is always guaranteed".
//!
//! The paper's claim is universally quantified: *wherever* the engine
//! dies, recovery resumes the process from that point. Sampling a few
//! crash sites (as the step-granularity tests in `recovery_e2e.rs` do)
//! cannot establish that; in the spirit of the model-checking
//! approaches to transactional workflows, the sweep **enumerates every
//! failure point** instead. For each prefix length `k` of a reference
//! run's journal it simulates a crash that preserved exactly the first
//! `k` events (optionally plus a torn half-written event `k+1`),
//! recovers with [`crate::recovery::recover`], resumes to quiescence,
//! and requires the recovered run to be indistinguishable from the
//! uncrashed one. The crash kills the *engine*; the journal file and
//! the federation's databases are durable and survive (§2.1's
//! autonomous local systems), so each crash point re-runs the process
//! on its own world with a file journal, drops the engine, truncates
//! the journal to the `k`-event prefix, and recovers in place.
//! Indistinguishable means:
//!
//! * every instance whose `InstanceStarted` survived reaches the same
//!   final status and process output;
//! * the journal's first `k` events are untouched (recovery never
//!   rewrites history);
//! * the events appended after recovery equal the reference run's
//!   suffix, modulo **re-dispatch duplicates**: an activity that was
//!   mid-execution at the crash is re-executed from the beginning
//!   (§3.3's explicit caveat), so its `ActivityReady`/`ActivityStarted`
//!   may be journalled a second time at the same `(path, attempt)` —
//!   those repeats are filtered before comparing, and nothing else is;
//! * the final contents of every database in the federation match —
//!   resumption may re-apply idempotent writes, never different ones.
//!
//! Scope: the plain [`sweep`] drives **automatic** activities (the
//! appendix fixtures and the property-test DAGs are fully automatic);
//! [`sweep_with_script`] additionally covers operator actions —
//! template deploys, live migrations and manual work-item completions
//! scripted into its drive/resume closures, with work-item re-offers
//! after a crash filtered as re-dispatch duplicates (a reset manual
//! activity is re-offered under a fresh item id at the same attempt).
//! Failure plans consulted by programs must be
//! attempt-insensitive (`Always`/`Never`/probability with a fixed
//! decision per label): re-execution legitimately consumes extra
//! injector attempts, exactly as a real re-run would.
//!
//! Instances whose start event was lost are gone entirely — there is
//! nothing durable to recover them *from*; a client would resubmit.
//! The sweep checks that they are cleanly absent, not half-present.

use crate::engine::EngineConfig;
use crate::event::{Event, InstanceId};
use crate::org::OrgModel;
use crate::recovery;
use crate::state::InstanceStatus;
use serde::Serialize;
use std::collections::{BTreeMap, HashSet};
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramRegistry};
use wfms_model::{Container, ProcessDefinition};

/// A factory producing a **fresh, identically-configured world** —
/// federation (databases populated, injector plans installed) and
/// program registry — for the reference run and for every crash
/// point. Worlds must be deterministic: same factory, same behaviour.
pub type WorldFactory<'a> = dyn Fn() -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) + 'a;

/// A scripted run for [`sweep_with_script`]: how to drive the
/// reference run and how to resume a recovered engine. The plain
/// [`sweep`] covers fully automatic processes; scenarios with
/// *operator actions* — deploys, migrations, work-item completions —
/// need both halves scripted.
pub struct SweepScript<'a> {
    /// Drives a freshly built engine end to end: register templates,
    /// start instances, perform operator actions, run to quiescence.
    /// Returns the instance ids whose final status/output the sweep
    /// compares. Must be deterministic.
    pub drive: &'a dyn Fn(&crate::Engine) -> Result<Vec<InstanceId>, String>,
    /// Brings a *recovered* engine to the reference run's end state.
    /// Called after recovery at **every** crash point, so each step
    /// must be idempotent with respect to what the journal prefix
    /// already holds: re-registering an already-deployed version is a
    /// no-op, re-migrating an already-migrated instance answers
    /// `AlreadyCurrent`, and completions must skip items the prefix
    /// already closed. The canonical shape re-drives the same operator
    /// sequence as `drive`, guarded per step.
    pub resume: &'a dyn Fn(&crate::Engine) -> Result<(), String>,
    /// Organization model installed in every engine the sweep builds —
    /// the reference run, each pre-crash run and each recovered engine.
    /// Scenarios that park on manual work items need the same people
    /// on both sides of the crash, or post-recovery re-offers resolve
    /// against an empty org and the resumption diverges.
    pub org: OrgModel,
}

/// Sweep options.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Additionally write a torn (half-serialized, newline-less) copy
    /// of event `k+1` after each `k`-event prefix, exercising the
    /// torn-tail truncation on every reopen.
    pub torn_tail: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { torn_tail: true }
    }
}

/// Outcome of one simulated crash point.
#[derive(Debug, Clone, Serialize)]
pub struct CrashPointResult {
    /// Number of journal events that survived the crash.
    pub k: usize,
    /// Recovery reproduced the reference run.
    pub ok: bool,
    /// First divergence, empty when `ok`.
    pub detail: String,
}

/// Outcome of a full sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Caller-supplied label (process/fixture name).
    pub label: String,
    /// Reference journal length (the sweep runs `0..=total_events`).
    pub total_events: usize,
    /// Whether torn tails were injected at each point.
    pub torn_tail: bool,
    /// Crash points that recovered correctly.
    pub passed: usize,
    /// Crash points that diverged.
    pub failed: usize,
    /// Only the failing points (an all-green sweep stays small).
    pub failures: Vec<CrashPointResult>,
    /// Recovery work performed across every crash point, summed from
    /// each recovered engine's `recovery.*` counters: how many running
    /// activities were restarted, waiting joins re-navigated,
    /// connector sets re-evaluated, exits re-decided and stale claims
    /// released over the whole sweep. A sweep that passes while these
    /// stay zero exercised nothing — CI asserts on them.
    pub recovery_fixups: BTreeMap<String, u64>,
}

impl SweepReport {
    /// True when every crash point recovered correctly.
    pub fn ok(&self) -> bool {
        self.failed == 0
    }

    /// The report as a JSON document (for the CI artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("SweepReport is always serializable")
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {}/{} crash points ok{}{}",
            self.label,
            self.passed,
            self.passed + self.failed,
            if self.torn_tail {
                " (torn tails injected)"
            } else {
                ""
            },
            if self.failed > 0 {
                format!("; first failure at k={}", self.failures[0].k)
            } else {
                String::new()
            }
        )
    }
}

/// Identity of a dispatch event, used to filter re-dispatch
/// duplicates: `(ready? started?, instance, path, attempt)`. Within
/// one run a given activity attempt is dispatched at most once, so a
/// suffix event whose key already occurs in the prefix can only be the
/// recovery re-dispatch of an in-flight activity.
fn dispatch_key(ev: &Event) -> Option<(bool, InstanceId, String, u32)> {
    match ev {
        Event::ActivityReady {
            instance,
            path,
            attempt,
            ..
        } => Some((false, *instance, path.to_string(), *attempt)),
        Event::ActivityStarted {
            instance,
            path,
            attempt,
            ..
        } => Some((true, *instance, path.to_string(), *attempt)),
        _ => None,
    }
}

/// Identity of a work-item offer: the activity attempt it serves,
/// `(instance, path, attempt)`. `WorkItemOffered` does not carry the
/// attempt, but every offer follows the `ActivityReady` of the same
/// `(instance, path)` at that attempt, so a sequential scan recovers
/// it. Returns, for each offering event index, the offered item id and
/// its key — used to match a post-recovery **re-offer** (fresh item
/// id, same attempt) with the prefix's original offer.
fn offer_keys(events: &[Event]) -> BTreeMap<usize, (crate::WorkItemId, OfferKey)> {
    let mut attempts: BTreeMap<(InstanceId, String), u32> = BTreeMap::new();
    let mut out = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        match ev {
            Event::ActivityReady {
                instance,
                path,
                attempt,
                ..
            } => {
                attempts.insert((*instance, path.to_string()), *attempt);
            }
            Event::WorkItemOffered {
                instance,
                path,
                item,
                ..
            } => {
                let attempt = attempts
                    .get(&(*instance, path.to_string()))
                    .copied()
                    .unwrap_or(0);
                out.insert(i, (*item, (*instance, path.to_string(), attempt)));
            }
            _ => {}
        }
    }
    out
}

type OfferKey = (InstanceId, String, u32);

static SWEEP_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Runs the crash-point sweep for the given templates and instance
/// starts. `make_world` is invoked once for the reference run and once
/// per crash point. Returns `Err` only if the *reference* run itself
/// fails; divergences at crash points are recorded in the report.
pub fn sweep(
    label: &str,
    templates: &[ProcessDefinition],
    starts: &[(String, Container)],
    make_world: &WorldFactory<'_>,
    cfg: &SweepConfig,
) -> Result<SweepReport, String> {
    let drive = |engine: &crate::Engine| -> Result<Vec<InstanceId>, String> {
        for t in templates {
            engine
                .register(t.clone())
                .map_err(|e| format!("register failed: {e}"))?;
        }
        let mut ids = Vec::new();
        for (process, input) in starts {
            ids.push(
                engine
                    .start(process, input.clone())
                    .map_err(|e| format!("start failed: {e}"))?,
            );
        }
        engine.run_all().map_err(|e| format!("run failed: {e}"))?;
        Ok(ids)
    };
    let resume =
        |engine: &crate::Engine| engine.run_all().map_err(|e| format!("resume failed: {e}"));
    sweep_with_script(
        label,
        templates,
        &SweepScript {
            drive: &drive,
            resume: &resume,
            org: OrgModel::new(),
        },
        make_world,
        cfg,
    )
}

/// The scripted crash-point sweep: like [`sweep`], but the reference
/// run and the post-recovery resumption are caller-supplied
/// ([`SweepScript`]), which lets the sweep enumerate crash points
/// *through operator actions* — template deploys, live migrations,
/// manual work-item completions. `recovery_templates` is handed to
/// [`crate::recovery::recover`] at every crash point and must contain
/// every definition the journal can reference (deploy order: first
/// per name = initial default).
pub fn sweep_with_script(
    label: &str,
    recovery_templates: &[ProcessDefinition],
    script: &SweepScript<'_>,
    make_world: &WorldFactory<'_>,
    cfg: &SweepConfig,
) -> Result<SweepReport, String> {
    // Reference run, in memory (the crash prefixes are materialised to
    // files below; the reference itself never crashes).
    let (multidb, programs) = make_world();
    let engine = crate::Engine::with_config(
        multidb.clone(),
        programs,
        EngineConfig {
            org: script.org.clone(),
            ..EngineConfig::default()
        },
    );
    let ids = (script.drive)(&engine).map_err(|e| format!("reference {e}"))?;
    let ref_events = engine.journal_events();
    let ref_status: BTreeMap<InstanceId, InstanceStatus> = ids
        .iter()
        .map(|&id| (id, engine.status(id).expect("started above")))
        .collect();
    let ref_outputs: BTreeMap<InstanceId, Container> = ids
        .iter()
        .map(|&id| (id, engine.output(id).expect("started above")))
        .collect();
    let ref_db = federation_snapshot(&multidb);
    drop(engine);

    let dir = std::env::temp_dir().join(format!(
        "wfms-crashsweep-{}-{}",
        std::process::id(),
        SWEEP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create sweep dir: {e}"))?;

    let n = ref_events.len();
    let mut report = SweepReport {
        label: label.to_owned(),
        total_events: n,
        torn_tail: cfg.torn_tail,
        passed: 0,
        failed: 0,
        failures: Vec::new(),
        recovery_fixups: BTreeMap::new(),
    };
    for k in 0..=n {
        let detail = run_crash_point(
            &dir,
            k,
            recovery_templates,
            script,
            &ref_events,
            &ref_status,
            &ref_outputs,
            &ref_db,
            make_world,
            cfg,
            &mut report.recovery_fixups,
        );
        match detail {
            None => report.passed += 1,
            Some(detail) => {
                report.failed += 1;
                report.failures.push(CrashPointResult {
                    k,
                    ok: false,
                    detail,
                });
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(report)
}

/// The final committed contents of every database in the federation.
fn federation_snapshot(
    multidb: &Arc<MultiDatabase>,
) -> BTreeMap<String, BTreeMap<String, txn_substrate::Value>> {
    multidb
        .names()
        .into_iter()
        .filter_map(|name| {
            let db = multidb.db(&name)?;
            Some((name, db.snapshot()))
        })
        .collect()
}

/// One crash point: re-run the process on a fresh world against a
/// file journal, "crash" by dropping the engine and truncating the
/// journal to its `k`-event prefix (plus optional torn tail), recover
/// **against the same federation** — local databases are durable,
/// autonomous systems that survive an engine crash (§2.1) — resume,
/// compare. Returns `None` on success, `Some(first divergence)`
/// otherwise.
#[allow(clippy::too_many_arguments)]
fn run_crash_point(
    dir: &std::path::Path,
    k: usize,
    templates: &[ProcessDefinition],
    script: &SweepScript<'_>,
    ref_events: &[Event],
    ref_status: &BTreeMap<InstanceId, InstanceStatus>,
    ref_outputs: &BTreeMap<InstanceId, Container>,
    ref_db: &BTreeMap<String, BTreeMap<String, txn_substrate::Value>>,
    make_world: &WorldFactory<'_>,
    cfg: &SweepConfig,
    fixups: &mut BTreeMap<String, u64>,
) -> Option<String> {
    let path = dir.join(format!("crash_{k}.journal"));
    let (multidb, programs) = make_world();

    // Pre-crash run: same deterministic world, journal mirrored to a
    // file. It must reproduce the reference journal byte for byte —
    // otherwise the factory is not deterministic and every comparison
    // below would be meaningless.
    {
        let engine = crate::Engine::with_config(
            multidb.clone(),
            programs.clone(),
            EngineConfig {
                org: script.org.clone(),
                journal_path: Some(path.clone()),
                ..EngineConfig::default()
            },
        );
        if let Err(e) = (script.drive)(&engine) {
            return Some(format!("pre-crash {e}"));
        }
        if engine.journal_events() != ref_events {
            return Some("world factory is not deterministic: pre-crash run diverged".to_owned());
        }
        // The crash: the engine vanishes; the journal file and the
        // federation's databases survive.
        drop(engine);
    }

    // Truncate the journal to what a crash after event `k` would have
    // left durable.
    {
        let mut f = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => return Some(format!("cannot write prefix: {e}")),
        };
        for ev in &ref_events[..k] {
            let line = serde_json::to_string(ev).expect("Event is always serializable");
            if let Err(e) = writeln!(f, "{line}") {
                return Some(format!("cannot write prefix: {e}"));
            }
        }
        if cfg.torn_tail && k < ref_events.len() {
            // The crash interrupted the append of event k+1: half its
            // bytes reached the file, no trailing newline.
            let line = serde_json::to_string(&ref_events[k]).expect("serializable");
            let torn = &line[..line.len() / 2];
            if let Err(e) = write!(f, "{torn}") {
                return Some(format!("cannot write torn tail: {e}"));
            }
        }
    }

    let engine = match recovery::recover(
        &path,
        templates.to_vec(),
        script.org.clone(),
        multidb.clone(),
        programs,
    ) {
        Ok(e) => e,
        Err(e) => return Some(format!("recover failed: {e}")),
    };
    if let Err(e) = (script.resume)(&engine) {
        return Some(e);
    }
    // Recovery fix-up counters record unconditionally (cold path), so
    // even this observer-less engine reports what recovery repaired.
    for (name, v) in engine.metrics().counters {
        if name.starts_with("recovery.") && v > 0 {
            *fixups.entry(name).or_insert(0) += v;
        }
    }

    // Which reference instances survived the crash? Only those whose
    // InstanceStarted made it into the prefix exist anywhere.
    let known: HashSet<InstanceId> = ref_events[..k]
        .iter()
        .filter_map(|e| match e {
            Event::InstanceStarted { instance, .. } => Some(*instance),
            _ => None,
        })
        .collect();
    let have: HashSet<InstanceId> = engine.instances().iter().map(|(id, _, _)| *id).collect();
    if have != known {
        return Some(format!(
            "instance set mismatch: recovered {have:?}, journal prefix knows {known:?}"
        ));
    }

    for (&id, &want) in ref_status {
        if !known.contains(&id) {
            continue;
        }
        match engine.status(id) {
            Ok(got) if got == want => {}
            Ok(got) => return Some(format!("instance {id}: status {got:?} != {want:?}")),
            Err(e) => return Some(format!("instance {id}: {e}")),
        }
        let want_out = &ref_outputs[&id];
        match engine.output(id) {
            Ok(got) if got == *want_out => {}
            Ok(got) => return Some(format!("instance {id}: output {got:?} != {want_out:?}")),
            Err(e) => return Some(format!("instance {id}: {e}")),
        }
    }

    // Journal: prefix untouched, suffix equal to the reference's
    // (modulo re-dispatch duplicates; restricted to surviving
    // instances — lost ones have no events on either side to compare).
    let rec_events = engine.journal_events();
    if rec_events.len() < k || rec_events[..k] != ref_events[..k] {
        return Some("recovery rewrote the journal prefix".to_owned());
    }
    let prefix_keys: HashSet<_> = ref_events[..k].iter().filter_map(dispatch_key).collect();
    // Manual-activity re-dispatch artifacts: recovery resets a manual
    // activity that was mid-execution at the crash and re-offers it
    // under a **fresh item id** (and releases stale claims, so the
    // resumption claims again). A suffix offer repeating a prefix
    // offer's `(instance, path, attempt)` — and any claim of such a
    // re-offered item, or of an item the prefix already claimed — is
    // the worklist face of the same re-dispatch, filtered exactly like
    // repeated `ActivityReady`/`ActivityStarted`.
    let rec_offers = offer_keys(&rec_events);
    let mut prefix_offer_keys: HashSet<OfferKey> = HashSet::new();
    for (&i, (_, key)) in &rec_offers {
        if i < k {
            prefix_offer_keys.insert(key.clone());
        }
    }
    let mut reoffered: HashSet<crate::WorkItemId> = HashSet::new();
    for (&i, (item, key)) in &rec_offers {
        if i >= k && prefix_offer_keys.contains(key) {
            reoffered.insert(*item);
        }
    }
    let prefix_claimed: HashSet<crate::WorkItemId> = ref_events[..k]
        .iter()
        .filter_map(|e| match e {
            Event::WorkItemClaimed { item, .. } => Some(*item),
            _ => None,
        })
        .collect();
    let rec_suffix: Vec<&Event> = rec_events[k..]
        .iter()
        .filter(|e| match dispatch_key(e) {
            Some(key) => !prefix_keys.contains(&key),
            None => match e {
                Event::WorkItemOffered { item, .. } => !reoffered.contains(item),
                Event::WorkItemClaimed { item, .. } => {
                    !reoffered.contains(item) && !prefix_claimed.contains(item)
                }
                _ => true,
            },
        })
        .collect();
    // `WorkItemClaimed` carries no instance id; resolve it through the
    // offer that created the item, so claims belonging to lost
    // instances drop out of the reference suffix like every other
    // event of theirs.
    let ref_item_instance: BTreeMap<crate::WorkItemId, InstanceId> = offer_keys(ref_events)
        .into_values()
        .map(|(item, (instance, _, _))| (item, instance))
        .collect();
    let want_suffix: Vec<&Event> = ref_events[k..]
        .iter()
        .filter(|e| match e.instance() {
            Some(id) => known.contains(&id),
            None => match e {
                Event::WorkItemClaimed { item, .. } => ref_item_instance
                    .get(item)
                    .map(|id| known.contains(id))
                    .unwrap_or(true),
                _ => true,
            },
        })
        .collect();
    if rec_suffix.len() != want_suffix.len()
        || rec_suffix.iter().zip(&want_suffix).any(|(a, b)| **a != **b)
    {
        let at = rec_suffix
            .iter()
            .zip(&want_suffix)
            .position(|(a, b)| **a != **b)
            .unwrap_or(want_suffix.len().min(rec_suffix.len()));
        return Some(format!(
            "journal suffix diverges at event {} (recovered {} vs reference {} events): \
             recovered={:?} reference={:?}",
            k + at,
            rec_suffix.len(),
            want_suffix.len(),
            rec_suffix.get(at).map(|e| e.describe()),
            want_suffix.get(at).map(|e| e.describe()),
        ));
    }

    // Databases are durable and shared with the pre-crash run, so the
    // final federation state must equal the reference's — resumption
    // may re-apply idempotent writes but must never apply *different*
    // ones (e.g. wrongly re-running a compensated activity would flip
    // a marker back and be caught here).
    let got_db = federation_snapshot(&multidb);
    if got_db != *ref_db {
        return Some(format!("database state diverges: {got_db:?} != {ref_db:?}"));
    }
    None
}
