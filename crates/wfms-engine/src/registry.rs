//! Versioned template registry — definition evolution as a first-class
//! runtime concern rather than an ops afterthought.
//!
//! Workflow transactions are long-lived by construction, so "the"
//! template of a process is a moving target: a definition edited and
//! redeployed while instances are in flight must not change what those
//! instances execute. The registry therefore keys every compiled
//! template by the **content hash of its validated definition**
//! ([`crate::compiled::spec_hash_of`]) and keeps, per process name,
//! the *default* version (what new instances start under) alongside
//! every other registered version (what running instances stay pinned
//! to — an instance's pin is simply the `Arc<CompiledProcess>` it
//! holds).
//!
//! Deploy semantics mirror the journal format:
//!
//! * the first registration of a name is silent — a single-version
//!   engine journals exactly what the pre-versioning engine did;
//! * re-registering the current default is an idempotent no-op (this
//!   is what makes operator scripts safely re-runnable after a crash);
//! * registering a *different* hash under an existing name (or
//!   re-promoting an old one) journals
//!   [`Event::TemplateDeployed`](crate::event::Event) and flips the
//!   default for future starts.

use crate::compiled::CompiledProcess;
use std::collections::HashMap;
use std::sync::Arc;

/// The identity handed back by [`crate::Engine::register`]: which
/// process was registered and which version (spec content hash, hex)
/// the supplied definition compiled to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateVersion {
    /// Process name.
    pub process: String,
    /// Spec content hash, fixed-width hex.
    pub version: String,
}

impl std::fmt::Display for TemplateVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.process, self.version)
    }
}

/// All registered template versions, keyed by content hash, with a
/// per-name default pointer.
#[derive(Default)]
pub(crate) struct TemplateRegistry {
    by_hash: HashMap<u64, Arc<CompiledProcess>>,
    default_of: HashMap<String, u64>,
    /// Registration order of distinct hashes per name (first entry is
    /// the initial default at recovery time).
    versions_of: HashMap<String, Vec<u64>>,
}

impl TemplateRegistry {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Registers `tpl`. With `advance_default` (the live path) a new
    /// or re-promoted version becomes the default for its name; the
    /// replay path passes `false` so the supplied template set fixes
    /// only the *initial* defaults and journalled `TemplateDeployed`
    /// events advance them. Returns the version identity plus whether
    /// this call changed the default of an already-registered name —
    /// i.e. whether it is a journal-worthy deploy.
    pub(crate) fn insert(
        &mut self,
        tpl: Arc<CompiledProcess>,
        advance_default: bool,
    ) -> (TemplateVersion, bool) {
        let name = tpl.name().to_owned();
        let hash = tpl.spec_hash;
        let version = TemplateVersion {
            process: name.clone(),
            version: tpl.version(),
        };
        if let std::collections::hash_map::Entry::Vacant(slot) = self.by_hash.entry(hash) {
            slot.insert(tpl);
            self.versions_of.entry(name.clone()).or_default().push(hash);
        }
        let deployed = match self.default_of.get(&name) {
            None => {
                self.default_of.insert(name, hash);
                false
            }
            Some(&current) if current == hash => false,
            Some(_) => {
                if advance_default {
                    self.default_of.insert(name, hash);
                }
                advance_default
            }
        };
        (version, deployed)
    }

    /// Moves the default of `process` to the already-registered
    /// version `hash` (replaying a `TemplateDeployed` event). `false`
    /// if no such version is registered.
    pub(crate) fn set_default(&mut self, process: &str, hash: u64) -> bool {
        if !self.by_hash.contains_key(&hash) {
            return false;
        }
        self.default_of.insert(process.to_owned(), hash);
        true
    }

    /// The default template of `process` — what a new instance starts
    /// under.
    pub(crate) fn default_tpl(&self, process: &str) -> Option<Arc<CompiledProcess>> {
        self.by_hash.get(self.default_of.get(process)?).cloned()
    }

    /// The template with this content hash, whatever name it carries.
    pub(crate) fn by_hash(&self, hash: u64) -> Option<Arc<CompiledProcess>> {
        self.by_hash.get(&hash).cloned()
    }

    /// [`Self::by_hash`] addressed by the hex rendering used in
    /// journals and APIs.
    pub(crate) fn by_version(&self, version: &str) -> Option<Arc<CompiledProcess>> {
        u64::from_str_radix(version, 16)
            .ok()
            .and_then(|h| self.by_hash(h))
    }

    /// Registered names, sorted.
    pub(crate) fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.default_of.keys().cloned().collect();
        names.sort();
        names
    }

    /// The versions registered under `process`, in registration order,
    /// rendered as hex.
    pub(crate) fn versions(&self, process: &str) -> Vec<String> {
        self.versions_of
            .get(process)
            .map(|hs| hs.iter().map(|h| format!("{h:016x}")).collect())
            .unwrap_or_default()
    }

    /// `(name, default version hex)` for every name with more than one
    /// registered version, sorted by name. A checkpoint re-journals
    /// these after the snapshot event so the current defaults survive
    /// compaction; single-version names need nothing (their default is
    /// implied by the recovery template set).
    pub(crate) fn multi_version_defaults(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .versions_of
            .iter()
            .filter(|(_, hs)| hs.len() > 1)
            .filter_map(|(name, _)| {
                let h = self.default_of.get(name)?;
                Some((name.clone(), format!("{h:016x}")))
            })
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_model::ProcessBuilder;

    fn tpl(name: &str, program: &str) -> Arc<CompiledProcess> {
        let def = ProcessBuilder::new(name)
            .program("A", program)
            .build()
            .unwrap();
        Arc::new(CompiledProcess::compile(def))
    }

    #[test]
    fn first_registration_is_silent_and_becomes_default() {
        let mut reg = TemplateRegistry::new();
        let t = tpl("p", "x");
        let (v, deployed) = reg.insert(Arc::clone(&t), true);
        assert!(!deployed);
        assert_eq!(v.process, "p");
        assert_eq!(v.version, t.version());
        assert_eq!(reg.default_tpl("p").unwrap().spec_hash, t.spec_hash);
    }

    #[test]
    fn re_registering_the_default_is_a_noop() {
        let mut reg = TemplateRegistry::new();
        reg.insert(tpl("p", "x"), true);
        let (_, deployed) = reg.insert(tpl("p", "x"), true);
        assert!(!deployed);
        assert_eq!(reg.versions("p").len(), 1);
    }

    #[test]
    fn a_different_hash_is_a_deploy_and_flips_the_default() {
        let mut reg = TemplateRegistry::new();
        let v1 = tpl("p", "x");
        let v2 = tpl("p", "y");
        assert_ne!(v1.spec_hash, v2.spec_hash);
        reg.insert(Arc::clone(&v1), true);
        let (_, deployed) = reg.insert(Arc::clone(&v2), true);
        assert!(deployed);
        assert_eq!(reg.default_tpl("p").unwrap().spec_hash, v2.spec_hash);
        assert_eq!(reg.versions("p").len(), 2);
        // Both versions stay addressable by hash.
        assert!(reg.by_hash(v1.spec_hash).is_some());
        assert!(reg.by_version(&v2.version()).is_some());
        assert_eq!(
            reg.multi_version_defaults(),
            vec![("p".to_owned(), v2.version())]
        );
    }

    #[test]
    fn replay_inserts_fix_initial_defaults_only() {
        let mut reg = TemplateRegistry::new();
        let v1 = tpl("p", "x");
        let v2 = tpl("p", "y");
        reg.insert(Arc::clone(&v1), false);
        let (_, deployed) = reg.insert(Arc::clone(&v2), false);
        assert!(!deployed);
        assert_eq!(reg.default_tpl("p").unwrap().spec_hash, v1.spec_hash);
        assert!(reg.set_default("p", v2.spec_hash));
        assert_eq!(reg.default_tpl("p").unwrap().spec_hash, v2.spec_hash);
        assert!(!reg.set_default("p", 0xdead));
    }
}
