//! Journal events — the engine's single source of truth.
//!
//! Every state transition the navigator makes is recorded as an
//! [`Event`] *before* the in-memory state changes (write-ahead
//! discipline, same as the database substrate). Forward recovery
//! (§3.3 of the paper: "the execution of a process is persistent in
//! the sense that forward recovery is always guaranteed") is then a
//! pure replay: rebuild state from events, re-schedule whatever was
//! running at the crash.

use serde::{Deserialize, Serialize};
use txn_substrate::Tick;
use wfms_model::Container;

/// Identifier of one process instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inst#{}", self.0)
    }
}

/// Identifier of one work item on a worklist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkItemId(pub u64);

impl std::fmt::Display for WorkItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

/// A cheaply clonable path-like string used in journal events.
///
/// Event paths repeat endlessly (every event for an activity carries
/// the same `"Forward/T2"`), so events share one `Arc<str>` per
/// template slot instead of allocating a fresh `String` per event —
/// the compiled template interns every activity path once at
/// compilation. Serializes byte-identically to a plain JSON string,
/// so the journal format is unchanged.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathStr(std::sync::Arc<str>);

impl PathStr {
    /// The path as a plain `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for PathStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for PathStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for PathStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for PathStr {
    fn from(s: &str) -> Self {
        Self(std::sync::Arc::from(s))
    }
}

impl From<String> for PathStr {
    fn from(s: String) -> Self {
        Self(std::sync::Arc::from(s))
    }
}

impl From<&String> for PathStr {
    fn from(s: &String) -> Self {
        Self(std::sync::Arc::from(s.as_str()))
    }
}

impl From<std::sync::Arc<str>> for PathStr {
    fn from(s: std::sync::Arc<str>) -> Self {
        Self(s)
    }
}

impl From<&std::sync::Arc<str>> for PathStr {
    fn from(s: &std::sync::Arc<str>) -> Self {
        Self(std::sync::Arc::clone(s))
    }
}

impl PartialEq<str> for PathStr {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for PathStr {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for PathStr {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<PathStr> for str {
    fn eq(&self, other: &PathStr) -> bool {
        self == &*other.0
    }
}

impl PartialEq<PathStr> for String {
    fn eq(&self, other: &PathStr) -> bool {
        self.as_str() == &*other.0
    }
}

impl Serialize for PathStr {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str((*self.0).to_owned())
    }
}

impl Deserialize for PathStr {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        match content {
            serde::Content::Str(s) => Ok(Self::from(s.as_str())),
            other => Err(serde::Error::msg(format!(
                "expected string for PathStr, got {other:?}"
            ))),
        }
    }
}

/// A slash-separated path to an activity inside (possibly nested)
/// blocks, e.g. `"Forward/T2"`.
pub type ActivityPath = PathStr;

/// One navigation event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A new instance of `process` started with `input`.
    InstanceStarted {
        instance: InstanceId,
        process: String,
        input: Container,
        at: Tick,
    },
    /// An activity met its start condition (or is a start activity).
    ActivityReady {
        instance: InstanceId,
        path: ActivityPath,
        attempt: u32,
        at: Tick,
    },
    /// An activity began executing; `by` names the person for manual
    /// activities. `input` is the materialised input container.
    ActivityStarted {
        instance: InstanceId,
        path: ActivityPath,
        attempt: u32,
        by: Option<String>,
        input: Container,
        at: Tick,
    },
    /// An activity's program (or block) completed; `output` already
    /// contains the `RC` member.
    ActivityFinished {
        instance: InstanceId,
        path: ActivityPath,
        attempt: u32,
        output: Container,
        at: Tick,
    },
    /// The exit condition evaluated false: back to ready (§3.2).
    ActivityRescheduled {
        instance: InstanceId,
        path: ActivityPath,
        next_attempt: u32,
        at: Tick,
    },
    /// Final state. `executed = false` means the activity was removed
    /// by dead path elimination without running.
    ActivityTerminated {
        instance: InstanceId,
        path: ActivityPath,
        executed: bool,
        at: Tick,
    },
    /// A control connector's transition condition was evaluated.
    ConnectorEvaluated {
        instance: InstanceId,
        /// Path prefix of the containing (sub)process, `""` at root.
        scope: PathStr,
        from: PathStr,
        to: PathStr,
        value: bool,
        at: Tick,
    },
    /// A manual activity was offered to the eligible persons.
    WorkItemOffered {
        instance: InstanceId,
        path: ActivityPath,
        item: WorkItemId,
        persons: Vec<String>,
        at: Tick,
    },
    /// A person claimed the work item: it vanishes from every other
    /// worklist (§3.3).
    WorkItemClaimed {
        item: WorkItemId,
        person: String,
        at: Tick,
    },
    /// A deadline expired and a notification was sent (§3.3).
    NotificationSent {
        instance: InstanceId,
        path: ActivityPath,
        person: String,
        at: Tick,
    },
    /// A user intervention (§3.3: "the user can stop an activity,
    /// restart it, force it to finish, and so forth").
    UserIntervention {
        instance: InstanceId,
        path: ActivityPath,
        action: String,
        at: Tick,
    },
    /// The instance completed: every activity is terminated.
    InstanceFinished {
        instance: InstanceId,
        output: Container,
        at: Tick,
    },
    /// The instance was cancelled by an operator.
    InstanceCancelled { instance: InstanceId, at: Tick },
    /// A new version of `process` was deployed and became the default
    /// for instances started after this point; `version` is the spec
    /// content hash in hex. The *first* registration of a name is not
    /// journalled (its version is implied by the recovery template
    /// set), so single-version journals are byte-identical to the
    /// pre-versioning format.
    TemplateDeployed {
        process: String,
        version: String,
        at: Tick,
    },
    /// An instance was migrated between template versions at a scope
    /// boundary. Journalled write-ahead of the state transfer; replay
    /// re-applies the same (deterministic) transfer.
    Migrated {
        instance: InstanceId,
        from: String,
        to: String,
        at: Tick,
    },
    /// A full engine checkpoint: the complete runtime state at a
    /// quiescent point. Recovery restarts from the last checkpoint and
    /// replays only the events after it; journal compaction drops
    /// everything before it (mirroring the database WAL's checkpoint).
    EngineCheckpoint {
        /// Snapshot of every live instance.
        instances: Vec<InstanceSnapshot>,
        /// Open and claimed work items.
        items: Vec<crate::worklist::WorkItem>,
        /// Instance-id allocator position.
        next_instance: u64,
        /// Work-item-id allocator position.
        next_item: u64,
        at: Tick,
    },
}

/// Serialisable snapshot of one instance (the definition is not
/// embedded — templates are re-registered at recovery, as with plain
/// replay).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSnapshot {
    /// Instance id.
    pub id: InstanceId,
    /// Template name.
    pub process: String,
    /// Overall status.
    pub status: crate::state::InstanceStatus,
    /// The template version (spec content hash, hex) the instance is
    /// pinned to — replay resolves the snapshot against this compiled
    /// template, not the current default.
    pub version: String,
    /// The full scope tree (activities, connectors, containers,
    /// children).
    pub root: crate::state::ScopeState,
}

impl Event {
    /// The instance this event belongs to, if any.
    pub fn instance(&self) -> Option<InstanceId> {
        match self {
            Event::InstanceStarted { instance, .. }
            | Event::ActivityReady { instance, .. }
            | Event::ActivityStarted { instance, .. }
            | Event::ActivityFinished { instance, .. }
            | Event::ActivityRescheduled { instance, .. }
            | Event::ActivityTerminated { instance, .. }
            | Event::ConnectorEvaluated { instance, .. }
            | Event::WorkItemOffered { instance, .. }
            | Event::NotificationSent { instance, .. }
            | Event::UserIntervention { instance, .. }
            | Event::InstanceFinished { instance, .. }
            | Event::InstanceCancelled { instance, .. }
            | Event::Migrated { instance, .. } => Some(*instance),
            Event::WorkItemClaimed { .. }
            | Event::EngineCheckpoint { .. }
            | Event::TemplateDeployed { .. } => None,
        }
    }

    /// The tick at which the event was journalled.
    pub fn at(&self) -> Tick {
        match self {
            Event::InstanceStarted { at, .. }
            | Event::ActivityReady { at, .. }
            | Event::ActivityStarted { at, .. }
            | Event::ActivityFinished { at, .. }
            | Event::ActivityRescheduled { at, .. }
            | Event::ActivityTerminated { at, .. }
            | Event::ConnectorEvaluated { at, .. }
            | Event::WorkItemOffered { at, .. }
            | Event::WorkItemClaimed { at, .. }
            | Event::NotificationSent { at, .. }
            | Event::UserIntervention { at, .. }
            | Event::InstanceFinished { at, .. }
            | Event::InstanceCancelled { at, .. }
            | Event::EngineCheckpoint { at, .. }
            | Event::TemplateDeployed { at, .. }
            | Event::Migrated { at, .. } => *at,
        }
    }

    /// A compact single-line rendering for audit listings.
    pub fn describe(&self) -> String {
        match self {
            Event::InstanceStarted {
                instance, process, ..
            } => format!("{instance} started (process {process:?})"),
            Event::ActivityReady { path, attempt, .. } => {
                format!("  {path} ready (attempt {attempt})")
            }
            Event::ActivityStarted { path, by, .. } => match by {
                Some(p) => format!("  {path} started by {p}"),
                None => format!("  {path} started"),
            },
            Event::ActivityFinished { path, output, .. } => {
                // Same distinction as `audit::trace`: no RC member is
                // rendered `?`, never conflated with a real −1.
                match output.get(wfms_model::RC_MEMBER).and_then(|v| v.as_int()) {
                    Some(rc) => format!("  {path} finished (RC = {rc})"),
                    None => format!("  {path} finished (RC = ?)"),
                }
            }
            Event::ActivityRescheduled {
                path, next_attempt, ..
            } => format!("  {path} rescheduled (attempt {next_attempt})"),
            Event::ActivityTerminated { path, executed, .. } => {
                if *executed {
                    format!("  {path} terminated")
                } else {
                    format!("  {path} terminated by dead path elimination")
                }
            }
            Event::ConnectorEvaluated {
                scope,
                from,
                to,
                value,
                ..
            } => {
                let prefix = if scope.is_empty() {
                    String::new()
                } else {
                    format!("{scope}/")
                };
                format!("  connector {prefix}{from} -> {prefix}{to} = {value}")
            }
            Event::WorkItemOffered {
                path,
                item,
                persons,
                ..
            } => format!("  {path} offered as {item} to {persons:?}"),
            Event::WorkItemClaimed { item, person, .. } => {
                format!("  {item} claimed by {person}")
            }
            Event::NotificationSent { path, person, .. } => {
                format!("  deadline notification for {path} sent to {person}")
            }
            Event::UserIntervention { path, action, .. } => {
                format!("  user intervention on {path}: {action}")
            }
            Event::InstanceFinished { instance, .. } => format!("{instance} finished"),
            Event::InstanceCancelled { instance, .. } => format!("{instance} cancelled"),
            Event::EngineCheckpoint { instances, .. } => {
                format!("engine checkpoint ({} instances)", instances.len())
            }
            Event::TemplateDeployed {
                process, version, ..
            } => format!("template {process:?} deployed as version {version}"),
            Event::Migrated {
                instance, from, to, ..
            } => format!("{instance} migrated from version {from} to {to}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(InstanceId(3).to_string(), "inst#3");
        assert_eq!(WorkItemId(9).to_string(), "item#9");
    }

    #[test]
    fn event_accessors() {
        let e = Event::ActivityReady {
            instance: InstanceId(1),
            path: "A".into(),
            attempt: 0,
            at: 5,
        };
        assert_eq!(e.instance(), Some(InstanceId(1)));
        assert_eq!(e.at(), 5);
        let c = Event::WorkItemClaimed {
            item: WorkItemId(1),
            person: "p".into(),
            at: 7,
        };
        assert_eq!(c.instance(), None);
        assert_eq!(c.at(), 7);
    }

    #[test]
    fn serde_round_trip() {
        let e = Event::ConnectorEvaluated {
            instance: InstanceId(2),
            scope: "Fwd".into(),
            from: "T1".into(),
            to: "T2".into(),
            value: true,
            at: 3,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn describe_mentions_dpe() {
        let e = Event::ActivityTerminated {
            instance: InstanceId(1),
            path: "T3".into(),
            executed: false,
            at: 0,
        };
        assert!(e.describe().contains("dead path elimination"));
    }
}
