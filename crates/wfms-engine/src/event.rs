//! Journal events — the engine's single source of truth.
//!
//! Every state transition the navigator makes is recorded as an
//! [`Event`] *before* the in-memory state changes (write-ahead
//! discipline, same as the database substrate). Forward recovery
//! (§3.3 of the paper: "the execution of a process is persistent in
//! the sense that forward recovery is always guaranteed") is then a
//! pure replay: rebuild state from events, re-schedule whatever was
//! running at the crash.

use serde::{Deserialize, Serialize};
use txn_substrate::Tick;
use wfms_model::Container;

/// Identifier of one process instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inst#{}", self.0)
    }
}

/// Identifier of one work item on a worklist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkItemId(pub u64);

impl std::fmt::Display for WorkItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

/// A cheaply clonable path-like string used in journal events.
///
/// Event paths repeat endlessly (every event for an activity carries
/// the same `"Forward/T2"`), so events share one `Arc<str>` per
/// template slot instead of allocating a fresh `String` per event —
/// the compiled template interns every activity path once at
/// compilation. Serializes byte-identically to a plain JSON string,
/// so the journal format is unchanged.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathStr(std::sync::Arc<str>);

impl PathStr {
    /// The path as a plain `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for PathStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for PathStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for PathStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for PathStr {
    fn from(s: &str) -> Self {
        Self(std::sync::Arc::from(s))
    }
}

impl From<String> for PathStr {
    fn from(s: String) -> Self {
        Self(std::sync::Arc::from(s))
    }
}

impl From<&String> for PathStr {
    fn from(s: &String) -> Self {
        Self(std::sync::Arc::from(s.as_str()))
    }
}

impl From<std::sync::Arc<str>> for PathStr {
    fn from(s: std::sync::Arc<str>) -> Self {
        Self(s)
    }
}

impl From<&std::sync::Arc<str>> for PathStr {
    fn from(s: &std::sync::Arc<str>) -> Self {
        Self(std::sync::Arc::clone(s))
    }
}

impl PartialEq<str> for PathStr {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for PathStr {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for PathStr {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<PathStr> for str {
    fn eq(&self, other: &PathStr) -> bool {
        self == &*other.0
    }
}

impl PartialEq<PathStr> for String {
    fn eq(&self, other: &PathStr) -> bool {
        self.as_str() == &*other.0
    }
}

impl Serialize for PathStr {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str((*self.0).to_owned())
    }
}

impl Deserialize for PathStr {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        match content {
            serde::Content::Str(s) => Ok(Self::from(s.as_str())),
            other => Err(serde::Error::msg(format!(
                "expected string for PathStr, got {other:?}"
            ))),
        }
    }
}

/// A slash-separated path to an activity inside (possibly nested)
/// blocks, e.g. `"Forward/T2"`.
pub type ActivityPath = PathStr;

/// One navigation event.
///
/// Serde is hand-written (below) rather than derived for one reason:
/// the optional `tenant` key on [`Event::InstanceStarted`] must be
/// *omitted* when `None` — not emitted as `null` — so tenantless
/// journals stay byte-identical to the pre-tenancy format, and absent
/// keys must read back as `None` so pre-tenancy journals still replay.
/// The derive emits every field and errors on missing ones.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A new instance of `process` started with `input`. `tenant`
    /// names the owning tenant when the server runs with tenancy
    /// enabled; library use and untenanted servers leave it `None`.
    InstanceStarted {
        instance: InstanceId,
        process: String,
        tenant: Option<String>,
        input: Container,
        at: Tick,
    },
    /// An activity met its start condition (or is a start activity).
    ActivityReady {
        instance: InstanceId,
        path: ActivityPath,
        attempt: u32,
        at: Tick,
    },
    /// An activity began executing; `by` names the person for manual
    /// activities. `input` is the materialised input container.
    ActivityStarted {
        instance: InstanceId,
        path: ActivityPath,
        attempt: u32,
        by: Option<String>,
        input: Container,
        at: Tick,
    },
    /// An activity's program (or block) completed; `output` already
    /// contains the `RC` member.
    ActivityFinished {
        instance: InstanceId,
        path: ActivityPath,
        attempt: u32,
        output: Container,
        at: Tick,
    },
    /// The exit condition evaluated false: back to ready (§3.2).
    ActivityRescheduled {
        instance: InstanceId,
        path: ActivityPath,
        next_attempt: u32,
        at: Tick,
    },
    /// Final state. `executed = false` means the activity was removed
    /// by dead path elimination without running.
    ActivityTerminated {
        instance: InstanceId,
        path: ActivityPath,
        executed: bool,
        at: Tick,
    },
    /// A control connector's transition condition was evaluated.
    ConnectorEvaluated {
        instance: InstanceId,
        /// Path prefix of the containing (sub)process, `""` at root.
        scope: PathStr,
        from: PathStr,
        to: PathStr,
        value: bool,
        at: Tick,
    },
    /// A manual activity was offered to the eligible persons.
    WorkItemOffered {
        instance: InstanceId,
        path: ActivityPath,
        item: WorkItemId,
        persons: Vec<String>,
        at: Tick,
    },
    /// A person claimed the work item: it vanishes from every other
    /// worklist (§3.3).
    WorkItemClaimed {
        item: WorkItemId,
        person: String,
        at: Tick,
    },
    /// A deadline expired and a notification was sent (§3.3).
    NotificationSent {
        instance: InstanceId,
        path: ActivityPath,
        person: String,
        at: Tick,
    },
    /// A user intervention (§3.3: "the user can stop an activity,
    /// restart it, force it to finish, and so forth").
    UserIntervention {
        instance: InstanceId,
        path: ActivityPath,
        action: String,
        at: Tick,
    },
    /// The instance completed: every activity is terminated.
    InstanceFinished {
        instance: InstanceId,
        output: Container,
        at: Tick,
    },
    /// The instance was cancelled by an operator.
    InstanceCancelled { instance: InstanceId, at: Tick },
    /// A new version of `process` was deployed and became the default
    /// for instances started after this point; `version` is the spec
    /// content hash in hex. The *first* registration of a name is not
    /// journalled (its version is implied by the recovery template
    /// set), so single-version journals are byte-identical to the
    /// pre-versioning format.
    TemplateDeployed {
        process: String,
        version: String,
        at: Tick,
    },
    /// An instance was migrated between template versions at a scope
    /// boundary. Journalled write-ahead of the state transfer; replay
    /// re-applies the same (deterministic) transfer.
    Migrated {
        instance: InstanceId,
        from: String,
        to: String,
        at: Tick,
    },
    /// A full engine checkpoint: the complete runtime state at a
    /// quiescent point. Recovery restarts from the last checkpoint and
    /// replays only the events after it; journal compaction drops
    /// everything before it (mirroring the database WAL's checkpoint).
    EngineCheckpoint {
        /// Snapshot of every live instance.
        instances: Vec<InstanceSnapshot>,
        /// Open and claimed work items.
        items: Vec<crate::worklist::WorkItem>,
        /// Instance-id allocator position.
        next_instance: u64,
        /// Work-item-id allocator position.
        next_item: u64,
        at: Tick,
    },
}

/// Serialisable snapshot of one instance (the definition is not
/// embedded — templates are re-registered at recovery, as with plain
/// replay). Serde is hand-written for the same reason as [`Event`]:
/// the `tenant` key is omitted when `None` so pre-tenancy checkpoints
/// parse and tenantless checkpoints keep their byte format.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSnapshot {
    /// Instance id.
    pub id: InstanceId,
    /// Template name.
    pub process: String,
    /// Owning tenant, when started under one.
    pub tenant: Option<String>,
    /// Overall status.
    pub status: crate::state::InstanceStatus,
    /// The template version (spec content hash, hex) the instance is
    /// pinned to — replay resolves the snapshot against this compiled
    /// template, not the current default.
    pub version: String,
    /// The full scope tree (activities, connectors, containers,
    /// children).
    pub root: crate::state::ScopeState,
}

// ---- hand-written serde --------------------------------------------
//
// Same externally-tagged encoding the derive produces — a one-entry
// map `{"Variant": {fields…}}` with fields in declaration order — so
// every journal written before this impl parses unchanged. The only
// deviation is deliberate: optional tenant keys are skipped when
// `None` and default to `None` when absent.

/// `(key, value)` map entry for one serialized field.
fn fld<T: Serialize>(name: &str, value: &T) -> (serde::Content, serde::Content) {
    (serde::Content::Str(name.to_owned()), value.to_content())
}

/// Wraps a field map into the externally-tagged variant encoding.
fn variant(name: &str, fields: Vec<(serde::Content, serde::Content)>) -> serde::Content {
    serde::Content::Map(vec![(
        serde::Content::Str(name.to_owned()),
        serde::Content::Map(fields),
    )])
}

/// A required field: absent is an error, like the derive.
fn req<T: Deserialize>(body: &serde::Content, name: &str, ctx: &str) -> Result<T, serde::Error> {
    match body.field(name) {
        Some(v) => T::from_content(v),
        None => Err(serde::Error::msg(format!(
            "missing field `{name}` in {ctx}"
        ))),
    }
}

/// An optional field: absent and `null` both read as `None`.
fn opt<T: Deserialize>(body: &serde::Content, name: &str) -> Result<Option<T>, serde::Error> {
    match body.field(name) {
        Some(v) => Option::<T>::from_content(v),
        None => Ok(None),
    }
}

impl Serialize for Event {
    fn to_content(&self) -> serde::Content {
        match self {
            Event::InstanceStarted {
                instance,
                process,
                tenant,
                input,
                at,
            } => {
                let mut fields = vec![fld("instance", instance), fld("process", process)];
                if tenant.is_some() {
                    fields.push(fld("tenant", tenant));
                }
                fields.push(fld("input", input));
                fields.push(fld("at", at));
                variant("InstanceStarted", fields)
            }
            Event::ActivityReady {
                instance,
                path,
                attempt,
                at,
            } => variant(
                "ActivityReady",
                vec![
                    fld("instance", instance),
                    fld("path", path),
                    fld("attempt", attempt),
                    fld("at", at),
                ],
            ),
            Event::ActivityStarted {
                instance,
                path,
                attempt,
                by,
                input,
                at,
            } => variant(
                "ActivityStarted",
                vec![
                    fld("instance", instance),
                    fld("path", path),
                    fld("attempt", attempt),
                    // `by` predates tenancy and was always emitted
                    // (`null` for automatic activities) — keep it so.
                    fld("by", by),
                    fld("input", input),
                    fld("at", at),
                ],
            ),
            Event::ActivityFinished {
                instance,
                path,
                attempt,
                output,
                at,
            } => variant(
                "ActivityFinished",
                vec![
                    fld("instance", instance),
                    fld("path", path),
                    fld("attempt", attempt),
                    fld("output", output),
                    fld("at", at),
                ],
            ),
            Event::ActivityRescheduled {
                instance,
                path,
                next_attempt,
                at,
            } => variant(
                "ActivityRescheduled",
                vec![
                    fld("instance", instance),
                    fld("path", path),
                    fld("next_attempt", next_attempt),
                    fld("at", at),
                ],
            ),
            Event::ActivityTerminated {
                instance,
                path,
                executed,
                at,
            } => variant(
                "ActivityTerminated",
                vec![
                    fld("instance", instance),
                    fld("path", path),
                    fld("executed", executed),
                    fld("at", at),
                ],
            ),
            Event::ConnectorEvaluated {
                instance,
                scope,
                from,
                to,
                value,
                at,
            } => variant(
                "ConnectorEvaluated",
                vec![
                    fld("instance", instance),
                    fld("scope", scope),
                    fld("from", from),
                    fld("to", to),
                    fld("value", value),
                    fld("at", at),
                ],
            ),
            Event::WorkItemOffered {
                instance,
                path,
                item,
                persons,
                at,
            } => variant(
                "WorkItemOffered",
                vec![
                    fld("instance", instance),
                    fld("path", path),
                    fld("item", item),
                    fld("persons", persons),
                    fld("at", at),
                ],
            ),
            Event::WorkItemClaimed { item, person, at } => variant(
                "WorkItemClaimed",
                vec![fld("item", item), fld("person", person), fld("at", at)],
            ),
            Event::NotificationSent {
                instance,
                path,
                person,
                at,
            } => variant(
                "NotificationSent",
                vec![
                    fld("instance", instance),
                    fld("path", path),
                    fld("person", person),
                    fld("at", at),
                ],
            ),
            Event::UserIntervention {
                instance,
                path,
                action,
                at,
            } => variant(
                "UserIntervention",
                vec![
                    fld("instance", instance),
                    fld("path", path),
                    fld("action", action),
                    fld("at", at),
                ],
            ),
            Event::InstanceFinished {
                instance,
                output,
                at,
            } => variant(
                "InstanceFinished",
                vec![
                    fld("instance", instance),
                    fld("output", output),
                    fld("at", at),
                ],
            ),
            Event::InstanceCancelled { instance, at } => variant(
                "InstanceCancelled",
                vec![fld("instance", instance), fld("at", at)],
            ),
            Event::TemplateDeployed {
                process,
                version,
                at,
            } => variant(
                "TemplateDeployed",
                vec![
                    fld("process", process),
                    fld("version", version),
                    fld("at", at),
                ],
            ),
            Event::Migrated {
                instance,
                from,
                to,
                at,
            } => variant(
                "Migrated",
                vec![
                    fld("instance", instance),
                    fld("from", from),
                    fld("to", to),
                    fld("at", at),
                ],
            ),
            Event::EngineCheckpoint {
                instances,
                items,
                next_instance,
                next_item,
                at,
            } => variant(
                "EngineCheckpoint",
                vec![
                    fld("instances", instances),
                    fld("items", items),
                    fld("next_instance", next_instance),
                    fld("next_item", next_item),
                    fld("at", at),
                ],
            ),
        }
    }
}

impl Deserialize for Event {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        let serde::Content::Map(entries) = content else {
            return Err(serde::Error::msg(format!(
                "expected single-entry map for Event, got {content:?}"
            )));
        };
        let [(tag, body)] = entries.as_slice() else {
            return Err(serde::Error::msg(format!(
                "expected single-entry map for Event, got {} entries",
                entries.len()
            )));
        };
        let serde::Content::Str(tag) = tag else {
            return Err(serde::Error::msg("expected string variant tag for Event"));
        };
        match tag.as_str() {
            "InstanceStarted" => Ok(Event::InstanceStarted {
                instance: req(body, "instance", tag)?,
                process: req(body, "process", tag)?,
                tenant: opt(body, "tenant")?,
                input: req(body, "input", tag)?,
                at: req(body, "at", tag)?,
            }),
            "ActivityReady" => Ok(Event::ActivityReady {
                instance: req(body, "instance", tag)?,
                path: req(body, "path", tag)?,
                attempt: req(body, "attempt", tag)?,
                at: req(body, "at", tag)?,
            }),
            "ActivityStarted" => Ok(Event::ActivityStarted {
                instance: req(body, "instance", tag)?,
                path: req(body, "path", tag)?,
                attempt: req(body, "attempt", tag)?,
                by: req(body, "by", tag)?,
                input: req(body, "input", tag)?,
                at: req(body, "at", tag)?,
            }),
            "ActivityFinished" => Ok(Event::ActivityFinished {
                instance: req(body, "instance", tag)?,
                path: req(body, "path", tag)?,
                attempt: req(body, "attempt", tag)?,
                output: req(body, "output", tag)?,
                at: req(body, "at", tag)?,
            }),
            "ActivityRescheduled" => Ok(Event::ActivityRescheduled {
                instance: req(body, "instance", tag)?,
                path: req(body, "path", tag)?,
                next_attempt: req(body, "next_attempt", tag)?,
                at: req(body, "at", tag)?,
            }),
            "ActivityTerminated" => Ok(Event::ActivityTerminated {
                instance: req(body, "instance", tag)?,
                path: req(body, "path", tag)?,
                executed: req(body, "executed", tag)?,
                at: req(body, "at", tag)?,
            }),
            "ConnectorEvaluated" => Ok(Event::ConnectorEvaluated {
                instance: req(body, "instance", tag)?,
                scope: req(body, "scope", tag)?,
                from: req(body, "from", tag)?,
                to: req(body, "to", tag)?,
                value: req(body, "value", tag)?,
                at: req(body, "at", tag)?,
            }),
            "WorkItemOffered" => Ok(Event::WorkItemOffered {
                instance: req(body, "instance", tag)?,
                path: req(body, "path", tag)?,
                item: req(body, "item", tag)?,
                persons: req(body, "persons", tag)?,
                at: req(body, "at", tag)?,
            }),
            "WorkItemClaimed" => Ok(Event::WorkItemClaimed {
                item: req(body, "item", tag)?,
                person: req(body, "person", tag)?,
                at: req(body, "at", tag)?,
            }),
            "NotificationSent" => Ok(Event::NotificationSent {
                instance: req(body, "instance", tag)?,
                path: req(body, "path", tag)?,
                person: req(body, "person", tag)?,
                at: req(body, "at", tag)?,
            }),
            "UserIntervention" => Ok(Event::UserIntervention {
                instance: req(body, "instance", tag)?,
                path: req(body, "path", tag)?,
                action: req(body, "action", tag)?,
                at: req(body, "at", tag)?,
            }),
            "InstanceFinished" => Ok(Event::InstanceFinished {
                instance: req(body, "instance", tag)?,
                output: req(body, "output", tag)?,
                at: req(body, "at", tag)?,
            }),
            "InstanceCancelled" => Ok(Event::InstanceCancelled {
                instance: req(body, "instance", tag)?,
                at: req(body, "at", tag)?,
            }),
            "TemplateDeployed" => Ok(Event::TemplateDeployed {
                process: req(body, "process", tag)?,
                version: req(body, "version", tag)?,
                at: req(body, "at", tag)?,
            }),
            "Migrated" => Ok(Event::Migrated {
                instance: req(body, "instance", tag)?,
                from: req(body, "from", tag)?,
                to: req(body, "to", tag)?,
                at: req(body, "at", tag)?,
            }),
            "EngineCheckpoint" => Ok(Event::EngineCheckpoint {
                instances: req(body, "instances", tag)?,
                items: req(body, "items", tag)?,
                next_instance: req(body, "next_instance", tag)?,
                next_item: req(body, "next_item", tag)?,
                at: req(body, "at", tag)?,
            }),
            other => Err(serde::Error::msg(format!(
                "unknown variant `{other}` of Event"
            ))),
        }
    }
}

impl Serialize for InstanceSnapshot {
    fn to_content(&self) -> serde::Content {
        let mut fields = vec![fld("id", &self.id), fld("process", &self.process)];
        if self.tenant.is_some() {
            fields.push(fld("tenant", &self.tenant));
        }
        fields.push(fld("status", &self.status));
        fields.push(fld("version", &self.version));
        fields.push(fld("root", &self.root));
        serde::Content::Map(fields)
    }
}

impl Deserialize for InstanceSnapshot {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        Ok(InstanceSnapshot {
            id: req(content, "id", "InstanceSnapshot")?,
            process: req(content, "process", "InstanceSnapshot")?,
            tenant: opt(content, "tenant")?,
            status: req(content, "status", "InstanceSnapshot")?,
            version: req(content, "version", "InstanceSnapshot")?,
            root: req(content, "root", "InstanceSnapshot")?,
        })
    }
}

impl Event {
    /// The instance this event belongs to, if any.
    pub fn instance(&self) -> Option<InstanceId> {
        match self {
            Event::InstanceStarted { instance, .. }
            | Event::ActivityReady { instance, .. }
            | Event::ActivityStarted { instance, .. }
            | Event::ActivityFinished { instance, .. }
            | Event::ActivityRescheduled { instance, .. }
            | Event::ActivityTerminated { instance, .. }
            | Event::ConnectorEvaluated { instance, .. }
            | Event::WorkItemOffered { instance, .. }
            | Event::NotificationSent { instance, .. }
            | Event::UserIntervention { instance, .. }
            | Event::InstanceFinished { instance, .. }
            | Event::InstanceCancelled { instance, .. }
            | Event::Migrated { instance, .. } => Some(*instance),
            Event::WorkItemClaimed { .. }
            | Event::EngineCheckpoint { .. }
            | Event::TemplateDeployed { .. } => None,
        }
    }

    /// The tick at which the event was journalled.
    pub fn at(&self) -> Tick {
        match self {
            Event::InstanceStarted { at, .. }
            | Event::ActivityReady { at, .. }
            | Event::ActivityStarted { at, .. }
            | Event::ActivityFinished { at, .. }
            | Event::ActivityRescheduled { at, .. }
            | Event::ActivityTerminated { at, .. }
            | Event::ConnectorEvaluated { at, .. }
            | Event::WorkItemOffered { at, .. }
            | Event::WorkItemClaimed { at, .. }
            | Event::NotificationSent { at, .. }
            | Event::UserIntervention { at, .. }
            | Event::InstanceFinished { at, .. }
            | Event::InstanceCancelled { at, .. }
            | Event::EngineCheckpoint { at, .. }
            | Event::TemplateDeployed { at, .. }
            | Event::Migrated { at, .. } => *at,
        }
    }

    /// A compact single-line rendering for audit listings.
    pub fn describe(&self) -> String {
        match self {
            Event::InstanceStarted {
                instance, process, ..
            } => format!("{instance} started (process {process:?})"),
            Event::ActivityReady { path, attempt, .. } => {
                format!("  {path} ready (attempt {attempt})")
            }
            Event::ActivityStarted { path, by, .. } => match by {
                Some(p) => format!("  {path} started by {p}"),
                None => format!("  {path} started"),
            },
            Event::ActivityFinished { path, output, .. } => {
                // Same distinction as `audit::trace`: no RC member is
                // rendered `?`, never conflated with a real −1.
                match output.get(wfms_model::RC_MEMBER).and_then(|v| v.as_int()) {
                    Some(rc) => format!("  {path} finished (RC = {rc})"),
                    None => format!("  {path} finished (RC = ?)"),
                }
            }
            Event::ActivityRescheduled {
                path, next_attempt, ..
            } => format!("  {path} rescheduled (attempt {next_attempt})"),
            Event::ActivityTerminated { path, executed, .. } => {
                if *executed {
                    format!("  {path} terminated")
                } else {
                    format!("  {path} terminated by dead path elimination")
                }
            }
            Event::ConnectorEvaluated {
                scope,
                from,
                to,
                value,
                ..
            } => {
                let prefix = if scope.is_empty() {
                    String::new()
                } else {
                    format!("{scope}/")
                };
                format!("  connector {prefix}{from} -> {prefix}{to} = {value}")
            }
            Event::WorkItemOffered {
                path,
                item,
                persons,
                ..
            } => format!("  {path} offered as {item} to {persons:?}"),
            Event::WorkItemClaimed { item, person, .. } => {
                format!("  {item} claimed by {person}")
            }
            Event::NotificationSent { path, person, .. } => {
                format!("  deadline notification for {path} sent to {person}")
            }
            Event::UserIntervention { path, action, .. } => {
                format!("  user intervention on {path}: {action}")
            }
            Event::InstanceFinished { instance, .. } => format!("{instance} finished"),
            Event::InstanceCancelled { instance, .. } => format!("{instance} cancelled"),
            Event::EngineCheckpoint { instances, .. } => {
                format!("engine checkpoint ({} instances)", instances.len())
            }
            Event::TemplateDeployed {
                process, version, ..
            } => format!("template {process:?} deployed as version {version}"),
            Event::Migrated {
                instance, from, to, ..
            } => format!("{instance} migrated from version {from} to {to}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(InstanceId(3).to_string(), "inst#3");
        assert_eq!(WorkItemId(9).to_string(), "item#9");
    }

    #[test]
    fn event_accessors() {
        let e = Event::ActivityReady {
            instance: InstanceId(1),
            path: "A".into(),
            attempt: 0,
            at: 5,
        };
        assert_eq!(e.instance(), Some(InstanceId(1)));
        assert_eq!(e.at(), 5);
        let c = Event::WorkItemClaimed {
            item: WorkItemId(1),
            person: "p".into(),
            at: 7,
        };
        assert_eq!(c.instance(), None);
        assert_eq!(c.at(), 7);
    }

    #[test]
    fn serde_round_trip() {
        let e = Event::ConnectorEvaluated {
            instance: InstanceId(2),
            scope: "Fwd".into(),
            from: "T1".into(),
            to: "T2".into(),
            value: true,
            at: 3,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    /// A tenantless `InstanceStarted` serializes byte-identically to
    /// the pre-tenancy derive output — no `"tenant"` key at all — so
    /// untenanted journals keep their golden format.
    #[test]
    fn tenantless_start_is_byte_identical_to_legacy() {
        let e = Event::InstanceStarted {
            instance: InstanceId(1),
            process: "fix".into(),
            tenant: None,
            input: Container::empty(),
            at: 0,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(
            json,
            r#"{"InstanceStarted":{"instance":1,"process":"fix","input":{"values":{}},"at":0}}"#
        );
    }

    /// A pre-tenancy journal line (no `tenant` key) parses with
    /// `tenant: None`.
    #[test]
    fn legacy_start_without_tenant_parses() {
        let line =
            r#"{"InstanceStarted":{"instance":1,"process":"fix","input":{"values":{}},"at":0}}"#;
        let e: Event = serde_json::from_str(line).unwrap();
        let Event::InstanceStarted {
            instance, tenant, ..
        } = e
        else {
            panic!("wrong variant");
        };
        assert_eq!(instance, InstanceId(1));
        assert_eq!(tenant, None);
    }

    /// A tenanted start round-trips the tenant name through JSON.
    #[test]
    fn tenanted_start_round_trips() {
        let e = Event::InstanceStarted {
            instance: InstanceId(7),
            process: "p".into(),
            tenant: Some("acme".into()),
            input: Container::empty(),
            at: 2,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains(r#""tenant":"acme""#), "{json}");
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    /// Every variant survives a serde round trip under the
    /// hand-written impl (the derive used to guarantee this).
    #[test]
    fn all_variants_round_trip() {
        let events = vec![
            Event::ActivityStarted {
                instance: InstanceId(1),
                path: "A".into(),
                attempt: 0,
                by: Some("ann".into()),
                input: Container::empty(),
                at: 1,
            },
            Event::ActivityStarted {
                instance: InstanceId(1),
                path: "A".into(),
                attempt: 1,
                by: None,
                input: Container::empty(),
                at: 2,
            },
            Event::ActivityFinished {
                instance: InstanceId(1),
                path: "A".into(),
                attempt: 0,
                output: Container::empty(),
                at: 3,
            },
            Event::ActivityRescheduled {
                instance: InstanceId(1),
                path: "A".into(),
                next_attempt: 2,
                at: 4,
            },
            Event::ActivityTerminated {
                instance: InstanceId(1),
                path: "A".into(),
                executed: true,
                at: 5,
            },
            Event::WorkItemOffered {
                instance: InstanceId(1),
                path: "M".into(),
                item: WorkItemId(4),
                persons: vec!["ann".into()],
                at: 6,
            },
            Event::WorkItemClaimed {
                item: WorkItemId(4),
                person: "ann".into(),
                at: 7,
            },
            Event::NotificationSent {
                instance: InstanceId(1),
                path: "M".into(),
                person: "ann".into(),
                at: 8,
            },
            Event::UserIntervention {
                instance: InstanceId(1),
                path: "M".into(),
                action: "restart".into(),
                at: 9,
            },
            Event::InstanceFinished {
                instance: InstanceId(1),
                output: Container::empty(),
                at: 10,
            },
            Event::InstanceCancelled {
                instance: InstanceId(1),
                at: 11,
            },
            Event::TemplateDeployed {
                process: "p".into(),
                version: "00c0ffee00c0ffee".into(),
                at: 12,
            },
            Event::Migrated {
                instance: InstanceId(1),
                from: "a".into(),
                to: "b".into(),
                at: 13,
            },
        ];
        for e in events {
            let json = serde_json::to_string(&e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e, "{json}");
        }
    }

    #[test]
    fn describe_mentions_dpe() {
        let e = Event::ActivityTerminated {
            instance: InstanceId(1),
            path: "T3".into(),
            executed: false,
            at: 0,
        };
        assert!(e.describe().contains("dead path elimination"));
    }
}
