//! Analysis-driven template optimization — condition-value propagation
//! over compiled scopes, and the journal-neutral rewrites it licenses.
//!
//! [`CondPlan::transition`](crate::compiled::CondPlan::transition)
//! already folds each condition *in isolation*; this module propagates
//! constants **through the graph**: an edge's condition is evaluated
//! over its source activity's output container, so any output member
//! whose value is known at every executed termination of the source
//! ("completion facts") can be substituted into the condition before
//! folding. Two fact sources are sound:
//!
//! * a no-op activity always terminates with `RC = 1` (§3.2 — it
//!   "commits immediately");
//! * an exit condition holds whenever the activity completes (a false
//!   exit reschedules it, §3.2), so an error-free exit condition of
//!   the shape `RC = k [AND …]` pins `RC` at completion. Only the
//!   reserved `RC` member is guaranteed present and `INT`-typed in
//!   every output container, so facts are restricted to it.
//!
//! From decided edges a per-scope fixpoint derives **statically dead**
//! activities — those that can never become ready: an AND-join with
//! one never-true incoming edge, an OR-join with none. The navigator
//! still journals their dead-path elimination (`ActivityTerminated
//! { executed: false }` and false `ConnectorEvaluated`s), so they
//! cannot be removed; what *can* go is every piece of runtime work
//! that only executed or ready activities incur:
//!
//! * decided `Dynamic` plans become `AlwaysTrue`/`AlwaysFalse` (the
//!   journaled verdict is unchanged; the expression walk is skipped);
//! * `data_in` entries sourced from a dead activity are dropped (the
//!   navigator skips sources that never executed — see
//!   `navigator::make_ready`'s `is_terminated() && executed` guard);
//! * dead activities' `data_in`/`data_out` are dropped (they never
//!   start and never terminate executed);
//! * `deadline_acts`, `any_deadlines` and `any_manual` are recomputed
//!   over live activities only, so instances whose manual or
//!   deadline-bearing steps are all dead skip worklist and deadline
//!   maintenance entirely.
//!
//! Every rewrite preserves the event stream byte for byte; the
//! differential suites (`parallel_differential.rs` against
//! [`RefEngine`](crate::RefEngine), `optimize_differential.rs` against
//! the unoptimized template) pin that down.

use crate::compiled::{CompiledKind, CompiledProcess, CompiledScope, CondPlan};
use std::sync::Arc;
use txn_substrate::Value;
use wfms_model::expr::CmpOp;
use wfms_model::{Expr, StartCondition, RC_MEMBER};

/// Per-scope analysis results of condition-value propagation.
#[derive(Debug, Clone)]
pub struct ScopeFacts {
    /// Per edge (by [`EdgeId`](crate::compiled::EdgeId)): the verdict
    /// the transition is guaranteed to produce *whenever it is
    /// evaluated over an executed source*, if decidable. Edges whose
    /// plan was already constant are included.
    pub edge_verdict: Vec<Option<bool>>,
    /// Per activity (by [`ActId`](crate::compiled::ActId)): true when
    /// the activity can never become ready — every run dead-path
    /// eliminates it (or leaves it waiting forever).
    pub dead: Vec<bool>,
    /// Per activity: output members with a known constant value at
    /// every executed termination.
    pub completion: Vec<Vec<(String, Value)>>,
}

/// What [`optimize`] changed, summed over all scopes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// `Dynamic` transition/exit plans replaced by constants.
    pub plans_fixed: usize,
    /// Statically dead activities found.
    pub dead_acts: usize,
    /// `data_in` entries and `data_out` mappings dropped.
    pub data_pruned: usize,
}

impl OptStats {
    /// True when the optimizer changed nothing.
    pub fn is_noop(&self) -> bool {
        *self == OptStats::default()
    }
}

/// Replaces known-constant members by literals. Substitution before
/// folding mirrors evaluation: the engine evaluates conditions over a
/// container in which these members hold exactly these values.
fn subst(e: &Expr, env: &[(String, Value)]) -> Expr {
    match e {
        Expr::Lit(_) => e.clone(),
        Expr::Var(v) => match env.iter().find(|(n, _)| n == v) {
            Some((_, val)) => Expr::Lit(val.clone()),
            None => e.clone(),
        },
        Expr::Cmp(l, op, r) => Expr::Cmp(Box::new(subst(l, env)), *op, Box::new(subst(r, env))),
        Expr::Arith(l, op, r) => Expr::Arith(Box::new(subst(l, env)), *op, Box::new(subst(r, env))),
        Expr::And(l, r) => Expr::And(Box::new(subst(l, env)), Box::new(subst(r, env))),
        Expr::Or(l, r) => Expr::Or(Box::new(subst(l, env)), Box::new(subst(r, env))),
        Expr::Not(e) => Expr::Not(Box::new(subst(e, env))),
        Expr::Neg(e) => Expr::Neg(Box::new(subst(e, env))),
    }
}

/// True when evaluation of `e` can never raise: every subexpression is
/// an integer literal, the reserved `RC` member (always present,
/// always `INT`), integer comparisons over those, or a boolean
/// combinator of such comparisons. Division stays excluded — `x / 0`
/// raises.
fn error_free_rc_bool(e: &Expr) -> bool {
    fn int_operand(e: &Expr) -> bool {
        matches!(e, Expr::Lit(Value::Int(_))) || matches!(e, Expr::Var(v) if v == RC_MEMBER)
    }
    match e {
        Expr::Lit(Value::Bool(_)) => true,
        Expr::Cmp(l, _, r) => int_operand(l) && int_operand(r),
        Expr::And(l, r) | Expr::Or(l, r) => error_free_rc_bool(l) && error_free_rc_bool(r),
        Expr::Not(e) => error_free_rc_bool(e),
        _ => false,
    }
}

/// Facts guaranteed by a *true* evaluation of an error-free exit
/// condition: `RC = k` equalities reachable through conjunctions.
/// Restricted to error-free subtrees — evaluation errors make an exit
/// condition pass (`unwrap_or(true)`) without its conjuncts holding,
/// but an error-free left conjunct must have been true for evaluation
/// to reach (or error in) the right one.
fn exit_facts(e: &Expr) -> Vec<(String, Value)> {
    match e {
        Expr::And(l, r) => {
            if !error_free_rc_bool(l) {
                return Vec::new();
            }
            let mut facts = exit_facts(l);
            if error_free_rc_bool(r) {
                facts.extend(exit_facts(r));
            }
            facts
        }
        Expr::Cmp(l, CmpOp::Eq, r) if error_free_rc_bool(e) => match (&**l, &**r) {
            (Expr::Var(v), Expr::Lit(val)) | (Expr::Lit(val), Expr::Var(v)) => {
                vec![(v.clone(), val.clone())]
            }
            _ => Vec::new(),
        },
        _ => Vec::new(),
    }
}

/// Decides a transition plan under `env`, mirroring
/// [`CondPlan::transition`]'s folding rules (non-boolean constants and
/// guaranteed errors are false).
fn decide_transition(plan: &CondPlan, env: &[(String, Value)]) -> Option<bool> {
    match plan {
        CondPlan::AlwaysTrue => Some(true),
        CondPlan::AlwaysFalse => Some(false),
        CondPlan::Dynamic(e) => {
            let folded = subst(e, env).const_fold();
            match folded.const_value() {
                Some(v) => Some(v.as_bool() == Some(true)),
                None => folded.const_error().map(|_| false),
            }
        }
    }
}

/// Runs condition-value propagation over one scope: completion facts,
/// edge verdicts, and the statically-dead fixpoint.
pub fn analyze_scope(cs: &CompiledScope) -> ScopeFacts {
    let n = cs.acts.len();
    let mut completion: Vec<Vec<(String, Value)>> = Vec::with_capacity(n);
    for act in &cs.acts {
        let mut facts: Vec<(String, Value)> = Vec::new();
        if matches!(act.kind, CompiledKind::NoOp) {
            facts.push((RC_MEMBER.to_owned(), Value::Int(1)));
        }
        if let CondPlan::Dynamic(e) = &act.exit {
            for (name, val) in exit_facts(e) {
                if !facts.iter().any(|(n, _)| *n == name) {
                    facts.push((name, val));
                }
            }
        }
        completion.push(facts);
    }

    let edge_verdict: Vec<Option<bool>> = cs
        .edges
        .iter()
        .map(|e| decide_transition(&e.cond, &completion[e.from as usize]))
        .collect();

    // Statically-dead fixpoint. An activity can never become ready
    // when its join can never be satisfied: an incoming edge is
    // never-true if its decided verdict is false, or its source is
    // itself dead (the navigator forces a dead source's outgoing
    // connectors to false). Start activities are seeded ready and are
    // never dead. Monotone (dead only grows), so iteration terminates.
    let mut dead = vec![false; n];
    loop {
        let mut changed = false;
        for (i, act) in cs.acts.iter().enumerate() {
            if dead[i] || act.incoming.is_empty() {
                continue;
            }
            let never_true = |edge: u32| -> bool {
                let e = &cs.edges[edge as usize];
                edge_verdict[edge as usize] == Some(false) || dead[e.from as usize]
            };
            let is_dead = match act.start {
                StartCondition::And => act.incoming.iter().any(|&e| never_true(e)),
                StartCondition::Or => act.incoming.iter().all(|&e| never_true(e)),
            };
            if is_dead {
                dead[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    ScopeFacts {
        edge_verdict,
        dead,
        completion,
    }
}

fn optimize_scope(cs: &CompiledScope, stats: &mut OptStats) -> CompiledScope {
    let facts = analyze_scope(cs);
    let mut out = cs.clone();

    for (e, edge) in out.edges.iter_mut().enumerate() {
        if let CondPlan::Dynamic(_) = edge.cond {
            if let Some(v) = facts.edge_verdict[e] {
                edge.cond = if v {
                    CondPlan::AlwaysTrue
                } else {
                    CondPlan::AlwaysFalse
                };
                stats.plans_fixed += 1;
            }
        }
    }

    let mut any_manual = false;
    let mut any_deadlines = false;
    let mut deadline_acts = Vec::new();
    for (i, act) in out.acts.iter_mut().enumerate() {
        let live = !facts.dead[i];
        if !live {
            stats.dead_acts += 1;
            stats.data_pruned += act.data_in.len() + act.data_out.len();
            act.data_in.clear();
            act.data_out.clear();
        } else {
            // A no-op's exit condition is checked over `RC = 1` plus
            // its pass-through members; substituting the guaranteed RC
            // decides exits like `EXIT WHEN "RC = 1"` statically.
            if matches!(act.kind, CompiledKind::NoOp) {
                if let CondPlan::Dynamic(e) = &act.exit {
                    let folded = subst(e, &[(RC_MEMBER.to_owned(), Value::Int(1))]).const_fold();
                    // Exit rule: errors and non-boolean constants exit.
                    let verdict = match folded.const_value() {
                        Some(v) => Some(v.as_bool() != Some(false)),
                        None => folded.const_error().map(|_| true),
                    };
                    if let Some(v) = verdict {
                        act.exit = if v {
                            CondPlan::AlwaysTrue
                        } else {
                            CondPlan::AlwaysFalse
                        };
                        stats.plans_fixed += 1;
                    }
                }
            }
            // Drop input feeds whose source can never have executed.
            let before = act.data_in.len();
            act.data_in.retain(|d| match d.source {
                crate::compiled::DataSource::ProcessInput => true,
                crate::compiled::DataSource::ActivityOutput(src) => !facts.dead[src as usize],
            });
            stats.data_pruned += before - act.data_in.len();
        }
        if let CompiledKind::Block(child) = &act.kind {
            let opt_child = optimize_scope(child, stats);
            if live {
                any_manual |= opt_child.any_manual;
                any_deadlines |= opt_child.any_deadlines;
            }
            act.kind = CompiledKind::Block(Arc::new(opt_child));
        }
        if live && !act.automatic {
            any_manual = true;
            if act.deadline.is_some() {
                any_deadlines = true;
                deadline_acts.push(i as u32);
            }
        }
    }
    out.any_manual = any_manual;
    out.any_deadlines = any_deadlines;
    out.deadline_acts = deadline_acts;
    out
}

/// Optimizes a compiled template. The returned template produces a
/// byte-identical event stream for every instance; only the work the
/// navigator performs per event shrinks.
pub fn optimize(tpl: &CompiledProcess) -> (CompiledProcess, OptStats) {
    let mut stats = OptStats::default();
    let root = optimize_scope(&tpl.root, &mut stats);
    (
        CompiledProcess::from_parts(Arc::clone(&tpl.def), Arc::new(root)),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_model::{Activity, ProcessBuilder, ProcessDefinition};

    fn compile(def: ProcessDefinition) -> CompiledProcess {
        CompiledProcess::compile(def)
    }

    /// NoOp → "RC = 1" edge → program: the edge is decided true.
    #[test]
    fn noop_rc_edges_fold() {
        let def = ProcessBuilder::new("p")
            .activity(Activity::noop("N"))
            .program("A", "pa")
            .connect_when("N", "A", "RC = 1")
            .build()
            .unwrap();
        let tpl = compile(def);
        let (opt, stats) = optimize(&tpl);
        assert_eq!(stats.plans_fixed, 1);
        assert!(matches!(opt.root.edges[0].cond, CondPlan::AlwaysTrue));
        assert!(!opt.root.edges.is_empty());
    }

    /// Exit condition "RC = 1" pins RC at completion, so downstream
    /// "RC = 1" edges fold true and "RC = 0" edges fold false; the
    /// "RC = 0" target becomes statically dead.
    #[test]
    fn exit_condition_facts_propagate() {
        let mut a = Activity::program("A", "pa");
        a.exit = wfms_model::ExitCondition::when("RC = 1");
        let def = ProcessBuilder::new("p")
            .activity(a)
            .program("B", "pb")
            .program("C", "pc")
            .connect_when("A", "B", "RC = 1")
            .connect_when("A", "C", "RC = 0")
            .build()
            .unwrap();
        let tpl = compile(def);
        let facts = analyze_scope(&tpl.root);
        assert_eq!(facts.completion[0], vec![("RC".to_owned(), Value::Int(1))]);
        assert_eq!(facts.edge_verdict, vec![Some(true), Some(false)]);
        assert_eq!(facts.dead, vec![false, false, true]);
        let (opt, stats) = optimize(&tpl);
        assert_eq!(stats.plans_fixed, 2);
        assert_eq!(stats.dead_acts, 1);
        assert!(matches!(opt.root.edges[0].cond, CondPlan::AlwaysTrue));
        assert!(matches!(opt.root.edges[1].cond, CondPlan::AlwaysFalse));
    }

    /// A program without an exit condition can return any RC: its
    /// "RC = 1" edges must stay dynamic.
    #[test]
    fn unpinned_programs_stay_dynamic() {
        let def = ProcessBuilder::new("p")
            .program("A", "pa")
            .program("B", "pb")
            .connect_when("A", "B", "RC = 1")
            .build()
            .unwrap();
        let (opt, stats) = optimize(&compile(def));
        assert!(stats.is_noop());
        assert!(matches!(opt.root.edges[0].cond, CondPlan::Dynamic(_)));
    }

    /// Erroring exit conditions pass (`unwrap_or(true)`), so facts may
    /// only come from error-free conjuncts: `RC = 1 AND x / 0 = 1`
    /// still pins RC (left conjunct must be true to reach the error),
    /// but `x / 0 = 1 AND RC = 1` pins nothing.
    #[test]
    fn erroring_conjuncts_block_facts() {
        let pinned = Expr::parse("RC = 1 AND x / 0 = 1").unwrap();
        assert_eq!(exit_facts(&pinned), vec![("RC".to_owned(), Value::Int(1))]);
        let unpinned = Expr::parse("x / 0 = 1 AND RC = 1").unwrap();
        assert_eq!(exit_facts(&unpinned), Vec::new());
        // Non-RC members may be absent from the output container
        // (UnknownVar errors): no facts from them either.
        let other = Expr::parse("State_1 = 1").unwrap();
        assert_eq!(exit_facts(&other), Vec::new());
    }

    /// Dead activities lose their data maps and deadline/manual
    /// bookkeeping; live ones keep theirs.
    #[test]
    fn dead_branch_pruned_from_indexes() {
        let mut gate = Activity::noop("Gate");
        gate.output = wfms_model::ContainerSchema::empty();
        let dead_manual = Activity::program("M", "pm")
            .for_role("clerk")
            .with_deadline(5);
        let def = ProcessBuilder::new("p")
            .activity(gate)
            .activity(dead_manual)
            .program("L", "pl")
            .connect_when("Gate", "M", "RC = 0")
            .connect_when("Gate", "L", "RC = 1")
            .build()
            .unwrap();
        let tpl = compile(def);
        assert!(tpl.root.any_manual);
        assert!(tpl.root.any_deadlines);
        let (opt, stats) = optimize(&tpl);
        assert_eq!(stats.dead_acts, 1);
        assert!(!opt.root.any_manual, "only manual activity is dead");
        assert!(!opt.root.any_deadlines);
        assert!(opt.root.deadline_acts.is_empty());
    }

    /// An OR-join survives as long as one incoming edge can fire; the
    /// same shape with an AND-join is statically dead.
    #[test]
    fn or_join_lives_with_one_live_edge() {
        let build = |start: StartCondition| {
            let mut join = Activity::program("J", "pj");
            join.start = start;
            ProcessBuilder::new("p")
                .activity(Activity::noop("N"))
                .program("X", "px")
                .activity(join)
                .connect_when("N", "J", "RC = 0")
                .connect_when("X", "J", "RC = 1")
                .build()
                .unwrap()
        };
        let or = compile(build(StartCondition::Or));
        let j = or.root.id("J").unwrap() as usize;
        assert!(!analyze_scope(&or.root).dead[j]);
        let and = compile(build(StartCondition::And));
        assert!(analyze_scope(&and.root).dead[j]);
    }

    /// Optimizing a template twice is idempotent on the second pass.
    #[test]
    fn optimize_is_idempotent() {
        let mut a = Activity::program("A", "pa");
        a.exit = wfms_model::ExitCondition::when("RC = 1");
        let def = ProcessBuilder::new("p")
            .activity(a)
            .program("B", "pb")
            .connect_when("A", "B", "RC = 0")
            .build()
            .unwrap();
        let (once, first) = optimize(&compile(def));
        assert!(!first.is_noop());
        let (_, second) = optimize(&once);
        assert_eq!(second.plans_fixed, 0);
        assert_eq!(second.data_pruned, 0);
    }
}
