//! Audit trail helpers — §3.3 lists monitoring, accounting and audit
//! among the features that made workflow products successful. The
//! journal already records everything; this module renders it.

use crate::event::{Event, InstanceId};
use serde::Serialize;
use std::collections::BTreeMap;

/// Human-readable audit listing of `events` (one line per event,
/// prefixed by the tick).
pub fn render(events: &[Event]) -> Vec<String> {
    events
        .iter()
        .map(|e| format!("[t={}] {}", e.at(), e.describe()))
        .collect()
}

/// The compact *trace* of one instance: the ordered list of
/// "what happened to which activity" tokens the golden-trace tests of
/// the paper's appendix compare against. Connector evaluations and
/// container contents are omitted; starts record attempts so retried
/// activities are visible.
pub fn trace(events: &[Event], instance: InstanceId) -> Vec<String> {
    events
        .iter()
        .filter(|e| e.instance() == Some(instance))
        .filter_map(|e| match e {
            Event::ActivityStarted { path, attempt, .. } => Some(format!("start:{path}#{attempt}")),
            Event::ActivityFinished { path, output, .. } => {
                // An absent RC member must not masquerade as a genuine
                // return code of -1: render it as the distinct `?`.
                Some(
                    match output.get(wfms_model::RC_MEMBER).and_then(|v| v.as_int()) {
                        Some(rc) => format!("finish:{path}={rc}"),
                        None => format!("finish:{path}=?"),
                    },
                )
            }
            Event::ActivityTerminated {
                path,
                executed: false,
                ..
            } => Some(format!("dead:{path}")),
            Event::InstanceFinished { .. } => Some("done".to_owned()),
            _ => None,
        })
        .collect()
}

/// The order in which activities *ran* (started), attempts flattened —
/// the saga/flexible-transaction tests assert compensation order with
/// this.
pub fn execution_order(events: &[Event], instance: InstanceId) -> Vec<String> {
    events
        .iter()
        .filter(|e| e.instance() == Some(instance))
        .filter_map(|e| match e {
            Event::ActivityStarted { path, .. } => Some(path.to_string()),
            _ => None,
        })
        .collect()
}

/// Per-instance summary counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct InstanceSummary {
    /// Activity executions started (attempts, not unique activities).
    pub executions: u64,
    /// Activities terminated having executed.
    pub completed: u64,
    /// Activities removed by dead path elimination.
    pub eliminated: u64,
    /// Exit-condition reschedules.
    pub reschedules: u64,
    /// Connector evaluations (true, false).
    pub connectors_true: u64,
    /// Connector evaluations that were false.
    pub connectors_false: u64,
    /// Deadline notifications sent.
    pub notifications: u64,
}

/// Computes summary counters for `instance`.
pub fn summarize(events: &[Event], instance: InstanceId) -> InstanceSummary {
    let mut s = InstanceSummary::default();
    for e in events.iter().filter(|e| e.instance() == Some(instance)) {
        match e {
            Event::ActivityStarted { .. } => s.executions += 1,
            Event::ActivityTerminated { executed, .. } => {
                if *executed {
                    s.completed += 1;
                } else {
                    s.eliminated += 1;
                }
            }
            Event::ActivityRescheduled { .. } => s.reschedules += 1,
            Event::ConnectorEvaluated { value, .. } => {
                if *value {
                    s.connectors_true += 1;
                } else {
                    s.connectors_false += 1;
                }
            }
            Event::NotificationSent { .. } => s.notifications += 1,
            _ => {}
        }
    }
    s
}

/// Exports events as a JSON array (one object per event) for external
/// tooling.
pub fn to_json(events: &[Event]) -> String {
    serde_json::to_string_pretty(events).expect("events are always serializable")
}

/// Groups execution counts by activity path.
pub fn executions_by_activity(events: &[Event], instance: InstanceId) -> BTreeMap<String, u64> {
    let mut map = BTreeMap::new();
    for e in events.iter().filter(|e| e.instance() == Some(instance)) {
        if let Event::ActivityStarted { path, .. } = e {
            *map.entry(path.to_string()).or_insert(0) += 1;
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_model::Container;

    fn sample() -> Vec<Event> {
        let i = InstanceId(1);
        let mut out1 = Container::empty();
        out1.set("RC", txn_substrate::Value::Int(1));
        vec![
            Event::InstanceStarted {
                instance: i,
                process: "p".into(),
                tenant: None,
                input: Container::empty(),
                at: 0,
            },
            Event::ActivityStarted {
                instance: i,
                path: "A".into(),
                attempt: 0,
                by: None,
                input: Container::empty(),
                at: 1,
            },
            Event::ActivityFinished {
                instance: i,
                path: "A".into(),
                attempt: 0,
                output: out1,
                at: 2,
            },
            Event::ActivityTerminated {
                instance: i,
                path: "A".into(),
                executed: true,
                at: 2,
            },
            Event::ConnectorEvaluated {
                instance: i,
                scope: "".into(),
                from: "A".into(),
                to: "B".into(),
                value: false,
                at: 2,
            },
            Event::ActivityTerminated {
                instance: i,
                path: "B".into(),
                executed: false,
                at: 2,
            },
            Event::InstanceFinished {
                instance: i,
                output: Container::empty(),
                at: 3,
            },
        ]
    }

    #[test]
    fn trace_tokens() {
        let t = trace(&sample(), InstanceId(1));
        assert_eq!(t, vec!["start:A#0", "finish:A=1", "dead:B", "done"]);
    }

    /// Regression: an `ActivityFinished` whose output carries no `RC`
    /// member (possible for events produced by external tooling or
    /// future activity kinds) used to render as `finish:A=-1`,
    /// indistinguishable from a real return code of −1.
    #[test]
    fn trace_renders_missing_rc_as_question_mark() {
        let i = InstanceId(1);
        let evs = vec![Event::ActivityFinished {
            instance: i,
            path: "A".into(),
            attempt: 0,
            output: Container::empty(),
            at: 2,
        }];
        assert_eq!(trace(&evs, i), vec!["finish:A=?"]);
        // A genuine −1 still renders as −1.
        let mut out = Container::empty();
        out.set("RC", txn_substrate::Value::Int(-1));
        let evs = vec![Event::ActivityFinished {
            instance: i,
            path: "A".into(),
            attempt: 0,
            output: out,
            at: 2,
        }];
        assert_eq!(trace(&evs, i), vec!["finish:A=-1"]);
    }

    #[test]
    fn summary_counts() {
        let s = summarize(&sample(), InstanceId(1));
        assert_eq!(s.executions, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.eliminated, 1);
        assert_eq!(s.connectors_false, 1);
        assert_eq!(s.connectors_true, 0);
    }

    #[test]
    fn render_includes_ticks() {
        let lines = render(&sample());
        assert!(lines[0].starts_with("[t=0] "));
        assert_eq!(lines.len(), 7);
    }

    #[test]
    fn executions_by_activity_counts_attempts() {
        let mut evs = sample();
        evs.push(Event::ActivityStarted {
            instance: InstanceId(1),
            path: "A".into(),
            attempt: 1,
            by: None,
            input: Container::empty(),
            at: 4,
        });
        let m = executions_by_activity(&evs, InstanceId(1));
        assert_eq!(m["A"], 2);
    }

    #[test]
    fn json_export_parses_back() {
        let json = to_json(&sample());
        let back: Vec<Event> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 7);
    }
}
