//! # wfms-engine
//!
//! A FlowMark-class workflow execution engine ("navigator")
//! implementing exactly the semantics §3.2–3.3 of the reproduced paper
//! relies on:
//!
//! * the activity state machine (ready / running / finished /
//!   terminated) with AND/OR start conditions and exit-condition
//!   loops;
//! * **dead path elimination**;
//! * data-flow materialisation between typed containers;
//! * blocks (embedded subprocesses) for nesting and loops;
//! * an organization model with role-based staff resolution,
//!   worklists with claim semantics, deadlines and notifications;
//! * a persistent journal with **forward recovery** — crash the
//!   engine, reopen the journal, and execution resumes from the exact
//!   navigation frontier, re-running whatever was in flight.
//!
//! The engine executes *transactional programs* registered in a
//! [`txn_substrate::ProgramRegistry`] against a
//! [`txn_substrate::MultiDatabase`]; their return codes drive the
//! transition conditions, which is the entire interface the paper's
//! saga / flexible-transaction constructions need.
//!
//! ```
//! use std::sync::Arc;
//! use txn_substrate::{MultiDatabase, ProgramRegistry, KvProgram};
//! use wfms_model::{ProcessBuilder, Container};
//! use wfms_engine::{Engine, InstanceStatus};
//!
//! let fed = MultiDatabase::new(0);
//! fed.add_database("db");
//! let programs = Arc::new(ProgramRegistry::new());
//! programs.register(Arc::new(KvProgram::write("hello", "db", "greeting", "hi")));
//!
//! let process = ProcessBuilder::new("demo").program("Say", "hello").build().unwrap();
//! let engine = Engine::new(fed.clone(), programs);
//! engine.register(process).unwrap();
//! let id = engine.start("demo", Container::empty()).unwrap();
//! assert_eq!(engine.run_to_quiescence(id).unwrap(), InstanceStatus::Finished);
//! assert_eq!(fed.db("db").unwrap().peek("greeting"), Some("hi".into()));
//! ```

pub mod audit;
pub mod compiled;
pub mod crashtest;
pub mod engine;
pub mod event;
pub mod interp;
pub mod journal;
pub mod metrics;
pub mod navigator;
pub mod optimize;
pub mod org;
pub mod recovery;
pub mod registry;
pub mod state;
pub mod worklist;

pub use compiled::{spec_hash_of, ActId, CompiledProcess, CompiledScope, EdgeId, IdPath};
pub use crashtest::{CrashPointResult, SweepConfig, SweepReport, SweepScript};
pub use engine::{Engine, EngineConfig, EngineError, MigrationOutcome};
pub use event::{Event, InstanceId, InstanceSnapshot, WorkItemId};
pub use interp::RefEngine;
pub use journal::Journal;
pub use metrics::{DbMetrics, EngineMetrics, LatencySummary};
pub use optimize::{OptStats, ScopeFacts};
pub use org::{OrgModel, Person};
pub use recovery::{recover, recover_from, recover_with_policy, RecoveryError};
pub use registry::TemplateVersion;
pub use state::{ActState, ActivityRt, Instance, InstanceStatus, ScopeState};
pub use wfms_observe::Observer;
pub use worklist::{WorkItem, WorkItemState, WorklistError, WorklistStore};
