//! Run-time state of process instances.
//!
//! §3.2 fixes the activity lifecycle: *ready* → *running* → *finished*
//! (execution completed) → *terminated* (completed and exit condition
//! satisfied). We add the implicit pre-state *waiting* (start
//! condition not yet met); activities removed by dead path elimination
//! go straight from waiting to terminated with `executed = false`.
//!
//! Live state is a [`StateSlab`]: one struct-of-arrays arena over the
//! compiled template's **global slots** (see
//! [`ScopeLayout`]). Each state column —
//! lifecycle state, attempt counter, deadline bookkeeping, containers,
//! connector values — is a single contiguous vector allocated once per
//! instance, so steady-state navigation indexes cache-linear columns
//! and never allocates. Scope nesting is flattened: a block's child
//! scope is a slot range plus a liveness bit, not a heap-allocated
//! subtree.
//!
//! [`ScopeState`] remains as the *interchange* tree: the serialized
//! form used by `EngineCheckpoint` snapshots (and tooling) is the same
//! scope tree it always was — [`Instance::snapshot_root`] and
//! [`Instance::restore_root`] convert losslessly, keeping checkpoint
//! bytes identical to the historical tree-backed representation.

use crate::compiled::{ActId, CompiledProcess, CompiledScope, IdPath, ScopeId, ScopeLayout};
use crate::event::InstanceId;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use txn_substrate::Tick;
use wfms_model::{Container, ProcessDefinition};

/// Lifecycle state of one activity instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActState {
    /// Start condition not yet met.
    Waiting,
    /// Eligible to run (on a worklist if manual).
    Ready,
    /// Currently executing (for a block: the child scope is active).
    Running,
    /// Execution completed; exit condition not yet decided.
    Finished,
    /// Final: either executed successfully or removed by dead path
    /// elimination (see [`ActivityRt::executed`]).
    Terminated,
}

/// Run-time record of one activity — the *interchange* form used in
/// [`ScopeState`] snapshots. Live state lives in [`StateSlab`]
/// columns; this struct is assembled on demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityRt {
    /// Current lifecycle state.
    pub state: ActState,
    /// Meaningful when `Terminated`: true if the activity actually
    /// ran; false if dead path elimination removed it.
    pub executed: bool,
    /// Zero-based attempt counter (incremented by exit-condition
    /// reschedules).
    pub attempt: u32,
    /// Materialised input container (valid from `Running` on).
    pub input: Container,
    /// Output container (valid from `Finished` on; contains `RC`).
    pub output: Container,
    /// Tick at which the activity last became ready (deadline base).
    pub ready_since: Option<Tick>,
    /// A deadline notification has been sent for the current readiness
    /// period.
    pub notified: bool,
}

impl ActivityRt {
    /// Fresh waiting activity.
    pub fn new() -> Self {
        Self {
            state: ActState::Waiting,
            executed: false,
            attempt: 0,
            input: Container::empty(),
            output: Container::empty(),
            ready_since: None,
            notified: false,
        }
    }

    /// True once the activity reached its final state.
    pub fn is_terminated(&self) -> bool {
        self.state == ActState::Terminated
    }
}

impl Default for ActivityRt {
    fn default() -> Self {
        Self::new()
    }
}

/// Serialized state of one (sub)process scope, indexed by the compiled
/// template's dense ids — the interchange tree for checkpoints,
/// snapshots and tests. The live navigator runs on [`StateSlab`]
/// columns instead; [`Instance::snapshot_root`] /
/// [`Instance::restore_root`] convert between the two.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScopeState {
    /// Per-activity state, indexed by [`ActId`].
    pub activities: Vec<ActivityRt>,
    /// Evaluated transition-condition values, indexed by
    /// [`crate::compiled::EdgeId`]. `None` = not yet evaluated.
    pub connectors: Vec<Option<bool>>,
    /// The scope's input container (process input, or the block
    /// activity's materialised input).
    pub input: Container,
    /// The scope's output container, filled by data connectors to
    /// `PROCESS.OUTPUT` as activities terminate.
    pub output: Container,
    /// Child scopes of block activities that have started, as
    /// `(block ActId, state)` pairs sorted by id. (A vector of pairs,
    /// not a map, so the serialized form has string-free keys — JSON
    /// maps require string keys.)
    pub children: Vec<(ActId, ScopeState)>,
}

impl ScopeState {
    /// Initialises a scope for a compiled template: all activities
    /// waiting, containers at schema defaults, no connector values.
    pub fn for_scope(scope: &CompiledScope) -> Self {
        Self {
            activities: vec![ActivityRt::new(); scope.acts.len()],
            connectors: vec![None; scope.edges.len()],
            input: scope.input.instantiate(),
            output: scope.output.instantiate(),
            children: Vec::new(),
        }
    }

    /// Initialises a scope straight from a definition (same layout:
    /// ids are declaration positions). Kept for tests and tooling that
    /// have no compiled template at hand.
    pub fn for_definition(def: &ProcessDefinition) -> Self {
        Self {
            activities: vec![ActivityRt::new(); def.activities.len()],
            connectors: vec![None; def.control.len()],
            input: def.input.instantiate(),
            output: def.output.instantiate(),
            children: Vec::new(),
        }
    }

    /// The runtime record of activity `id`.
    #[inline]
    pub fn rt(&self, id: ActId) -> &ActivityRt {
        &self.activities[id as usize]
    }

    /// Mutable variant of [`ScopeState::rt`].
    #[inline]
    pub fn rt_mut(&mut self, id: ActId) -> &mut ActivityRt {
        &mut self.activities[id as usize]
    }

    /// The child scope of block `id`, if started.
    pub fn child(&self, id: ActId) -> Option<&ScopeState> {
        self.children
            .binary_search_by_key(&id, |(i, _)| *i)
            .ok()
            .map(|i| &self.children[i].1)
    }

    /// Mutable variant of [`ScopeState::child`].
    pub fn child_mut(&mut self, id: ActId) -> Option<&mut ScopeState> {
        self.children
            .binary_search_by_key(&id, |(i, _)| *i)
            .ok()
            .map(|i| &mut self.children[i].1)
    }

    /// Inserts or replaces the child scope of block `id`.
    pub fn set_child(&mut self, id: ActId, state: ScopeState) {
        match self.children.binary_search_by_key(&id, |(i, _)| *i) {
            Ok(i) => self.children[i].1 = state,
            Err(i) => self.children.insert(i, (id, state)),
        }
    }

    /// Removes the child scope of block `id`.
    pub fn remove_child(&mut self, id: ActId) {
        if let Ok(i) = self.children.binary_search_by_key(&id, |(i, _)| *i) {
            self.children.remove(i);
        }
    }

    /// True when every activity reached `Terminated` — the §3.2
    /// completion rule ("the process is considered finished when all
    /// its activities are in the terminated state").
    pub fn all_terminated(&self) -> bool {
        self.activities.iter().all(ActivityRt::is_terminated)
    }

    /// Connector value if already evaluated.
    #[inline]
    pub fn connector_value(&self, edge: crate::compiled::EdgeId) -> Option<bool> {
        self.connectors[edge as usize]
    }
}

/// Overall status of a process instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceStatus {
    /// Navigation in progress (possibly idle waiting on humans).
    Running,
    /// Every activity terminated; output container final.
    Finished,
    /// Cancelled by an operator.
    Cancelled,
}

/// Struct-of-arrays arena holding one instance's entire run-time
/// state, indexed by the template's global slots
/// ([`ScopeLayout`]). Every column is one contiguous vector sized at
/// instance creation; opening, closing and resetting block scopes are
/// range operations on the columns (subtrees are contiguous slot
/// ranges by preorder construction) — no per-scope allocation.
#[derive(Debug, Clone)]
pub struct StateSlab {
    /// Per act slot: lifecycle state.
    pub(crate) state: Vec<ActState>,
    /// Per act slot: executed flag (meaningful when terminated).
    pub(crate) executed: Vec<bool>,
    /// Per act slot: deadline notification sent this readiness period.
    pub(crate) notified: Vec<bool>,
    /// Per act slot: attempt counter.
    pub(crate) attempt: Vec<u32>,
    /// Per act slot: tick of last readiness (deadline base).
    pub(crate) ready_since: Vec<Option<Tick>>,
    /// Per act slot: materialised input container.
    pub(crate) input: Vec<Container>,
    /// Per act slot: output container.
    pub(crate) output: Vec<Container>,
    /// Per edge slot: evaluated transition-condition value.
    pub(crate) connectors: Vec<Option<bool>>,
    /// Per scope: the scope is open — its block activity started it
    /// and no reschedule closed it since. The root is always open.
    /// (Mirrors child-scope membership in the historical tree: a
    /// completed block's scope stays open for inspection; only a
    /// reschedule closes it.)
    pub(crate) scope_live: Vec<bool>,
    /// Per scope: activities not yet terminated — the §3.2 completion
    /// rule as a counter instead of a scan.
    pub(crate) remaining: Vec<u32>,
    /// Per scope: input container.
    pub(crate) scope_input: Vec<Container>,
    /// Per scope: output container.
    pub(crate) scope_output: Vec<Container>,
}

impl StateSlab {
    fn for_layout(layout: &ScopeLayout) -> Self {
        let na = layout.n_acts();
        let ne = layout.n_edges();
        let ns = layout.n_scopes();
        Self {
            state: vec![ActState::Waiting; na],
            executed: vec![false; na],
            notified: vec![false; na],
            attempt: vec![0; na],
            ready_since: vec![None; na],
            input: vec![Container::empty(); na],
            output: vec![Container::empty(); na],
            connectors: vec![None; ne],
            scope_live: vec![false; ns],
            remaining: vec![0; ns],
            scope_input: vec![Container::empty(); ns],
            scope_output: vec![Container::empty(); ns],
        }
    }
}

/// One process instance: a compiled template plus its state slab and a
/// ready queue of automatic activities.
///
/// The ready queue is a min-heap of execution **ranks**
/// ([`ScopeLayout::rank`]): rank order is lexicographic id-path order,
/// which equals the navigator's historical depth-first
/// declaration-order scan, so popping the heap reproduces the exact
/// sequential execution order — journals stay byte-for-byte identical
/// — with `u32` comparisons and no per-entry allocation. Entries are
/// validated lazily at pop time; stale ones (the activity moved on, or
/// its enclosing block closed) are discarded.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance identifier.
    pub id: InstanceId,
    /// The compiled template this instance runs.
    pub tpl: Arc<CompiledProcess>,
    /// The state arena.
    pub(crate) slab: StateSlab,
    /// Overall status.
    pub status: InstanceStatus,
    /// Owning tenant, when the instance was started under one.
    /// Journalled on `InstanceStarted` and carried through snapshots,
    /// so recovery restores it.
    pub tenant: Option<String>,
    /// Ready automatic activities as execution ranks (min-heap; may
    /// hold stale entries).
    pub(crate) ready: BinaryHeap<Reverse<u32>>,
    /// Pre-resolved latency probes for this instance's template; `None`
    /// unless the owning engine's observer is enabled. Runtime-only —
    /// never serialised into snapshots or the journal.
    pub(crate) probes: Option<Arc<crate::metrics::ScopeProbes>>,
}

impl Instance {
    /// Creates a fresh instance of `tpl`.
    pub fn new(id: InstanceId, tpl: Arc<CompiledProcess>) -> Self {
        let slab = StateSlab::for_layout(&tpl.layout);
        let mut inst = Self {
            id,
            tpl,
            slab,
            status: InstanceStatus::Running,
            tenant: None,
            ready: BinaryHeap::new(),
            probes: None,
        };
        inst.open_scope(0);
        inst
    }

    /// The source process definition.
    pub fn def(&self) -> &Arc<ProcessDefinition> {
        &self.tpl.def
    }

    /// The root scope's input container.
    pub fn root_input(&self) -> &Container {
        &self.slab.scope_input[0]
    }

    /// Mutable variant of [`Instance::root_input`].
    pub fn root_input_mut(&mut self) -> &mut Container {
        &mut self.slab.scope_input[0]
    }

    /// The root scope's output container (the process output).
    pub fn root_output(&self) -> &Container {
        &self.slab.scope_output[0]
    }

    /// Mutable variant of [`Instance::root_output`].
    pub fn root_output_mut(&mut self) -> &mut Container {
        &mut self.slab.scope_output[0]
    }

    /// (Re)opens scope `s`: resets the subtree's slot ranges to fresh
    /// waiting state, closes stale descendant scopes and installs the
    /// scope's container prototypes. Pure range operations on the
    /// slab's columns.
    pub(crate) fn open_scope(&mut self, s: ScopeId) {
        let tpl = Arc::clone(&self.tpl);
        let lay = &tpl.layout;
        let ar = lay.subtree_act_range(s);
        self.slab.state[ar.clone()].fill(ActState::Waiting);
        self.slab.executed[ar.clone()].fill(false);
        self.slab.notified[ar.clone()].fill(false);
        self.slab.attempt[ar.clone()].fill(0);
        self.slab.ready_since[ar.clone()].fill(None);
        for i in ar {
            self.slab.input[i] = Container::empty();
            self.slab.output[i] = Container::empty();
        }
        self.slab.connectors[lay.subtree_edge_range(s)].fill(None);
        for sc in lay.subtree_scope_range(s) {
            self.slab.scope_live[sc] = sc == s as usize;
        }
        let m = lay.scope(s);
        self.slab.remaining[s as usize] = m.cs.acts.len() as u32;
        self.slab.scope_input[s as usize] = m.input_proto.clone();
        self.slab.scope_output[s as usize] = m.output_proto.clone();
    }

    /// Closes scope `s` and every descendant (a rescheduled block
    /// discards its child scope; a fresh one opens on restart).
    pub(crate) fn close_scope(&mut self, s: ScopeId) {
        let tpl = Arc::clone(&self.tpl);
        for sc in tpl.layout.subtree_scope_range(s) {
            self.slab.scope_live[sc] = false;
        }
    }

    /// Sets the lifecycle state of `slot`, maintaining the owning
    /// scope's non-terminated counter.
    pub(crate) fn set_act_state(&mut self, slot: u32, new: ActState) {
        let s = self.tpl.layout.owner[slot as usize] as usize;
        let old = self.slab.state[slot as usize];
        if old != ActState::Terminated && new == ActState::Terminated {
            self.slab.remaining[s] = self.slab.remaining[s].saturating_sub(1);
        } else if old == ActState::Terminated && new != ActState::Terminated {
            self.slab.remaining[s] += 1;
        }
        self.slab.state[slot as usize] = new;
    }

    /// Resolves a prefix of block ids to the **open** scope it
    /// addresses: every prefix element must name a block whose child
    /// scope is live — the slab equivalent of walking the historical
    /// child-scope tree.
    pub(crate) fn live_scope_of(&self, scope_ids: &[ActId]) -> Option<ScopeId> {
        let lay = &self.tpl.layout;
        let mut s: ScopeId = 0;
        for &id in scope_ids {
            let m = lay.scope(s);
            if (id as usize) >= m.cs.acts.len() {
                return None;
            }
            let c = lay.block_child[(m.act_base + id) as usize]?;
            if !self.slab.scope_live[c as usize] {
                return None;
            }
            s = c;
        }
        Some(s)
    }

    /// Resolves a full [`IdPath`] to its global act slot, requiring
    /// every enclosing scope to be open.
    pub(crate) fn live_slot_of(&self, ids: &[ActId]) -> Option<u32> {
        let (&last, scope_ids) = ids.split_last()?;
        let s = self.live_scope_of(scope_ids)?;
        let m = self.tpl.layout.scope(s);
        ((last as usize) < m.cs.acts.len()).then(|| m.act_base + last)
    }

    /// True when scope `s` is actively executing: it is open and every
    /// enclosing block activity is `Running` with an open child scope.
    pub(crate) fn scope_active(&self, s: ScopeId) -> bool {
        let lay = &self.tpl.layout;
        let mut s = s;
        loop {
            if !self.slab.scope_live[s as usize] {
                return false;
            }
            match lay.scope(s).parent {
                None => return true,
                Some((ps, pslot)) => {
                    if self.slab.state[pslot as usize] != ActState::Running {
                        return false;
                    }
                    s = ps;
                }
            }
        }
    }

    /// True when every enclosing block of `slot` is `Running` with an
    /// open child scope — the validity condition for queued ready
    /// entries and recovered state alike.
    pub(crate) fn ancestors_open(&self, slot: u32) -> bool {
        self.scope_active(self.tpl.layout.owner[slot as usize])
    }

    /// The runtime record of the activity at `path` (scope ids plus
    /// the activity id as the last element), assembled from the slab
    /// columns. Container clones are reference-count bumps.
    pub fn activity_rt(&self, path: &[ActId]) -> Option<ActivityRt> {
        let slot = self.live_slot_of(path)? as usize;
        let s = &self.slab;
        Some(ActivityRt {
            state: s.state[slot],
            executed: s.executed[slot],
            attempt: s.attempt[slot],
            input: s.input[slot].clone(),
            output: s.output[slot].clone(),
            ready_since: s.ready_since[slot],
            notified: s.notified[slot],
        })
    }

    /// Resolves a slash-separated name path to an [`IdPath`].
    pub fn resolve_names(&self, segs: &[String]) -> Option<IdPath> {
        self.tpl.resolve_path(segs)
    }

    /// Renders an [`IdPath`] as the slash-separated journal form.
    pub fn path_string(&self, ids: &[ActId]) -> String {
        self.tpl.path_string(ids)
    }

    /// Queues a ready automatic activity by its execution rank.
    pub(crate) fn push_ready(&mut self, rank: u32) {
        self.ready.push(Reverse(rank));
    }

    /// Rebuilds the ready queue from the slab — used after recovery
    /// replay and checkpoint restore, which mutate state without
    /// navigating.
    pub(crate) fn rebuild_ready(&mut self) {
        let tpl = Arc::clone(&self.tpl);
        let lay = &tpl.layout;
        let mut ready = BinaryHeap::new();
        for slot in 0..lay.n_acts() {
            if self.slab.state[slot] == ActState::Ready
                && lay.automatic[slot]
                && self.ancestors_open(slot as u32)
            {
                ready.push(Reverse(lay.rank[slot]));
            }
        }
        self.ready = ready;
    }

    /// Snapshots the slab as the interchange scope tree (checkpoints,
    /// inspection). Open child scopes become tree children, exactly as
    /// the historical tree-backed state serialized.
    pub fn snapshot_root(&self) -> ScopeState {
        self.snap_scope(0)
    }

    fn snap_scope(&self, s: ScopeId) -> ScopeState {
        let lay = &self.tpl.layout;
        let m = lay.scope(s);
        let base = m.act_base as usize;
        let n = m.cs.acts.len();
        let sl = &self.slab;
        let mut st = ScopeState {
            activities: (base..base + n)
                .map(|i| ActivityRt {
                    state: sl.state[i],
                    executed: sl.executed[i],
                    attempt: sl.attempt[i],
                    input: sl.input[i].clone(),
                    output: sl.output[i].clone(),
                    ready_since: sl.ready_since[i],
                    notified: sl.notified[i],
                })
                .collect(),
            connectors: sl.connectors
                [m.edge_base as usize..m.edge_base as usize + m.cs.edges.len()]
                .to_vec(),
            input: sl.scope_input[s as usize].clone(),
            output: sl.scope_output[s as usize].clone(),
            children: Vec::new(),
        };
        for i in 0..n {
            if let Some(c) = lay.block_child[base + i] {
                if sl.scope_live[c as usize] {
                    st.children.push((i as ActId, self.snap_scope(c)));
                }
            }
        }
        st
    }

    /// Restores the slab from an interchange scope tree (checkpoint
    /// replay). The tree must describe this instance's template.
    pub fn restore_root(&mut self, root: &ScopeState) {
        self.open_scope(0);
        self.restore_scope(0, root);
    }

    fn restore_scope(&mut self, s: ScopeId, st: &ScopeState) {
        let tpl = Arc::clone(&self.tpl);
        let lay = &tpl.layout;
        let m = lay.scope(s);
        let base = m.act_base as usize;
        let n = m.cs.acts.len();
        self.slab.scope_live[s as usize] = true;
        let mut remaining = n as u32;
        for (i, rt) in st.activities.iter().enumerate().take(n) {
            let slot = base + i;
            self.slab.state[slot] = rt.state;
            self.slab.executed[slot] = rt.executed;
            self.slab.attempt[slot] = rt.attempt;
            self.slab.input[slot] = rt.input.clone();
            self.slab.output[slot] = rt.output.clone();
            self.slab.ready_since[slot] = rt.ready_since;
            self.slab.notified[slot] = rt.notified;
            if rt.state == ActState::Terminated {
                remaining -= 1;
            }
        }
        self.slab.remaining[s as usize] = remaining;
        for (e, v) in st.connectors.iter().enumerate().take(m.cs.edges.len()) {
            self.slab.connectors[m.edge_base as usize + e] = *v;
        }
        self.slab.scope_input[s as usize] = st.input.clone();
        self.slab.scope_output[s as usize] = st.output.clone();
        for (id, child) in &st.children {
            if let Some(Some(c)) = lay.block_child.get(base + *id as usize).copied() {
                self.restore_scope(c, child);
            }
        }
    }

    /// Builds this instance's state transferred onto template `to` —
    /// the `migrate-at-scope-boundary` state transfer. Activities and
    /// connectors are matched **by name**, never by position: a new
    /// version may insert, remove or reorder declarations, and a
    /// positional copy (what [`Instance::restore_root`] does for
    /// same-template checkpoints) would silently land state on the
    /// wrong activities.
    ///
    /// Refused (`Err` with the reason) unless the instance is at a
    /// scope boundary — no activity mid-execution and no nested block
    /// scope in flight — and every *begun* activity has a same-named
    /// counterpart in `to`. Pristine activities (waiting, first
    /// attempt, never notified) that the new version dropped are
    /// simply absent afterwards; activities the new version adds start
    /// out waiting and owe navigation, which the caller repairs with
    /// the recovery fix-up pass. Deterministic: same source state and
    /// target template, same result — replaying a journalled
    /// `Migrated` event re-applies the identical transfer.
    pub(crate) fn migrate_to(&self, to: &Arc<CompiledProcess>) -> Result<Instance, String> {
        let old_lay = &self.tpl.layout;
        for slot in 0..old_lay.n_acts() {
            if self.slab.state[slot] == ActState::Running {
                let p: &str = &old_lay.paths[slot];
                return Err(format!(
                    "activity {p:?} is mid-flight; instance is not at a scope boundary"
                ));
            }
        }
        let old_m = old_lay.scope(0);
        let new_lay = &to.layout;
        let new_m = new_lay.scope(0);
        let mut out = Instance::new(self.id, Arc::clone(to));
        out.status = self.status;
        // Root containers, member-wise into the new prototypes (a
        // member the new version dropped is discarded with it).
        for (k, v) in self.slab.scope_input[0].iter() {
            out.slab.scope_input[0].set(k, v.clone());
        }
        for (k, v) in self.slab.scope_output[0].iter() {
            out.slab.scope_output[0].set(k, v.clone());
        }
        for (i, act) in old_m.cs.acts.iter().enumerate() {
            let sl = old_m.act_base as usize + i;
            let state = self.slab.state[sl];
            let pristine =
                state == ActState::Waiting && self.slab.attempt[sl] == 0 && !self.slab.notified[sl];
            let Some(nid) = new_m.cs.id(&act.name) else {
                if pristine {
                    continue;
                }
                return Err(format!(
                    "activity {:?} has begun ({state:?}) and has no counterpart in version {}",
                    act.name,
                    to.version()
                ));
            };
            let nsl = new_lay.slot(0, nid) as usize;
            out.set_act_state(nsl as u32, state);
            out.slab.executed[nsl] = self.slab.executed[sl];
            out.slab.attempt[nsl] = self.slab.attempt[sl];
            out.slab.ready_since[nsl] = self.slab.ready_since[sl];
            out.slab.notified[nsl] = self.slab.notified[sl];
            out.slab.input[nsl] = self.slab.input[sl].clone();
            out.slab.output[nsl] = self.slab.output[sl].clone();
        }
        // Evaluated connectors carry over where the same named edge
        // exists in both versions; edges only one side has stay (or
        // start) unevaluated.
        for (e, edge) in old_m.cs.edges.iter().enumerate() {
            let Some(v) = self.slab.connectors[old_m.edge_base as usize + e] else {
                continue;
            };
            let from = &old_m.cs.act(edge.from).name;
            let to_name = &old_m.cs.act(edge.to).name;
            if let Some(ne) = new_m.cs.edge_id(from, to_name) {
                out.slab.connectors[(new_m.edge_base + ne) as usize] = Some(v);
            }
        }
        out.rebuild_ready();
        Ok(out)
    }
}

/// Joins a path as the slash-separated form used in journal events.
pub fn join_path(path: &[String]) -> String {
    path.join("/")
}

/// Splits a slash-separated journal path back into segments.
pub fn split_path(path: &str) -> Vec<String> {
    if path.is_empty() {
        Vec::new()
    } else {
        path.split('/').map(|s| s.to_owned()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_model::{Activity, ProcessBuilder};

    fn def_with_block() -> ProcessDefinition {
        let inner = ProcessBuilder::new("inner")
            .program("X", "px")
            .build()
            .unwrap();
        ProcessBuilder::new("outer")
            .program("A", "pa")
            .block("B", inner)
            .connect("A", "B")
            .build()
            .unwrap()
    }

    fn tpl() -> Arc<CompiledProcess> {
        Arc::new(CompiledProcess::compile(def_with_block()))
    }

    #[test]
    fn fresh_scope_is_waiting() {
        let s = ScopeState::for_definition(&def_with_block());
        assert_eq!(s.activities.len(), 2);
        assert!(s.activities.iter().all(|a| a.state == ActState::Waiting));
        assert!(!s.all_terminated());
        assert_eq!(s.connectors, vec![None]);
    }

    #[test]
    fn for_scope_matches_for_definition_layout() {
        let t = tpl();
        let a = ScopeState::for_scope(&t.root);
        let b = ScopeState::for_definition(&def_with_block());
        assert_eq!(a, b);
    }

    #[test]
    fn all_terminated_counts_every_activity() {
        let mut s = ScopeState::for_definition(&def_with_block());
        for a in &mut s.activities {
            a.state = ActState::Terminated;
        }
        assert!(s.all_terminated());
    }

    #[test]
    fn fresh_instance_snapshot_matches_tree_construction() {
        let t = tpl();
        let inst = Instance::new(InstanceId(1), Arc::clone(&t));
        assert_eq!(inst.snapshot_root(), ScopeState::for_scope(&t.root));
    }

    #[test]
    fn live_resolution_requires_open_scopes() {
        let t = tpl();
        let mut inst = Instance::new(InstanceId(1), Arc::clone(&t));
        let b = t.root.id("B").unwrap();
        // Child scope not started yet.
        assert!(inst.live_scope_of(&[b]).is_none());
        assert!(inst.activity_rt(&[b, 0]).is_none(), "child not started");
        // Open it.
        let c = t.layout.block_child[t.layout.slot_of(&[b]).unwrap() as usize].unwrap();
        inst.open_scope(c);
        let s = inst.live_scope_of(&[b]).unwrap();
        assert_eq!(&*t.layout.scope(s).cs.name, "inner");
        assert!(inst.activity_rt(&[b, 0]).is_some());
        // Non-block path segment fails.
        let a = t.root.id("A").unwrap();
        assert!(inst.live_scope_of(&[a]).is_none());
        assert!(inst.live_scope_of(&[9]).is_none());
    }

    #[test]
    fn activity_rt_lookup_by_path() {
        let t = tpl();
        let inst = Instance::new(InstanceId(1), t);
        assert!(inst.activity_rt(&[0]).is_some());
        assert!(inst.activity_rt(&[1, 0]).is_none(), "child not started");
        assert!(inst.activity_rt(&[]).is_none());
    }

    #[test]
    fn children_sorted_and_replaceable() {
        let mut s = ScopeState::default();
        s.set_child(3, ScopeState::default());
        s.set_child(1, ScopeState::default());
        assert_eq!(s.children[0].0, 1);
        assert_eq!(s.children[1].0, 3);
        assert!(s.child(1).is_some());
        assert!(s.child(2).is_none());
        s.remove_child(1);
        assert!(s.child(1).is_none());
        assert_eq!(s.children.len(), 1);
    }

    #[test]
    fn rebuild_ready_finds_nested_ready_autos() {
        let t = tpl();
        let mut inst = Instance::new(InstanceId(1), Arc::clone(&t));
        let lay = &t.layout;
        let b = t.root.id("B").unwrap();
        let b_slot = lay.slot_of(&[b]).unwrap();
        let c = lay.block_child[b_slot as usize].unwrap();
        inst.slab.state[b_slot as usize] = ActState::Running;
        inst.open_scope(c);
        let x_slot = lay.slot_of(&[b, 0]).unwrap();
        inst.slab.state[x_slot as usize] = ActState::Ready;
        inst.slab.state[lay.slot_of(&[0]).unwrap() as usize] = ActState::Ready;
        inst.rebuild_ready();
        let mut popped = Vec::new();
        while let Some(Reverse(r)) = inst.ready.pop() {
            popped.push(lay.id_paths[lay.rank_to_slot[r as usize] as usize].clone());
        }
        assert_eq!(popped, vec![vec![0], vec![b, 0]]);
    }

    #[test]
    fn close_scope_invalidates_ready_entries() {
        let t = tpl();
        let mut inst = Instance::new(InstanceId(1), Arc::clone(&t));
        let lay = &t.layout;
        let b_slot = lay.slot_of(&[1]).unwrap();
        let c = lay.block_child[b_slot as usize].unwrap();
        inst.slab.state[b_slot as usize] = ActState::Running;
        inst.open_scope(c);
        let x_slot = lay.slot_of(&[1, 0]).unwrap();
        inst.slab.state[x_slot as usize] = ActState::Ready;
        assert!(inst.ancestors_open(x_slot));
        inst.close_scope(c);
        assert!(!inst.ancestors_open(x_slot));
    }

    #[test]
    fn set_act_state_maintains_remaining() {
        let t = tpl();
        let mut inst = Instance::new(InstanceId(1), t);
        assert_eq!(inst.slab.remaining[0], 2);
        inst.set_act_state(0, ActState::Terminated);
        assert_eq!(inst.slab.remaining[0], 1);
        inst.set_act_state(0, ActState::Terminated);
        assert_eq!(inst.slab.remaining[0], 1, "idempotent");
        inst.set_act_state(0, ActState::Waiting);
        assert_eq!(inst.slab.remaining[0], 2);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let t = tpl();
        let mut inst = Instance::new(InstanceId(1), Arc::clone(&t));
        let lay = &t.layout;
        let b_slot = lay.slot_of(&[1]).unwrap();
        let c = lay.block_child[b_slot as usize].unwrap();
        inst.set_act_state(0, ActState::Terminated);
        inst.slab.executed[0] = true;
        inst.slab.attempt[0] = 2;
        inst.slab.connectors[0] = Some(true);
        inst.slab.state[b_slot as usize] = ActState::Running;
        inst.open_scope(c);
        let snap = inst.snapshot_root();
        assert_eq!(snap.children.len(), 1, "open child scope serialized");

        let mut back = Instance::new(InstanceId(2), Arc::clone(&t));
        back.restore_root(&snap);
        assert_eq!(back.snapshot_root(), snap);
        assert_eq!(back.slab.remaining[0], 1);
        assert!(back.slab.scope_live[c as usize]);
    }

    #[test]
    fn path_join_split_round_trip() {
        let p = vec!["Fwd".to_string(), "T1".to_string()];
        assert_eq!(join_path(&p), "Fwd/T1");
        assert_eq!(split_path("Fwd/T1"), p);
        assert_eq!(split_path(""), Vec::<String>::new());
        assert_eq!(join_path(&[]), "");
    }

    #[test]
    fn non_block_activity_cannot_be_scope() {
        let def = ProcessBuilder::new("p")
            .activity(Activity::program("A", "pa"))
            .build()
            .unwrap();
        let inst = Instance::new(InstanceId(1), Arc::new(CompiledProcess::compile(def)));
        assert!(inst.live_scope_of(&[0]).is_none());
    }

    #[test]
    fn serde_round_trip_of_scope_state() {
        let t = tpl();
        let mut s = ScopeState::for_scope(&t.root);
        s.connectors[0] = Some(true);
        s.set_child(1, ScopeState::default());
        let json = serde_json::to_string(&s).unwrap();
        let back: ScopeState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
