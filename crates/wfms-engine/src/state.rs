//! Run-time state of process instances.
//!
//! §3.2 fixes the activity lifecycle: *ready* → *running* → *finished*
//! (execution completed) → *terminated* (completed and exit condition
//! satisfied). We add the implicit pre-state *waiting* (start
//! condition not yet met); activities removed by dead path elimination
//! go straight from waiting to terminated with `executed = false`.
//!
//! A [`ScopeState`] holds the state of one (sub)process: the paper's
//! blocks are processes embedded as activities, so an instance is a
//! tree of scopes mirroring the block nesting of its definition.

use crate::event::InstanceId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use txn_substrate::Tick;
use wfms_model::{Container, ProcessDefinition};

/// Lifecycle state of one activity instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActState {
    /// Start condition not yet met.
    Waiting,
    /// Eligible to run (on a worklist if manual).
    Ready,
    /// Currently executing (for a block: the child scope is active).
    Running,
    /// Execution completed; exit condition not yet decided.
    Finished,
    /// Final: either executed successfully or removed by dead path
    /// elimination (see [`ActivityRt::executed`]).
    Terminated,
}

/// Run-time record of one activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityRt {
    /// Current lifecycle state.
    pub state: ActState,
    /// Meaningful when `Terminated`: true if the activity actually
    /// ran; false if dead path elimination removed it.
    pub executed: bool,
    /// Zero-based attempt counter (incremented by exit-condition
    /// reschedules).
    pub attempt: u32,
    /// Materialised input container (valid from `Running` on).
    pub input: Container,
    /// Output container (valid from `Finished` on; contains `RC`).
    pub output: Container,
    /// Tick at which the activity last became ready (deadline base).
    pub ready_since: Option<Tick>,
    /// A deadline notification has been sent for the current readiness
    /// period.
    pub notified: bool,
}

impl ActivityRt {
    /// Fresh waiting activity.
    pub fn new() -> Self {
        Self {
            state: ActState::Waiting,
            executed: false,
            attempt: 0,
            input: Container::empty(),
            output: Container::empty(),
            ready_since: None,
            notified: false,
        }
    }

    /// True once the activity reached its final state.
    pub fn is_terminated(&self) -> bool {
        self.state == ActState::Terminated
    }
}

impl Default for ActivityRt {
    fn default() -> Self {
        Self::new()
    }
}

/// Run-time state of one (sub)process scope.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScopeState {
    /// Per-activity state, keyed by activity name.
    pub activities: BTreeMap<String, ActivityRt>,
    /// Evaluated transition-condition values, keyed by `(from, to)`.
    /// Absent = not yet evaluated.
    pub connectors: BTreeMap<(String, String), bool>,
    /// The scope's input container (process input, or the block
    /// activity's materialised input).
    pub input: Container,
    /// The scope's output container, filled by data connectors to
    /// `PROCESS.OUTPUT` as activities terminate.
    pub output: Container,
    /// Child scopes of block activities that have started, keyed by
    /// the block activity's name.
    pub children: BTreeMap<String, ScopeState>,
}

impl ScopeState {
    /// Initialises a scope for `def`: all activities waiting,
    /// containers at schema defaults, no connector values.
    pub fn for_definition(def: &ProcessDefinition) -> Self {
        Self {
            activities: def
                .activities
                .iter()
                .map(|a| (a.name.clone(), ActivityRt::new()))
                .collect(),
            connectors: BTreeMap::new(),
            input: def.input.instantiate(),
            output: def.output.instantiate(),
            children: BTreeMap::new(),
        }
    }

    /// True when every activity reached `Terminated` — the §3.2
    /// completion rule ("the process is considered finished when all
    /// its activities are in the terminated state").
    pub fn all_terminated(&self) -> bool {
        self.activities.values().all(ActivityRt::is_terminated)
    }

    /// Connector value if already evaluated.
    pub fn connector_value(&self, from: &str, to: &str) -> Option<bool> {
        self.connectors
            .get(&(from.to_owned(), to.to_owned()))
            .copied()
    }
}

/// Overall status of a process instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceStatus {
    /// Navigation in progress (possibly idle waiting on humans).
    Running,
    /// Every activity terminated; output container final.
    Finished,
    /// Cancelled by an operator.
    Cancelled,
}

/// One process instance: a definition plus its scope tree.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance identifier.
    pub id: InstanceId,
    /// The (validated) process template this instance runs.
    pub def: Arc<ProcessDefinition>,
    /// Root scope state.
    pub root: ScopeState,
    /// Overall status.
    pub status: InstanceStatus,
}

impl Instance {
    /// Creates a fresh instance of `def`.
    pub fn new(id: InstanceId, def: Arc<ProcessDefinition>) -> Self {
        let root = ScopeState::for_definition(&def);
        Self {
            id,
            def,
            root,
            status: InstanceStatus::Running,
        }
    }

    /// Resolves the definition and mutable scope state addressed by
    /// `scope_path` (block names from the root; empty = root scope).
    /// Returns `None` if the path does not name nested blocks or the
    /// child scope has not started yet.
    pub fn resolve_mut(
        &mut self,
        scope_path: &[String],
    ) -> Option<(&ProcessDefinition, &mut ScopeState)> {
        let mut def: &ProcessDefinition = &self.def;
        let mut scope: &mut ScopeState = &mut self.root;
        for seg in scope_path {
            let act = def.activity(seg)?;
            let wfms_model::ActivityKind::Block { process } = &act.kind else {
                return None;
            };
            def = process;
            scope = scope.children.get_mut(seg)?;
        }
        Some((def, scope))
    }

    /// Immutable variant of [`Instance::resolve_mut`].
    pub fn resolve(
        &self,
        scope_path: &[String],
    ) -> Option<(&ProcessDefinition, &ScopeState)> {
        let mut def: &ProcessDefinition = &self.def;
        let mut scope: &ScopeState = &self.root;
        for seg in scope_path {
            let act = def.activity(seg)?;
            let wfms_model::ActivityKind::Block { process } = &act.kind else {
                return None;
            };
            def = process;
            scope = scope.children.get(seg)?;
        }
        Some((def, scope))
    }

    /// The runtime record of the activity at `path` (scope path +
    /// activity name as the last segment).
    pub fn activity_rt(&self, path: &[String]) -> Option<&ActivityRt> {
        let (name, scope_path) = path.split_last()?;
        let (_, scope) = self.resolve(scope_path)?;
        scope.activities.get(name)
    }
}

/// Joins a path as the slash-separated form used in journal events.
pub fn join_path(path: &[String]) -> String {
    path.join("/")
}

/// Splits a slash-separated journal path back into segments.
pub fn split_path(path: &str) -> Vec<String> {
    if path.is_empty() {
        Vec::new()
    } else {
        path.split('/').map(|s| s.to_owned()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_model::{Activity, ProcessBuilder};

    fn def_with_block() -> ProcessDefinition {
        let inner = ProcessBuilder::new("inner").program("X", "px").build().unwrap();
        ProcessBuilder::new("outer")
            .program("A", "pa")
            .block("B", inner)
            .connect("A", "B")
            .build()
            .unwrap()
    }

    #[test]
    fn fresh_scope_is_waiting() {
        let def = def_with_block();
        let s = ScopeState::for_definition(&def);
        assert_eq!(s.activities.len(), 2);
        assert!(s
            .activities
            .values()
            .all(|a| a.state == ActState::Waiting));
        assert!(!s.all_terminated());
    }

    #[test]
    fn all_terminated_counts_every_activity() {
        let def = def_with_block();
        let mut s = ScopeState::for_definition(&def);
        for a in s.activities.values_mut() {
            a.state = ActState::Terminated;
        }
        assert!(s.all_terminated());
    }

    #[test]
    fn resolve_walks_block_scopes() {
        let def = Arc::new(def_with_block());
        let mut inst = Instance::new(InstanceId(1), Arc::clone(&def));
        // Child scope not started yet.
        assert!(inst.resolve_mut(&["B".into()]).is_none());
        // Start it manually.
        let inner_def = match &def.activity("B").unwrap().kind {
            wfms_model::ActivityKind::Block { process } => process.clone(),
            _ => unreachable!(),
        };
        inst.root
            .children
            .insert("B".into(), ScopeState::for_definition(&inner_def));
        let (d, s) = inst.resolve_mut(&["B".into()]).unwrap();
        assert_eq!(d.name, "inner");
        assert!(s.activities.contains_key("X"));
        // Non-block path segment fails.
        assert!(inst.resolve_mut(&["A".into()]).is_none());
        assert!(inst.resolve(&["Ghost".into()]).is_none());
    }

    #[test]
    fn activity_rt_lookup_by_path() {
        let def = Arc::new(def_with_block());
        let inst = Instance::new(InstanceId(1), def);
        assert!(inst.activity_rt(&["A".into()]).is_some());
        assert!(inst.activity_rt(&["B".into(), "X".into()]).is_none());
        assert!(inst.activity_rt(&[]).is_none());
    }

    #[test]
    fn path_join_split_round_trip() {
        let p = vec!["Fwd".to_string(), "T1".to_string()];
        assert_eq!(join_path(&p), "Fwd/T1");
        assert_eq!(split_path("Fwd/T1"), p);
        assert_eq!(split_path(""), Vec::<String>::new());
        assert_eq!(join_path(&[]), "");
    }

    #[test]
    fn non_block_activity_cannot_be_scope() {
        let def = ProcessBuilder::new("p")
            .activity(Activity::program("A", "pa"))
            .build()
            .unwrap();
        let inst = Instance::new(InstanceId(1), Arc::new(def));
        assert!(inst.resolve(&["A".into()]).is_none());
    }
}
