//! Run-time state of process instances.
//!
//! §3.2 fixes the activity lifecycle: *ready* → *running* → *finished*
//! (execution completed) → *terminated* (completed and exit condition
//! satisfied). We add the implicit pre-state *waiting* (start
//! condition not yet met); activities removed by dead path elimination
//! go straight from waiting to terminated with `executed = false`.
//!
//! A [`ScopeState`] holds the state of one (sub)process: the paper's
//! blocks are processes embedded as activities, so an instance is a
//! tree of scopes mirroring the block nesting of its definition.
//!
//! State is indexed, not keyed: activity records live in a vector
//! indexed by the compiled template's dense [`ActId`]s, connector
//! values in a vector indexed by [`EdgeId`](crate::compiled::EdgeId) — the hot navigator paths
//! never touch a string map. Journal events still carry name paths
//! (the durable format is independent of compilation), and the
//! conversions live on [`Instance`].

use crate::compiled::{ActId, CompiledKind, CompiledProcess, CompiledScope, IdPath};
use crate::event::InstanceId;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use txn_substrate::Tick;
use wfms_model::{Container, ProcessDefinition};

/// Lifecycle state of one activity instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActState {
    /// Start condition not yet met.
    Waiting,
    /// Eligible to run (on a worklist if manual).
    Ready,
    /// Currently executing (for a block: the child scope is active).
    Running,
    /// Execution completed; exit condition not yet decided.
    Finished,
    /// Final: either executed successfully or removed by dead path
    /// elimination (see [`ActivityRt::executed`]).
    Terminated,
}

/// Run-time record of one activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityRt {
    /// Current lifecycle state.
    pub state: ActState,
    /// Meaningful when `Terminated`: true if the activity actually
    /// ran; false if dead path elimination removed it.
    pub executed: bool,
    /// Zero-based attempt counter (incremented by exit-condition
    /// reschedules).
    pub attempt: u32,
    /// Materialised input container (valid from `Running` on).
    pub input: Container,
    /// Output container (valid from `Finished` on; contains `RC`).
    pub output: Container,
    /// Tick at which the activity last became ready (deadline base).
    pub ready_since: Option<Tick>,
    /// A deadline notification has been sent for the current readiness
    /// period.
    pub notified: bool,
}

impl ActivityRt {
    /// Fresh waiting activity.
    pub fn new() -> Self {
        Self {
            state: ActState::Waiting,
            executed: false,
            attempt: 0,
            input: Container::empty(),
            output: Container::empty(),
            ready_since: None,
            notified: false,
        }
    }

    /// True once the activity reached its final state.
    pub fn is_terminated(&self) -> bool {
        self.state == ActState::Terminated
    }
}

impl Default for ActivityRt {
    fn default() -> Self {
        Self::new()
    }
}

/// Run-time state of one (sub)process scope, indexed by the compiled
/// template's dense ids.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScopeState {
    /// Per-activity state, indexed by [`ActId`].
    pub activities: Vec<ActivityRt>,
    /// Evaluated transition-condition values, indexed by
    /// [`crate::compiled::EdgeId`]. `None` = not yet evaluated.
    pub connectors: Vec<Option<bool>>,
    /// The scope's input container (process input, or the block
    /// activity's materialised input).
    pub input: Container,
    /// The scope's output container, filled by data connectors to
    /// `PROCESS.OUTPUT` as activities terminate.
    pub output: Container,
    /// Child scopes of block activities that have started, as
    /// `(block ActId, state)` pairs sorted by id. (A vector of pairs,
    /// not a map, so the serialized form has string-free keys — JSON
    /// maps require string keys.)
    pub children: Vec<(ActId, ScopeState)>,
}

impl ScopeState {
    /// Initialises a scope for a compiled template: all activities
    /// waiting, containers at schema defaults, no connector values.
    pub fn for_scope(scope: &CompiledScope) -> Self {
        Self {
            activities: vec![ActivityRt::new(); scope.acts.len()],
            connectors: vec![None; scope.edges.len()],
            input: scope.input.instantiate(),
            output: scope.output.instantiate(),
            children: Vec::new(),
        }
    }

    /// Initialises a scope straight from a definition (same layout:
    /// ids are declaration positions). Kept for tests and tooling that
    /// have no compiled template at hand.
    pub fn for_definition(def: &ProcessDefinition) -> Self {
        Self {
            activities: vec![ActivityRt::new(); def.activities.len()],
            connectors: vec![None; def.control.len()],
            input: def.input.instantiate(),
            output: def.output.instantiate(),
            children: Vec::new(),
        }
    }

    /// The runtime record of activity `id`.
    #[inline]
    pub fn rt(&self, id: ActId) -> &ActivityRt {
        &self.activities[id as usize]
    }

    /// Mutable variant of [`ScopeState::rt`].
    #[inline]
    pub fn rt_mut(&mut self, id: ActId) -> &mut ActivityRt {
        &mut self.activities[id as usize]
    }

    /// The child scope of block `id`, if started.
    pub fn child(&self, id: ActId) -> Option<&ScopeState> {
        self.children
            .binary_search_by_key(&id, |(i, _)| *i)
            .ok()
            .map(|i| &self.children[i].1)
    }

    /// Mutable variant of [`ScopeState::child`].
    pub fn child_mut(&mut self, id: ActId) -> Option<&mut ScopeState> {
        self.children
            .binary_search_by_key(&id, |(i, _)| *i)
            .ok()
            .map(|i| &mut self.children[i].1)
    }

    /// Inserts or replaces the child scope of block `id`.
    pub fn set_child(&mut self, id: ActId, state: ScopeState) {
        match self.children.binary_search_by_key(&id, |(i, _)| *i) {
            Ok(i) => self.children[i].1 = state,
            Err(i) => self.children.insert(i, (id, state)),
        }
    }

    /// Removes the child scope of block `id`.
    pub fn remove_child(&mut self, id: ActId) {
        if let Ok(i) = self.children.binary_search_by_key(&id, |(i, _)| *i) {
            self.children.remove(i);
        }
    }

    /// True when every activity reached `Terminated` — the §3.2
    /// completion rule ("the process is considered finished when all
    /// its activities are in the terminated state").
    pub fn all_terminated(&self) -> bool {
        self.activities.iter().all(ActivityRt::is_terminated)
    }

    /// Connector value if already evaluated.
    #[inline]
    pub fn connector_value(&self, edge: crate::compiled::EdgeId) -> Option<bool> {
        self.connectors[edge as usize]
    }
}

/// Overall status of a process instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceStatus {
    /// Navigation in progress (possibly idle waiting on humans).
    Running,
    /// Every activity terminated; output container final.
    Finished,
    /// Cancelled by an operator.
    Cancelled,
}

/// One process instance: a compiled template plus its scope tree and a
/// ready queue of automatic activities.
///
/// The ready queue is a min-heap on [`IdPath`]s. Lexicographic order
/// on id paths equals the navigator's historical depth-first
/// declaration-order scan (ids are declaration positions, and a path
/// is a strict prefix of any path through it), so popping the heap
/// reproduces the exact sequential execution order — the journals stay
/// byte-for-byte identical — without rescanning the definition on
/// every step. Entries are validated lazily at pop time; stale ones
/// (the activity moved on, or its enclosing block closed) are
/// discarded.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance identifier.
    pub id: InstanceId,
    /// The compiled template this instance runs.
    pub tpl: Arc<CompiledProcess>,
    /// Root scope state.
    pub root: ScopeState,
    /// Overall status.
    pub status: InstanceStatus,
    /// Ready automatic activities (min-heap; may hold stale entries).
    pub(crate) ready: BinaryHeap<Reverse<IdPath>>,
    /// Pre-resolved latency probes for this instance's template; `None`
    /// unless the owning engine's observer is enabled. Runtime-only —
    /// never serialised into snapshots or the journal.
    pub(crate) probes: Option<Arc<crate::metrics::ScopeProbes>>,
}

impl Instance {
    /// Creates a fresh instance of `tpl`.
    pub fn new(id: InstanceId, tpl: Arc<CompiledProcess>) -> Self {
        let root = ScopeState::for_scope(&tpl.root);
        Self {
            id,
            tpl,
            root,
            status: InstanceStatus::Running,
            ready: BinaryHeap::new(),
            probes: None,
        }
    }

    /// The source process definition.
    pub fn def(&self) -> &Arc<ProcessDefinition> {
        &self.tpl.def
    }

    /// Resolves the compiled scope and scope state addressed by
    /// `scope_ids` (block ids from the root; empty = root scope).
    /// Returns `None` if the path does not name nested blocks or the
    /// child scope has not started yet.
    pub fn resolve(&self, scope_ids: &[ActId]) -> Option<(&CompiledScope, &ScopeState)> {
        let mut cs: &CompiledScope = &self.tpl.root;
        let mut st: &ScopeState = &self.root;
        for &id in scope_ids {
            cs = cs.child_scope(id)?;
            st = st.child(id)?;
        }
        Some((cs, st))
    }

    /// Mutable variant of [`Instance::resolve`].
    pub fn resolve_mut(
        &mut self,
        scope_ids: &[ActId],
    ) -> Option<(&CompiledScope, &mut ScopeState)> {
        let mut cs: &CompiledScope = &self.tpl.root;
        let mut st: &mut ScopeState = &mut self.root;
        for &id in scope_ids {
            cs = cs.child_scope(id)?;
            st = st.child_mut(id)?;
        }
        Some((cs, st))
    }

    /// The runtime record of the activity at `path` (scope ids plus
    /// the activity id as the last element).
    pub fn activity_rt(&self, path: &[ActId]) -> Option<&ActivityRt> {
        let (&id, scope_ids) = path.split_last()?;
        let (cs, st) = self.resolve(scope_ids)?;
        if (id as usize) < cs.acts.len() {
            Some(st.rt(id))
        } else {
            None
        }
    }

    /// Resolves a slash-separated name path to an [`IdPath`].
    pub fn resolve_names(&self, segs: &[String]) -> Option<IdPath> {
        self.tpl.resolve_path(segs)
    }

    /// Renders an [`IdPath`] as the slash-separated journal form.
    pub fn path_string(&self, ids: &[ActId]) -> String {
        self.tpl.path_string(ids)
    }

    /// Queues a ready automatic activity for execution.
    pub(crate) fn push_ready(&mut self, path: IdPath) {
        self.ready.push(Reverse(path));
    }

    /// Rebuilds the ready queue from the scope tree — used after
    /// recovery replay and checkpoint restore, which mutate state
    /// without navigating.
    pub(crate) fn rebuild_ready(&mut self) {
        fn scan(cs: &CompiledScope, st: &ScopeState, prefix: &mut IdPath, out: &mut Vec<IdPath>) {
            for (i, rt) in st.activities.iter().enumerate() {
                let id = i as ActId;
                match rt.state {
                    ActState::Ready if cs.act(id).automatic => {
                        let mut p = prefix.clone();
                        p.push(id);
                        out.push(p);
                    }
                    ActState::Running => {
                        if let (CompiledKind::Block(child_cs), Some(child_st)) =
                            (&cs.act(id).kind, st.child(id))
                        {
                            prefix.push(id);
                            scan(child_cs, child_st, prefix, out);
                            prefix.pop();
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut paths = Vec::new();
        scan(&self.tpl.root, &self.root, &mut Vec::new(), &mut paths);
        self.ready = paths.into_iter().map(Reverse).collect();
    }
}

/// Joins a path as the slash-separated form used in journal events.
pub fn join_path(path: &[String]) -> String {
    path.join("/")
}

/// Splits a slash-separated journal path back into segments.
pub fn split_path(path: &str) -> Vec<String> {
    if path.is_empty() {
        Vec::new()
    } else {
        path.split('/').map(|s| s.to_owned()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_model::{Activity, ProcessBuilder};

    fn def_with_block() -> ProcessDefinition {
        let inner = ProcessBuilder::new("inner")
            .program("X", "px")
            .build()
            .unwrap();
        ProcessBuilder::new("outer")
            .program("A", "pa")
            .block("B", inner)
            .connect("A", "B")
            .build()
            .unwrap()
    }

    fn tpl() -> Arc<CompiledProcess> {
        Arc::new(CompiledProcess::compile(def_with_block()))
    }

    #[test]
    fn fresh_scope_is_waiting() {
        let s = ScopeState::for_definition(&def_with_block());
        assert_eq!(s.activities.len(), 2);
        assert!(s.activities.iter().all(|a| a.state == ActState::Waiting));
        assert!(!s.all_terminated());
        assert_eq!(s.connectors, vec![None]);
    }

    #[test]
    fn for_scope_matches_for_definition_layout() {
        let t = tpl();
        let a = ScopeState::for_scope(&t.root);
        let b = ScopeState::for_definition(&def_with_block());
        assert_eq!(a, b);
    }

    #[test]
    fn all_terminated_counts_every_activity() {
        let mut s = ScopeState::for_definition(&def_with_block());
        for a in &mut s.activities {
            a.state = ActState::Terminated;
        }
        assert!(s.all_terminated());
    }

    #[test]
    fn resolve_walks_block_scopes() {
        let t = tpl();
        let mut inst = Instance::new(InstanceId(1), Arc::clone(&t));
        let b = t.root.id("B").unwrap();
        // Child scope not started yet.
        assert!(inst.resolve_mut(&[b]).is_none());
        // Start it manually.
        let child = ScopeState::for_scope(t.root.child_scope(b).unwrap());
        inst.root.set_child(b, child);
        let (cs, st) = inst.resolve_mut(&[b]).unwrap();
        assert_eq!(cs.name, "inner");
        assert_eq!(st.activities.len(), 1);
        // Non-block path segment fails.
        let a = t.root.id("A").unwrap();
        assert!(inst.resolve_mut(&[a]).is_none());
        assert!(inst.resolve(&[9]).is_none());
    }

    #[test]
    fn activity_rt_lookup_by_path() {
        let t = tpl();
        let inst = Instance::new(InstanceId(1), t);
        assert!(inst.activity_rt(&[0]).is_some());
        assert!(inst.activity_rt(&[1, 0]).is_none(), "child not started");
        assert!(inst.activity_rt(&[]).is_none());
    }

    #[test]
    fn children_sorted_and_replaceable() {
        let mut s = ScopeState::default();
        s.set_child(3, ScopeState::default());
        s.set_child(1, ScopeState::default());
        assert_eq!(s.children[0].0, 1);
        assert_eq!(s.children[1].0, 3);
        assert!(s.child(1).is_some());
        assert!(s.child(2).is_none());
        s.remove_child(1);
        assert!(s.child(1).is_none());
        assert_eq!(s.children.len(), 1);
    }

    #[test]
    fn rebuild_ready_finds_nested_ready_autos() {
        let t = tpl();
        let mut inst = Instance::new(InstanceId(1), Arc::clone(&t));
        let b = t.root.id("B").unwrap();
        inst.root.rt_mut(b).state = ActState::Running;
        let mut child = ScopeState::for_scope(t.root.child_scope(b).unwrap());
        child.activities[0].state = ActState::Ready;
        inst.root.set_child(b, child);
        inst.root.rt_mut(0).state = ActState::Ready;
        inst.rebuild_ready();
        let mut popped = Vec::new();
        while let Some(Reverse(p)) = inst.ready.pop() {
            popped.push(p);
        }
        assert_eq!(popped, vec![vec![0], vec![b, 0]]);
    }

    #[test]
    fn path_join_split_round_trip() {
        let p = vec!["Fwd".to_string(), "T1".to_string()];
        assert_eq!(join_path(&p), "Fwd/T1");
        assert_eq!(split_path("Fwd/T1"), p);
        assert_eq!(split_path(""), Vec::<String>::new());
        assert_eq!(join_path(&[]), "");
    }

    #[test]
    fn non_block_activity_cannot_be_scope() {
        let def = ProcessBuilder::new("p")
            .activity(Activity::program("A", "pa"))
            .build()
            .unwrap();
        let inst = Instance::new(InstanceId(1), Arc::new(CompiledProcess::compile(def)));
        assert!(inst.resolve(&[0]).is_none());
    }

    #[test]
    fn serde_round_trip_of_scope_state() {
        let t = tpl();
        let mut s = ScopeState::for_scope(&t.root);
        s.connectors[0] = Some(true);
        s.set_child(1, ScopeState::default());
        let json = serde_json::to_string(&s).unwrap();
        let back: ScopeState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
