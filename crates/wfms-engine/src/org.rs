//! The organization model.
//!
//! §3.3: "the organization is described in terms of the roles,
//! hierarchical levels and persons associated with it. A person can
//! have several roles … and a role can be assigned to several
//! persons." Staff assignment resolves an activity's
//! [`StaffAssignment`](wfms_model::StaffAssignment) to the set of
//! *eligible persons*; deadline notifications go to a person's
//! manager.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One person in the organization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Person {
    /// Unique user name.
    pub name: String,
    /// Roles held (a person can have several roles).
    pub roles: Vec<String>,
    /// Hierarchical level (1 = top). Purely descriptive; notification
    /// routing uses `manager`.
    pub level: u32,
    /// The person notified when this person misses a deadline.
    pub manager: Option<String>,
    /// Currently absent (vacation, sick leave): work offered to this
    /// person is redirected to the substitute, or dropped from the
    /// offer if none is set.
    pub absent: bool,
    /// Who receives this person's work while absent. Substitution
    /// chains are followed transitively (cycle-safe).
    pub substitute: Option<String>,
}

/// The organization database the engine resolves staff against.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OrgModel {
    persons: BTreeMap<String, Person>,
}

impl OrgModel {
    /// An empty organization.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a person with `roles`, level 1, no manager.
    pub fn person(mut self, name: &str, roles: &[&str]) -> Self {
        self.persons.insert(
            name.to_owned(),
            Person {
                name: name.to_owned(),
                roles: roles.iter().map(|r| r.to_string()).collect(),
                level: 1,
                manager: None,
                absent: false,
                substitute: None,
            },
        );
        self
    }

    /// Adds a person reporting to `manager` at `level`.
    pub fn person_under(mut self, name: &str, roles: &[&str], manager: &str, level: u32) -> Self {
        self.persons.insert(
            name.to_owned(),
            Person {
                name: name.to_owned(),
                roles: roles.iter().map(|r| r.to_string()).collect(),
                level,
                manager: Some(manager.to_owned()),
                absent: false,
                substitute: None,
            },
        );
        self
    }

    /// Looks up a person.
    pub fn get(&self, name: &str) -> Option<&Person> {
        self.persons.get(name)
    }

    /// True if `name` exists.
    pub fn has(&self, name: &str) -> bool {
        self.persons.contains_key(name)
    }

    /// Every person holding `role`, in name order.
    pub fn persons_with_role(&self, role: &str) -> Vec<&Person> {
        self.persons
            .values()
            .filter(|p| p.roles.iter().any(|r| r == role))
            .collect()
    }

    /// The manager of `name`, if any.
    pub fn manager_of(&self, name: &str) -> Option<&Person> {
        self.persons
            .get(name)
            .and_then(|p| p.manager.as_deref())
            .and_then(|m| self.persons.get(m))
    }

    /// Marks a person absent (with an optional substitute) or present.
    /// Unknown names are ignored.
    pub fn set_absent(&mut self, name: &str, absent: bool, substitute: Option<&str>) {
        if let Some(p) = self.persons.get_mut(name) {
            p.absent = absent;
            p.substitute = substitute.map(str::to_owned);
        }
    }

    /// Follows the substitution chain from `name` to a present person;
    /// `None` when the chain dead-ends in absence or a cycle.
    fn effective(&self, name: &str) -> Option<&Person> {
        let mut seen = std::collections::BTreeSet::new();
        let mut cur = self.persons.get(name)?;
        while cur.absent {
            if !seen.insert(cur.name.clone()) {
                return None; // substitution cycle among absentees
            }
            cur = self.persons.get(cur.substitute.as_deref()?)?;
        }
        Some(cur)
    }

    /// Resolves a staff assignment to the eligible person names, in
    /// name order, with absence substitution applied: absent persons
    /// are replaced by their (transitive) substitutes, and dropped if
    /// no present substitute exists. `Automatic` resolves to the empty
    /// set (the engine itself runs the activity).
    pub fn resolve(&self, staff: &wfms_model::StaffAssignment) -> Vec<String> {
        let raw: Vec<&Person> = match staff {
            wfms_model::StaffAssignment::Automatic => Vec::new(),
            wfms_model::StaffAssignment::Person(p) => self.persons.get(p).into_iter().collect(),
            wfms_model::StaffAssignment::Role(r) => self.persons_with_role(r),
        };
        let mut out: Vec<String> = raw
            .into_iter()
            .filter_map(|p| self.effective(&p.name).map(|e| e.name.clone()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// All person names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.persons.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_model::StaffAssignment;

    fn org() -> OrgModel {
        OrgModel::new()
            .person("boss", &["manager"])
            .person_under("ann", &["clerk", "teller"], "boss", 2)
            .person_under("bob", &["clerk"], "boss", 2)
    }

    #[test]
    fn role_resolution_is_sorted() {
        let o = org();
        let clerks = o.resolve(&StaffAssignment::Role("clerk".into()));
        assert_eq!(clerks, vec!["ann".to_string(), "bob".to_string()]);
        let tellers = o.resolve(&StaffAssignment::Role("teller".into()));
        assert_eq!(tellers, vec!["ann".to_string()]);
    }

    #[test]
    fn person_resolution_checks_existence() {
        let o = org();
        assert_eq!(
            o.resolve(&StaffAssignment::Person("bob".into())),
            vec!["bob".to_string()]
        );
        assert!(o
            .resolve(&StaffAssignment::Person("ghost".into()))
            .is_empty());
    }

    #[test]
    fn automatic_resolves_to_nobody() {
        assert!(org().resolve(&StaffAssignment::Automatic).is_empty());
    }

    #[test]
    fn manager_lookup() {
        let o = org();
        assert_eq!(o.manager_of("ann").unwrap().name, "boss");
        assert!(o.manager_of("boss").is_none());
        assert!(o.manager_of("ghost").is_none());
    }

    #[test]
    fn multiple_roles_per_person() {
        let o = org();
        let ann = o.get("ann").unwrap();
        assert_eq!(ann.roles.len(), 2);
        assert_eq!(ann.level, 2);
    }

    #[test]
    fn absence_redirects_to_substitute() {
        let mut o = org();
        o.set_absent("ann", true, Some("bob"));
        // ann's personal work goes to bob…
        assert_eq!(
            o.resolve(&StaffAssignment::Person("ann".into())),
            vec!["bob".to_string()]
        );
        // …and the clerk role de-duplicates (ann→bob, bob) to just bob.
        assert_eq!(
            o.resolve(&StaffAssignment::Role("clerk".into())),
            vec!["bob".to_string()]
        );
    }

    #[test]
    fn absence_without_substitute_drops_the_offer() {
        let mut o = org();
        o.set_absent("ann", true, None);
        assert!(o.resolve(&StaffAssignment::Person("ann".into())).is_empty());
        assert_eq!(
            o.resolve(&StaffAssignment::Role("teller".into())),
            Vec::<String>::new()
        );
        assert_eq!(
            o.resolve(&StaffAssignment::Role("clerk".into())),
            vec!["bob".to_string()]
        );
    }

    #[test]
    fn substitution_chains_and_cycles() {
        let mut o = org().person("carol", &["clerk"]);
        // ann → bob → carol (both absent) resolves to carol.
        o.set_absent("ann", true, Some("bob"));
        o.set_absent("bob", true, Some("carol"));
        assert_eq!(
            o.resolve(&StaffAssignment::Person("ann".into())),
            vec!["carol".to_string()]
        );
        // Close the cycle: ann → bob → ann, all absent → nobody.
        o.set_absent("bob", true, Some("ann"));
        assert!(o.resolve(&StaffAssignment::Person("ann".into())).is_empty());
        // Returning cures it.
        o.set_absent("bob", false, None);
        assert_eq!(
            o.resolve(&StaffAssignment::Person("ann".into())),
            vec!["bob".to_string()]
        );
    }
}
