//! The navigator — FlowMark's execution semantics (§3.2, appendix).
//!
//! All navigation is deterministic and synchronous: given the same
//! definition, the same program outcomes and the same user actions,
//! the journal is byte-for-byte identical. That determinism is what
//! the golden-trace reproductions of the paper's appendix rely on,
//! and what makes forward recovery a replay.
//!
//! The rules implemented here, straight from the paper:
//!
//! * Activities without incoming control connectors are the start
//!   activities; they become ready when the process starts.
//! * When an activity terminates, its outgoing connectors' transition
//!   conditions are evaluated over its output container.
//! * A target becomes ready when its start condition is met — AND:
//!   all incoming connectors true; OR: one true.
//! * **Dead path elimination**: "if an activity will never be executed
//!   because its start condition evaluates to false, the activity is
//!   marked as terminated and all the outgoing control connectors from
//!   that activity are evaluated to false".
//! * After execution the exit condition is checked over the output
//!   container; if false the activity is reset to ready.
//! * The process is finished when all its activities are terminated.
//! * Blocks are embedded processes: when a block's scope finishes, the
//!   block activity itself finishes with the scope's output (and loops
//!   if its own exit condition says so).
//!
//! Navigation runs entirely on the [`CompiledProcess`](crate::compiled::CompiledProcess) template:
//! activities and connectors are addressed by dense ids, conditions
//! are precompiled [`CondPlan`](crate::compiled::CondPlan)s, and the
//! per-instance ready queue replaces the historical rescan of the
//! definition on every step (see [`find_runnable`]). Services are
//! shared references, so independent instances can be navigated from
//! multiple worker threads concurrently (each against its own journal
//! shard — see [`crate::Engine::run_all_parallel`]).

use crate::compiled::{ActId, CompiledKind, CompiledScope, DataSource, IdPath};
use crate::event::{Event, WorkItemId};
use crate::journal::Journal;
use crate::metrics::EngineObs;
use crate::org::OrgModel;
use crate::state::{ActState, Instance, InstanceStatus, ScopeState};
use crate::worklist::{WorkItem, WorkItemState, WorklistStore};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use txn_substrate::{
    MultiDatabase, ProgramContext, ProgramOutcome, ProgramRegistry, Value, VirtualClock,
};
use wfms_model::{Container, StartCondition, RC_MEMBER};

/// Shared services the navigator needs while driving an instance.
/// Every field is a shared reference: the navigator mutates only the
/// instance it drives, so one `NavServices` can serve many worker
/// threads (pointed at per-worker journal shards).
pub struct NavServices<'a> {
    /// Event journal (append-only, internally synchronised).
    pub journal: &'a Journal,
    /// Virtual clock for event timestamps and deadlines.
    pub clock: &'a VirtualClock,
    /// Organization database for staff resolution.
    pub org: &'a Mutex<OrgModel>,
    /// Work-item store for manual activities.
    pub worklists: &'a Mutex<WorklistStore>,
    /// Work-item id allocator.
    pub next_item: &'a AtomicU64,
    /// Registered transactional programs.
    pub programs: &'a ProgramRegistry,
    /// The multidatabase programs run against.
    pub multidb: &'a Arc<MultiDatabase>,
    /// Observability instruments (pre-resolved counters/gauges; see
    /// [`crate::metrics`]). Hot-path hooks are gated on
    /// [`EngineObs::enabled`]; none of them journal events or read the
    /// clock, so journals stay byte-identical with metrics on.
    pub(crate) obs: &'a EngineObs,
}

impl NavServices<'_> {
    fn now(&self) -> txn_substrate::Tick {
        self.clock.now()
    }
}

/// Starts `inst`: journals the start event and makes the start
/// activities of the root scope ready.
pub fn start_instance(inst: &mut Instance, svc: &NavServices<'_>) {
    svc.obs.observer.trace_event("instance.start", || {
        format!("{} {}", inst.id, inst.tpl.def.name)
    });
    svc.journal.append(Event::InstanceStarted {
        instance: inst.id,
        process: inst.tpl.def.name.clone(),
        input: inst.root.input.clone(),
        at: svc.now(),
    });
    seed_scope(inst, svc, &[]);
}

/// Makes the start activities of the scope at `scope_ids` ready.
fn seed_scope(inst: &mut Instance, svc: &NavServices<'_>, scope_ids: &[ActId]) {
    let tpl = Arc::clone(&inst.tpl);
    let Some(cs) = tpl.scope_at(scope_ids) else {
        return;
    };
    let mut path = scope_ids.to_vec();
    for &start in &cs.starts {
        path.push(start);
        make_ready(inst, svc, &path);
        path.pop();
    }
}

/// Transitions the activity at `path` to ready: queues it for the
/// engine if automatic, offers a work item if manual.
fn make_ready(inst: &mut Instance, svc: &NavServices<'_>, path: &[ActId]) {
    let instance = inst.id;
    let now = svc.now();
    let tpl = Arc::clone(&inst.tpl);
    let (&id, scope_ids) = path.split_last().expect("path never empty");
    let Some(cs) = tpl.scope_at(scope_ids) else {
        return;
    };
    let act = cs.act(id);
    let Some((_, scope)) = inst.resolve_mut(scope_ids) else {
        return;
    };
    let rt = scope.rt_mut(id);
    rt.state = ActState::Ready;
    rt.ready_since = Some(now);
    rt.notified = false;
    let attempt = rt.attempt;
    svc.journal.append(Event::ActivityReady {
        instance,
        path: tpl.path_string(path),
        attempt,
        at: now,
    });
    if act.automatic {
        inst.push_ready(path.to_vec());
        if svc.obs.enabled() {
            svc.obs.ready_depth.record_max(inst.ready.len() as i64);
        }
    } else {
        if svc.obs.enabled() {
            svc.obs.items_offered.inc();
        }
        let persons = svc.org.lock().resolve(&act.staff);
        let item = WorkItemId(svc.next_item.fetch_add(1, Ordering::Relaxed));
        svc.worklists.lock().offer(WorkItem {
            id: item,
            instance,
            path: tpl.path_string(path),
            attempt,
            offered_to: persons.clone(),
            state: WorkItemState::Offered,
            offered_at: now,
        });
        svc.journal.append(Event::WorkItemOffered {
            instance,
            path: tpl.path_string(path),
            item,
            persons,
            at: now,
        });
    }
}

/// Pops the next runnable activity (ready + automatic) off the
/// instance's ready queue. The queue is a min-heap on id paths, whose
/// lexicographic order equals the historical depth-first
/// declaration-order scan; stale entries are validated away here.
pub fn find_runnable(inst: &mut Instance) -> Option<IdPath> {
    if inst.status != InstanceStatus::Running {
        return None;
    }
    while let Some(std::cmp::Reverse(path)) = inst.ready.pop() {
        if is_runnable(inst, &path) {
            return Some(path);
        }
    }
    None
}

/// A queued path is still runnable iff every prefix block is `Running`
/// with its child scope open and the final activity is `Ready` and
/// automatic.
fn is_runnable(inst: &Instance, path: &[ActId]) -> bool {
    let Some((&id, scope_ids)) = path.split_last() else {
        return false;
    };
    let mut cs: &CompiledScope = &inst.tpl.root;
    let mut st: &ScopeState = &inst.root;
    for &block in scope_ids {
        if st.rt(block).state != ActState::Running {
            return false;
        }
        let (Some(child_cs), Some(child_st)) = (cs.child_scope(block), st.child(block)) else {
            return false;
        };
        cs = child_cs;
        st = child_st;
    }
    st.rt(id).state == ActState::Ready && cs.act(id).automatic
}

/// Drives `inst` until no automatic activity is runnable. Returns the
/// number of steps taken, or `None` if `limit` was exceeded.
pub(crate) fn drive_to_quiescence(
    inst: &mut Instance,
    svc: &NavServices<'_>,
    limit: usize,
) -> Option<usize> {
    let mut steps = 0usize;
    while let Some(path) = find_runnable(inst) {
        steps += 1;
        if steps > limit {
            return None;
        }
        execute_activity(inst, svc, &path, None);
    }
    Some(steps)
}

/// Executes the activity at `path` (which must be ready). `by` names
/// the person for manual executions; `None` means the engine runs it.
pub fn execute_activity(
    inst: &mut Instance,
    svc: &NavServices<'_>,
    path: &[ActId],
    by: Option<String>,
) {
    let instance = inst.id;
    let tpl = Arc::clone(&inst.tpl);
    let (&id, scope_ids) = path.split_last().expect("path never empty");
    let Some(cs) = tpl.scope_at(scope_ids) else {
        return;
    };
    let act = cs.act(id);

    // Materialise the input container from the data connectors whose
    // sources are available (§3.2 flow of data).
    let Some((_, scope)) = inst.resolve_mut(scope_ids) else {
        return;
    };
    let mut input = act.input.instantiate();
    for d in &act.data_in {
        let source: Option<&Container> = match &d.source {
            DataSource::ProcessInput => Some(&scope.input),
            DataSource::ActivityOutput(src) => {
                let rt = scope.rt(*src);
                (rt.is_terminated() && rt.executed).then_some(&rt.output)
            }
        };
        let Some(source) = source else { continue };
        for (from, to) in &d.mappings {
            if let Some(v) = source.get(from) {
                input.set(to, v.clone());
            }
        }
    }

    let rt = scope.rt_mut(id);
    debug_assert_eq!(rt.state, ActState::Ready, "execute requires ready");
    rt.state = ActState::Running;
    rt.input = input.clone();
    let attempt = rt.attempt;
    svc.journal.append(Event::ActivityStarted {
        instance,
        path: tpl.path_string(path),
        attempt,
        by,
        input: input.clone(),
        at: svc.now(),
    });

    let _span = svc.obs.enabled().then(|| {
        svc.obs.executions.inc();
        if attempt > 0 {
            svc.obs.retries.inc();
        }
        svc.obs
            .observer
            .span("activity.execute", || tpl.path_string(path))
    });
    // Start→finish latency clock: probes are only handed to instances
    // of observed engines, so this is one `None` check otherwise.
    let t0 = inst.probes.as_ref().map(|_| std::time::Instant::now());

    match &act.kind {
        CompiledKind::NoOp => {
            // A no-op activity "commits" immediately with rc 1 and
            // passes its input container through to its output (only
            // members declared in the output schema survive). The
            // Figure 2 compensation trigger relies on this to expose
            // the State_i flags to its outgoing transition conditions.
            let outputs: BTreeMap<String, Value> =
                input.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            complete_execution(inst, svc, path, 1, outputs);
            record_latency(inst, path, t0);
        }
        CompiledKind::Program(program) => {
            let mut ctx = ProgramContext::new(Arc::clone(svc.multidb));
            ctx.attempt = attempt;
            ctx.params = input.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            let outcome = svc.programs.invoke(program, &mut ctx);
            let (rc, outputs) = match outcome {
                ProgramOutcome::Committed { rc, outputs } => (rc, outputs),
                ProgramOutcome::Aborted { rc, .. } => (rc, BTreeMap::new()),
            };
            complete_execution(inst, svc, path, rc, outputs);
            record_latency(inst, path, t0);
        }
        CompiledKind::Block(child) => {
            // Start the child scope; its input container is the block
            // activity's materialised input. The block stays running
            // until the child scope finishes.
            let mut child_state = ScopeState::for_scope(child);
            for (k, v) in input.iter() {
                child_state.input.set(k, v.clone());
            }
            let Some((_, scope)) = inst.resolve_mut(scope_ids) else {
                return;
            };
            scope.set_child(id, child_state);
            seed_scope(inst, svc, path);
            // An empty block (no activities) finishes immediately;
            // validation forbids it, but stay safe.
            check_scope_completion(inst, svc, path);
            // No latency probe for blocks: a block "runs" across many
            // navigation steps, so its wall-clock span is the sum of
            // its inner activities' probes.
        }
    }
}

/// Records start→finish latency into the instance's pre-resolved probe
/// for `path`. `t0` is `Some` only on observed engines.
fn record_latency(inst: &Instance, path: &[ActId], t0: Option<std::time::Instant>) {
    let Some(t0) = t0 else { return };
    if let Some(h) = inst.probes.as_ref().and_then(|p| p.probe(path)) {
        h.record(t0.elapsed().as_nanos() as u64);
    }
}

/// Records the outcome of an execution: builds the output container
/// (schema defaults + program outputs + `RC`), journals the finish,
/// closes work items and decides the exit condition.
pub fn complete_execution(
    inst: &mut Instance,
    svc: &NavServices<'_>,
    path: &[ActId],
    rc: i64,
    outputs: BTreeMap<String, Value>,
) {
    let instance = inst.id;
    let tpl = Arc::clone(&inst.tpl);
    let (&id, scope_ids) = path.split_last().expect("path never empty");
    let Some(cs) = tpl.scope_at(scope_ids) else {
        return;
    };
    let schema = &cs.act(id).eff_output;
    let Some((_, scope)) = inst.resolve_mut(scope_ids) else {
        return;
    };

    let mut output = schema.instantiate();
    for (k, v) in outputs {
        // Only declared members enter the container: schema discipline
        // (undeclared program outputs are dropped, as in FlowMark where
        // the API only exposes declared container members).
        if schema.has(&k) {
            output.set(&k, v);
        }
    }
    output.set(RC_MEMBER, Value::Int(rc));

    if svc.obs.enabled() {
        // Count executions that ran inside a compensation block (the
        // saga translation nests undo activities in a block named
        // "Compensation" — see the atm crate's saga lowering).
        if let Some((&bid, parents)) = scope_ids.split_last() {
            if tpl
                .scope_at(parents)
                .is_some_and(|pcs| pcs.act(bid).name == "Compensation")
            {
                svc.obs.compensations.inc();
            }
        }
    }

    let rt = scope.rt_mut(id);
    rt.state = ActState::Finished;
    rt.output = output.clone();
    let attempt = rt.attempt;
    svc.journal.append(Event::ActivityFinished {
        instance,
        path: tpl.path_string(path),
        attempt,
        output,
        at: svc.now(),
    });
    if tpl.root.any_manual {
        svc.worklists
            .lock()
            .close_for(instance, &tpl.path_string(path));
    }
    decide_exit(inst, svc, path);
}

/// Decides the exit condition of a *finished* activity: terminate on
/// true, reschedule on false (§3.2). Public so recovery can resume an
/// instance whose journal ends right after an `ActivityFinished`.
pub fn decide_exit(inst: &mut Instance, svc: &NavServices<'_>, path: &[ActId]) {
    let instance = inst.id;
    let tpl = Arc::clone(&inst.tpl);
    let (&id, scope_ids) = path.split_last().expect("path never empty");
    let Some(cs) = tpl.scope_at(scope_ids) else {
        return;
    };
    let act = cs.act(id);
    let Some((_, scope)) = inst.resolve_mut(scope_ids) else {
        return;
    };
    let exit_ok = act.exit.eval_exit(&scope.rt(id).output);
    if exit_ok {
        terminate_activity(inst, svc, path, true);
    } else {
        if svc.obs.enabled() {
            svc.obs.reschedules.inc();
        }
        if matches!(act.kind, CompiledKind::Block(_)) {
            // A rescheduled block starts over with a fresh child scope.
            scope.remove_child(id);
        }
        let rt = scope.rt_mut(id);
        rt.attempt += 1;
        let next_attempt = rt.attempt;
        rt.state = ActState::Waiting; // make_ready flips to Ready
        svc.journal.append(Event::ActivityRescheduled {
            instance,
            path: tpl.path_string(path),
            next_attempt,
            at: svc.now(),
        });
        make_ready(inst, svc, path);
    }
}

/// Recovery helper: an activity that was `Running` when the engine
/// crashed is re-executed from the beginning (§3.3: "the activity will
/// be rescheduled to be executed from the beginning"). Any stale work
/// item is closed; a manual activity is re-offered.
pub fn reset_running_to_ready(inst: &mut Instance, svc: &NavServices<'_>, path: &[ActId]) {
    let instance = inst.id;
    let tpl = Arc::clone(&inst.tpl);
    let (&id, scope_ids) = path.split_last().expect("path never empty");
    let Some((_, scope)) = inst.resolve_mut(scope_ids) else {
        return;
    };
    let rt = scope.rt_mut(id);
    if rt.state != ActState::Running {
        return;
    }
    rt.state = ActState::Waiting;
    if tpl.root.any_manual {
        svc.worklists
            .lock()
            .close_for(instance, &tpl.path_string(path));
    }
    make_ready(inst, svc, path);
}

/// Recovery helper: re-derives the fate of a `Waiting` activity whose
/// deciding events were lost to a crash. Two cases the journal replay
/// cannot see:
///
/// * a **start activity** (no incoming connectors) whose
///   `ActivityReady` was cut off — the crash hit between the
///   `InstanceStarted`/block-`ActivityStarted` event and the seeding
///   of the scope, or between an `ActivityRescheduled` and its
///   re-ready. Seed semantics apply: make it ready unconditionally
///   (its start condition has nothing to wait for).
/// * a joined activity whose incoming connectors were all evaluated
///   (the `ConnectorEvaluated` events are in the journal) but whose
///   ready/dead decision event was cut off — re-run the start-condition
///   decision. Undecidable joins are left waiting, exactly as live.
pub(crate) fn renavigate_waiting(inst: &mut Instance, svc: &NavServices<'_>, path: &[ActId]) {
    let tpl = Arc::clone(&inst.tpl);
    let (&id, scope_ids) = path.split_last().expect("path never empty");
    let Some(cs) = tpl.scope_at(scope_ids) else {
        return;
    };
    let Some((_, scope)) = inst.resolve(scope_ids) else {
        return;
    };
    if scope.rt(id).state != ActState::Waiting {
        return; // an earlier fix-up's cascade already decided it
    }
    if cs.act(id).incoming.is_empty() {
        make_ready(inst, svc, path);
    } else {
        update_target(inst, svc, path);
    }
}

/// Recovery helper: completes the connector evaluations of a
/// `Terminated` activity interrupted mid-[`terminate_activity`] — the
/// `ActivityTerminated` event is in the journal but some outgoing
/// `ConnectorEvaluated` events (and their target cascades) were lost.
/// Only edges the replay found unevaluated are (re)evaluated, in
/// declaration order, exactly as the live path would have continued.
pub(crate) fn reevaluate_outgoing(inst: &mut Instance, svc: &NavServices<'_>, path: &[ActId]) {
    let instance = inst.id;
    let tpl = Arc::clone(&inst.tpl);
    let (&id, scope_ids) = path.split_last().expect("path never empty");
    let Some(cs) = tpl.scope_at(scope_ids) else {
        return;
    };
    let act = cs.act(id);
    let executed = {
        let Some((_, scope)) = inst.resolve(scope_ids) else {
            return;
        };
        if scope.rt(id).state != ActState::Terminated {
            return;
        }
        scope.rt(id).executed
    };
    let scope_name = tpl.path_string(scope_ids);
    for &edge_id in &act.outgoing {
        let edge = &cs.edges[edge_id as usize];
        let Some((_, scope)) = inst.resolve_mut(scope_ids) else {
            return;
        };
        if scope.connectors[edge_id as usize].is_some() {
            continue; // evaluated before the crash
        }
        let value = executed && edge.cond.eval_transition(&scope.rt(id).output);
        scope.connectors[edge_id as usize] = Some(value);
        svc.journal.append(Event::ConnectorEvaluated {
            instance,
            scope: scope_name.clone(),
            from: act.name.clone(),
            to: cs.act(edge.to).name.clone(),
            value,
            at: svc.now(),
        });
        let mut target_path = scope_ids.to_vec();
        target_path.push(edge.to);
        update_target(inst, svc, &target_path);
    }
}

/// Terminates the activity at `path`. `executed = false` is the dead
/// path elimination case. Evaluates outgoing connectors, cascades to
/// targets and checks scope completion.
pub fn terminate_activity(
    inst: &mut Instance,
    svc: &NavServices<'_>,
    path: &[ActId],
    executed: bool,
) {
    let instance = inst.id;
    let tpl = Arc::clone(&inst.tpl);
    let (&id, scope_ids) = path.split_last().expect("path never empty");
    let Some(cs) = tpl.scope_at(scope_ids) else {
        return;
    };
    let act = cs.act(id);
    let Some((_, scope)) = inst.resolve_mut(scope_ids) else {
        return;
    };
    if !executed && svc.obs.enabled() {
        svc.obs.dead_paths.inc();
    }
    let rt = scope.rt_mut(id);
    rt.state = ActState::Terminated;
    rt.executed = executed;
    svc.journal.append(Event::ActivityTerminated {
        instance,
        path: tpl.path_string(path),
        executed,
        at: svc.now(),
    });
    if tpl.root.any_manual {
        svc.worklists
            .lock()
            .close_for(instance, &tpl.path_string(path));
    }

    // Data connectors from this activity to the scope's output
    // container take effect at termination of an executed activity.
    if executed && !act.data_out.is_empty() {
        let output = scope.rt(id).output.clone();
        for (from, to) in &act.data_out {
            if let Some(v) = output.get(from) {
                scope.output.set(to, v.clone());
            }
        }
    }

    // Evaluate outgoing connectors. A dead activity's connectors are
    // all false (§3.2); an executed one evaluates its precompiled
    // transition plans over the output container (evaluation errors
    // are false — fail safe — and statically constant conditions were
    // folded at compile time).
    let scope_name = tpl.path_string(scope_ids);
    for &edge_id in &act.outgoing {
        let edge = &cs.edges[edge_id as usize];
        let Some((_, scope)) = inst.resolve_mut(scope_ids) else {
            return;
        };
        let value = executed && edge.cond.eval_transition(&scope.rt(id).output);
        scope.connectors[edge_id as usize] = Some(value);
        svc.journal.append(Event::ConnectorEvaluated {
            instance,
            scope: scope_name.clone(),
            from: act.name.clone(),
            to: cs.act(edge.to).name.clone(),
            value,
            at: svc.now(),
        });
        let mut target_path = scope_ids.to_vec();
        target_path.push(edge.to);
        update_target(inst, svc, &target_path);
    }

    check_scope_completion(inst, svc, scope_ids);
}

/// Re-examines a waiting activity's start condition after one of its
/// incoming connectors was evaluated; makes it ready or dead.
fn update_target(inst: &mut Instance, svc: &NavServices<'_>, path: &[ActId]) {
    let tpl = Arc::clone(&inst.tpl);
    let (&id, scope_ids) = path.split_last().expect("path never empty");
    let Some(cs) = tpl.scope_at(scope_ids) else {
        return;
    };
    let act = cs.act(id);
    let Some((_, scope)) = inst.resolve(scope_ids) else {
        return;
    };
    if scope.rt(id).state != ActState::Waiting {
        // Already ready/running/terminated; OR-joins latch on the
        // first true connector.
        return;
    }
    let mut any_true = false;
    let mut any_false = false;
    let mut any_pending = false;
    for &e in &act.incoming {
        match scope.connector_value(e) {
            Some(true) => any_true = true,
            Some(false) => any_false = true,
            None => any_pending = true,
        }
    }
    let decision = match act.start {
        StartCondition::And => {
            if any_false {
                Some(false) // dead
            } else if !any_pending {
                Some(true) // ready
            } else {
                None // still waiting
            }
        }
        StartCondition::Or => {
            if any_true {
                Some(true)
            } else if !any_pending {
                Some(false)
            } else {
                None
            }
        }
    };
    match decision {
        Some(true) => make_ready(inst, svc, path),
        Some(false) => terminate_activity(inst, svc, path, false),
        None => {}
    }
}

/// If every activity of the scope at `scope_ids` is terminated, the
/// scope is finished: the root scope finishes the instance; a block
/// scope finishes its block activity (which may loop via its exit
/// condition).
pub(crate) fn check_scope_completion(
    inst: &mut Instance,
    svc: &NavServices<'_>,
    scope_ids: &[ActId],
) {
    let instance = inst.id;
    let Some((_, scope)) = inst.resolve(scope_ids) else {
        return;
    };
    if !scope.all_terminated() {
        return;
    }
    let output = scope.output.clone();

    if scope_ids.is_empty() {
        if inst.status == InstanceStatus::Running {
            inst.status = InstanceStatus::Finished;
            svc.obs
                .observer
                .trace_event("instance.finished", || format!("{instance}"));
            svc.journal.append(Event::InstanceFinished {
                instance,
                output,
                at: svc.now(),
            });
        }
        return;
    }

    // A block scope finished: complete the block activity with the
    // scope's output. The block's return code is the scope output's
    // RC member when declared, else 1 ("the block ran").
    let (&block_id, parent_ids) = scope_ids.split_last().expect("non-empty");
    let Some((_, parent)) = inst.resolve(parent_ids) else {
        return;
    };
    if parent.rt(block_id).state != ActState::Running {
        return; // already completed (idempotence guard)
    }
    let rc = output.get(RC_MEMBER).and_then(|v| v.as_int()).unwrap_or(1);
    let outputs: BTreeMap<String, Value> =
        output.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    complete_execution(inst, svc, scope_ids, rc, outputs);
}

/// Cancels the instance: closes its work items and journals the
/// cancellation. Non-terminated activities simply stop navigating.
pub fn cancel_instance(inst: &mut Instance, svc: &NavServices<'_>) {
    if inst.status != InstanceStatus::Running {
        return;
    }
    inst.status = InstanceStatus::Cancelled;
    if inst.tpl.root.any_manual {
        let mut worklists = svc.worklists.lock();
        let open: Vec<WorkItemId> = worklists
            .open_items()
            .iter()
            .filter(|it| it.instance == inst.id)
            .map(|it| it.id)
            .collect();
        for id in open {
            worklists.close(id);
        }
    }
    svc.journal.append(Event::InstanceCancelled {
        instance: inst.id,
        at: svc.now(),
    });
}

/// Sends deadline notifications (§3.3) for ready manual activities
/// whose deadline elapsed: each eligible person's manager is notified
/// once per readiness period. Returns `(path, person)` pairs notified.
///
/// The compiled template indexes deadline-bearing activities per scope
/// ([`CompiledScope::deadline_acts`]) and records whether any exist at
/// all ([`CompiledScope::any_deadlines`]), so instances without
/// deadlines return without scanning anything.
pub fn check_deadlines(inst: &mut Instance, svc: &NavServices<'_>) -> Vec<(String, String)> {
    if !inst.tpl.root.any_deadlines {
        return Vec::new();
    }

    fn scan(
        cs: &CompiledScope,
        scope: &mut ScopeState,
        prefix: &mut IdPath,
        now: txn_substrate::Tick,
        org: &OrgModel,
        due: &mut Vec<(IdPath, Vec<String>)>,
    ) {
        for &id in &cs.deadline_acts {
            let act = cs.act(id);
            let rt = scope.rt_mut(id);
            if rt.state == ActState::Ready && !rt.notified {
                if let (Some(deadline), Some(since)) = (act.deadline, rt.ready_since) {
                    if since + deadline <= now {
                        rt.notified = true;
                        let mut managers: Vec<String> = org
                            .resolve(&act.staff)
                            .iter()
                            .filter_map(|p| org.manager_of(p).map(|m| m.name.clone()))
                            .collect();
                        managers.sort();
                        managers.dedup();
                        let mut path = prefix.clone();
                        path.push(id);
                        due.push((path, managers));
                    }
                }
            }
        }
        for (i, act) in cs.acts.iter().enumerate() {
            if let CompiledKind::Block(child_cs) = &act.kind {
                if !child_cs.any_deadlines {
                    continue;
                }
                let id = i as ActId;
                if scope.rt(id).state == ActState::Running {
                    if let Some(child) = scope.child_mut(id) {
                        prefix.push(id);
                        scan(child_cs, child, prefix, now, org, due);
                        prefix.pop();
                    }
                }
            }
        }
    }

    let now = svc.now();
    let mut due = Vec::new();
    let tpl = Arc::clone(&inst.tpl);
    {
        let org = svc.org.lock();
        scan(
            &tpl.root,
            &mut inst.root,
            &mut Vec::new(),
            now,
            &org,
            &mut due,
        );
    }

    let mut sent = Vec::new();
    for (path, managers) in due {
        let path_str = tpl.path_string(&path);
        for person in managers {
            svc.journal.append(Event::NotificationSent {
                instance: inst.id,
                path: path_str.clone(),
                person: person.clone(),
                at: now,
            });
            sent.push((path_str.clone(), person));
        }
    }
    // Deadline checks run off the clock-advance path (cold), so count
    // unconditionally — recovered engines report them too.
    if !sent.is_empty() {
        svc.obs.notifications.add(sent.len() as u64);
    }
    sent
}
