//! The navigator — FlowMark's execution semantics (§3.2, appendix).
//!
//! All navigation is deterministic and synchronous: given the same
//! definition, the same program outcomes and the same user actions,
//! the journal is byte-for-byte identical. That determinism is what
//! the golden-trace reproductions of the paper's appendix rely on,
//! and what makes forward recovery a replay.
//!
//! The rules implemented here, straight from the paper:
//!
//! * Activities without incoming control connectors are the start
//!   activities; they become ready when the process starts.
//! * When an activity terminates, its outgoing connectors' transition
//!   conditions are evaluated over its output container.
//! * A target becomes ready when its start condition is met — AND:
//!   all incoming connectors true; OR: one true.
//! * **Dead path elimination**: "if an activity will never be executed
//!   because its start condition evaluates to false, the activity is
//!   marked as terminated and all the outgoing control connectors from
//!   that activity are evaluated to false".
//! * After execution the exit condition is checked over the output
//!   container; if false the activity is reset to ready.
//! * The process is finished when all its activities are terminated.
//! * Blocks are embedded processes: when a block's scope finishes, the
//!   block activity itself finishes with the scope's output (and loops
//!   if its own exit condition says so).
//!
//! Navigation runs entirely on **global slots**: the compiled
//! template's [`ScopeLayout`](crate::compiled::ScopeLayout) flattens
//! every activity, connector and scope into contiguous index spaces,
//! and the per-instance [`StateSlab`](crate::state::StateSlab) holds
//! one state column per slot. A navigation step is column indexing —
//! no path vectors, no scope-tree walks — and everything an event
//! needs (journal path strings, activity names, container prototypes)
//! is interned in the layout, so steady-state steps don't allocate.
//! Services are shared references, so independent instances can be
//! navigated from multiple worker threads concurrently (each against
//! its own journal shard — see [`crate::Engine::run_all_parallel`]).

use crate::compiled::{CompiledKind, DataSource, ScopeId};
use crate::event::{Event, WorkItemId};
use crate::journal::Journal;
use crate::metrics::EngineObs;
use crate::org::OrgModel;
use crate::state::{ActState, Instance, InstanceStatus};
use crate::worklist::{WorkItem, WorkItemState, WorklistStore};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use txn_substrate::{
    MultiDatabase, ProgramContext, ProgramOutcome, ProgramRegistry, Value, VirtualClock,
};
use wfms_model::{StartCondition, RC_MEMBER};

/// Shared services the navigator needs while driving an instance.
/// Every field is a shared reference: the navigator mutates only the
/// instance it drives, so one `NavServices` can serve many worker
/// threads (pointed at per-worker journal shards).
pub struct NavServices<'a> {
    /// Event journal (append-only, internally synchronised).
    pub journal: &'a Journal,
    /// Virtual clock for event timestamps and deadlines.
    pub clock: &'a VirtualClock,
    /// Organization database for staff resolution.
    pub org: &'a Mutex<OrgModel>,
    /// Work-item store for manual activities.
    pub worklists: &'a Mutex<WorklistStore>,
    /// Work-item id allocator.
    pub next_item: &'a AtomicU64,
    /// Registered transactional programs.
    pub programs: &'a ProgramRegistry,
    /// The multidatabase programs run against.
    pub multidb: &'a Arc<MultiDatabase>,
    /// Observability instruments (pre-resolved counters/gauges; see
    /// [`crate::metrics`]). Hot-path hooks are gated on
    /// [`EngineObs::enabled`]; none of them journal events or read the
    /// clock, so journals stay byte-identical with metrics on.
    pub(crate) obs: &'a EngineObs,
}

impl NavServices<'_> {
    fn now(&self) -> txn_substrate::Tick {
        self.clock.now()
    }
}

/// Starts `inst`: journals the start event and makes the start
/// activities of the root scope ready.
pub fn start_instance(inst: &mut Instance, svc: &NavServices<'_>) {
    svc.obs.observer.trace_event("instance.start", || {
        format!("{} {}", inst.id, inst.tpl.def.name)
    });
    svc.journal.append(Event::InstanceStarted {
        instance: inst.id,
        process: inst.tpl.def.name.clone(),
        tenant: inst.tenant.clone(),
        input: inst.root_input().clone(),
        at: svc.now(),
    });
    seed_scope(inst, svc, 0);
}

/// Makes the start activities of scope `s` ready.
fn seed_scope(inst: &mut Instance, svc: &NavServices<'_>, s: ScopeId) {
    let tpl = Arc::clone(&inst.tpl);
    let m = tpl.layout.scope(s);
    for &start in &m.cs.starts {
        make_ready(inst, svc, m.act_base + start);
    }
}

/// Transitions the activity at `slot` to ready: queues it for the
/// engine if automatic, offers a work item if manual.
fn make_ready(inst: &mut Instance, svc: &NavServices<'_>, slot: u32) {
    let instance = inst.id;
    let now = svc.now();
    let tpl = Arc::clone(&inst.tpl);
    let lay = &tpl.layout;
    let sl = slot as usize;
    inst.set_act_state(slot, ActState::Ready);
    inst.slab.ready_since[sl] = Some(now);
    inst.slab.notified[sl] = false;
    let attempt = inst.slab.attempt[sl];
    svc.journal.append(Event::ActivityReady {
        instance,
        path: lay.paths[sl].clone().into(),
        attempt,
        at: now,
    });
    if lay.automatic[sl] {
        inst.push_ready(lay.rank[sl]);
        if svc.obs.enabled() {
            svc.obs.ready_depth.record_max(inst.ready.len() as i64);
        }
    } else {
        if svc.obs.enabled() {
            svc.obs.items_offered.inc();
        }
        let act = lay.act(slot);
        let persons = svc.org.lock().resolve(&act.staff);
        let item = WorkItemId(svc.next_item.fetch_add(1, Ordering::Relaxed));
        svc.worklists.lock().offer(WorkItem {
            id: item,
            instance,
            path: lay.paths[sl].to_string(),
            attempt,
            offered_to: persons.clone(),
            state: WorkItemState::Offered,
            offered_at: now,
        });
        svc.journal.append(Event::WorkItemOffered {
            instance,
            path: lay.paths[sl].clone().into(),
            item,
            persons,
            at: now,
        });
    }
}

/// Pops the next runnable activity (ready + automatic) off the
/// instance's ready queue, as a global act slot. The queue is a
/// min-heap of execution ranks, whose order equals the historical
/// depth-first declaration-order scan; stale entries are validated
/// away here.
pub fn find_runnable(inst: &mut Instance) -> Option<u32> {
    if inst.status != InstanceStatus::Running {
        return None;
    }
    while let Some(std::cmp::Reverse(rank)) = inst.ready.pop() {
        let slot = inst.tpl.layout.rank_to_slot[rank as usize];
        if is_runnable(inst, slot) {
            return Some(slot);
        }
    }
    None
}

/// A queued slot is still runnable iff every enclosing block is
/// `Running` with its child scope open and the activity itself is
/// `Ready` and automatic.
fn is_runnable(inst: &Instance, slot: u32) -> bool {
    inst.slab.state[slot as usize] == ActState::Ready
        && inst.tpl.layout.automatic[slot as usize]
        && inst.ancestors_open(slot)
}

/// Drives `inst` until no automatic activity is runnable. Returns the
/// number of steps taken, or `None` if `limit` was exceeded.
pub(crate) fn drive_to_quiescence(
    inst: &mut Instance,
    svc: &NavServices<'_>,
    limit: usize,
) -> Option<usize> {
    let mut steps = 0usize;
    while let Some(slot) = find_runnable(inst) {
        steps += 1;
        if steps > limit {
            return None;
        }
        execute_activity(inst, svc, slot, None);
    }
    Some(steps)
}

/// Executes the activity at `slot` (which must be ready). `by` names
/// the person for manual executions; `None` means the engine runs it.
pub fn execute_activity(inst: &mut Instance, svc: &NavServices<'_>, slot: u32, by: Option<String>) {
    let instance = inst.id;
    let tpl = Arc::clone(&inst.tpl);
    let lay = &tpl.layout;
    let sl = slot as usize;
    let act = lay.act(slot);
    let s = lay.owner[sl];
    let m = lay.scope(s);

    // Materialise the input container from the data connectors whose
    // sources are available (§3.2 flow of data). With no data
    // connectors this is a clone of the interned prototype — a
    // reference-count bump.
    let mut input = lay.input_proto[sl].clone();
    for d in &act.data_in {
        let source = match &d.source {
            DataSource::ProcessInput => Some(&inst.slab.scope_input[s as usize]),
            DataSource::ActivityOutput(src) => {
                let ss = (m.act_base + *src) as usize;
                (inst.slab.state[ss] == ActState::Terminated && inst.slab.executed[ss])
                    .then(|| &inst.slab.output[ss])
            }
        };
        let Some(source) = source else { continue };
        for (from, to) in &d.mappings {
            if let Some(v) = source.get(from) {
                input.set(to, v.clone());
            }
        }
    }

    debug_assert_eq!(
        inst.slab.state[sl],
        ActState::Ready,
        "execute requires ready"
    );
    inst.set_act_state(slot, ActState::Running);
    inst.slab.input[sl] = input.clone();
    let attempt = inst.slab.attempt[sl];
    svc.journal.append(Event::ActivityStarted {
        instance,
        path: lay.paths[sl].clone().into(),
        attempt,
        by,
        input: input.clone(),
        at: svc.now(),
    });

    let _span = svc.obs.enabled().then(|| {
        svc.obs.executions.inc();
        if attempt > 0 {
            svc.obs.retries.inc();
        }
        svc.obs
            .observer
            .span("activity.execute", || lay.paths[sl].to_string())
    });
    // Start→finish latency clock: probes are only handed to instances
    // of observed engines, so this is one `None` check otherwise.
    let t0 = inst.probes.as_ref().map(|_| std::time::Instant::now());

    match &act.kind {
        CompiledKind::NoOp => {
            // A no-op activity "commits" immediately with rc 1 and
            // passes its input container through to its output (only
            // members declared in the output schema survive). The
            // Figure 2 compensation trigger relies on this to expose
            // the State_i flags to its outgoing transition conditions.
            let outputs: BTreeMap<String, Value> =
                input.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            complete_execution(inst, svc, slot, 1, outputs);
            record_latency(inst, slot, t0);
        }
        CompiledKind::Program(program) => {
            let mut ctx = ProgramContext::new(Arc::clone(svc.multidb));
            ctx.attempt = attempt;
            ctx.params = input.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            let outcome = svc.programs.invoke(program, &mut ctx);
            let (rc, outputs) = match outcome {
                ProgramOutcome::Committed { rc, outputs } => (rc, outputs),
                ProgramOutcome::Aborted { rc, .. } => (rc, BTreeMap::new()),
            };
            complete_execution(inst, svc, slot, rc, outputs);
            record_latency(inst, slot, t0);
        }
        CompiledKind::Block(_) => {
            // Open the child scope; its input container is the block
            // activity's materialised input merged over the scope's
            // prototype. The block stays running until the child scope
            // finishes.
            let c = lay.block_child[sl].expect("compiled block has a child scope");
            inst.open_scope(c);
            for (k, v) in input.iter() {
                inst.slab.scope_input[c as usize].set(k, v.clone());
            }
            seed_scope(inst, svc, c);
            // An empty block (no activities) finishes immediately;
            // validation forbids it, but stay safe.
            check_scope_completion(inst, svc, c);
            // No latency probe for blocks: a block "runs" across many
            // navigation steps, so its wall-clock span is the sum of
            // its inner activities' probes.
        }
    }
}

/// Records start→finish latency into the instance's pre-resolved probe
/// for `slot`. `t0` is `Some` only on observed engines.
fn record_latency(inst: &Instance, slot: u32, t0: Option<std::time::Instant>) {
    let Some(t0) = t0 else { return };
    let path = &inst.tpl.layout.id_paths[slot as usize];
    if let Some(h) = inst.probes.as_ref().and_then(|p| p.probe(path)) {
        h.record(t0.elapsed().as_nanos() as u64);
    }
}

/// Records the outcome of an execution: builds the output container
/// (schema defaults + program outputs + `RC`), journals the finish,
/// closes work items and decides the exit condition.
pub fn complete_execution(
    inst: &mut Instance,
    svc: &NavServices<'_>,
    slot: u32,
    rc: i64,
    outputs: BTreeMap<String, Value>,
) {
    let instance = inst.id;
    let tpl = Arc::clone(&inst.tpl);
    let lay = &tpl.layout;
    let sl = slot as usize;

    let output = if rc == 1 && outputs.is_empty() {
        // Fast path: no program outputs and the common rc — the
        // interned prototype (schema defaults + `RC = 1`) is exactly
        // the container the general path would build.
        lay.output_rc1[sl].clone()
    } else {
        let schema = &lay.act(slot).eff_output;
        let mut output = schema.instantiate();
        for (k, v) in outputs {
            // Only declared members enter the container: schema
            // discipline (undeclared program outputs are dropped, as in
            // FlowMark where the API only exposes declared container
            // members).
            if schema.has(&k) {
                output.set(&k, v);
            }
        }
        output.set(RC_MEMBER, Value::Int(rc));
        output
    };

    if svc.obs.enabled() {
        // Count executions that ran inside a compensation block (the
        // saga translation nests undo activities in a block named
        // "Compensation" — see the atm crate's saga lowering).
        if let Some((_, pslot)) = lay.scope(lay.owner[sl]).parent {
            if lay.act(pslot).name == "Compensation" {
                svc.obs.compensations.inc();
            }
        }
    }

    inst.set_act_state(slot, ActState::Finished);
    inst.slab.output[sl] = output.clone();
    let attempt = inst.slab.attempt[sl];
    svc.journal.append(Event::ActivityFinished {
        instance,
        path: lay.paths[sl].clone().into(),
        attempt,
        output,
        at: svc.now(),
    });
    if tpl.root.any_manual {
        svc.worklists.lock().close_for(instance, &lay.paths[sl]);
    }
    decide_exit(inst, svc, slot);
}

/// Decides the exit condition of a *finished* activity: terminate on
/// true, reschedule on false (§3.2). Public so recovery can resume an
/// instance whose journal ends right after an `ActivityFinished`.
pub fn decide_exit(inst: &mut Instance, svc: &NavServices<'_>, slot: u32) {
    let instance = inst.id;
    let tpl = Arc::clone(&inst.tpl);
    let lay = &tpl.layout;
    let sl = slot as usize;
    let exit_ok = lay.act(slot).exit.eval_exit(&inst.slab.output[sl]);
    if exit_ok {
        terminate_activity(inst, svc, slot, true);
    } else {
        if svc.obs.enabled() {
            svc.obs.reschedules.inc();
        }
        if let Some(c) = lay.block_child[sl] {
            // A rescheduled block starts over with a fresh child scope.
            inst.close_scope(c);
        }
        inst.slab.attempt[sl] += 1;
        let next_attempt = inst.slab.attempt[sl];
        inst.set_act_state(slot, ActState::Waiting); // make_ready flips to Ready
        svc.journal.append(Event::ActivityRescheduled {
            instance,
            path: lay.paths[sl].clone().into(),
            next_attempt,
            at: svc.now(),
        });
        make_ready(inst, svc, slot);
    }
}

/// Recovery helper: a **manual** activity replayed as `Ready` with no
/// open work item — the crash fell between `ActivityReady` and
/// `WorkItemOffered`, so the offer never became durable. Re-offers it
/// at the same attempt (fresh item id), exactly the event the live
/// run would have appended next. Automatic activities need no
/// counterpart: replaying `ActivityReady` re-enqueues them directly.
pub(crate) fn reoffer_ready(inst: &mut Instance, svc: &NavServices<'_>, slot: u32) {
    let instance = inst.id;
    let tpl = Arc::clone(&inst.tpl);
    let lay = &tpl.layout;
    let sl = slot as usize;
    if inst.slab.state[sl] != ActState::Ready || lay.automatic[sl] {
        return;
    }
    let path = lay.paths[sl].to_string();
    if svc.worklists.lock().has_live_item(instance, &path) {
        return;
    }
    let attempt = inst.slab.attempt[sl];
    let now = svc.now();
    let act = lay.act(slot);
    let persons = svc.org.lock().resolve(&act.staff);
    let item = WorkItemId(svc.next_item.fetch_add(1, Ordering::Relaxed));
    svc.worklists.lock().offer(WorkItem {
        id: item,
        instance,
        path: path.clone(),
        attempt,
        offered_to: persons.clone(),
        state: WorkItemState::Offered,
        offered_at: now,
    });
    svc.journal.append(Event::WorkItemOffered {
        instance,
        path: path.into(),
        item,
        persons,
        at: now,
    });
}

/// Recovery helper: an activity that was `Running` when the engine
/// crashed is re-executed from the beginning (§3.3: "the activity will
/// be rescheduled to be executed from the beginning"). Any stale work
/// item is closed; a manual activity is re-offered.
pub fn reset_running_to_ready(inst: &mut Instance, svc: &NavServices<'_>, slot: u32) {
    let instance = inst.id;
    let tpl = Arc::clone(&inst.tpl);
    if inst.slab.state[slot as usize] != ActState::Running {
        return;
    }
    inst.set_act_state(slot, ActState::Waiting);
    if tpl.root.any_manual {
        svc.worklists
            .lock()
            .close_for(instance, &tpl.layout.paths[slot as usize]);
    }
    make_ready(inst, svc, slot);
}

/// Recovery helper: re-derives the fate of a `Waiting` activity whose
/// deciding events were lost to a crash. Two cases the journal replay
/// cannot see:
///
/// * a **start activity** (no incoming connectors) whose
///   `ActivityReady` was cut off — the crash hit between the
///   `InstanceStarted`/block-`ActivityStarted` event and the seeding
///   of the scope, or between an `ActivityRescheduled` and its
///   re-ready. Seed semantics apply: make it ready unconditionally
///   (its start condition has nothing to wait for).
/// * a joined activity whose incoming connectors were all evaluated
///   (the `ConnectorEvaluated` events are in the journal) but whose
///   ready/dead decision event was cut off — re-run the start-condition
///   decision. Undecidable joins are left waiting, exactly as live.
pub(crate) fn renavigate_waiting(inst: &mut Instance, svc: &NavServices<'_>, slot: u32) {
    let tpl = Arc::clone(&inst.tpl);
    if inst.slab.state[slot as usize] != ActState::Waiting {
        return; // an earlier fix-up's cascade already decided it
    }
    if tpl.layout.act(slot).incoming.is_empty() {
        make_ready(inst, svc, slot);
    } else {
        update_target(inst, svc, slot);
    }
}

/// Recovery helper: completes the connector evaluations of a
/// `Terminated` activity interrupted mid-[`terminate_activity`] — the
/// `ActivityTerminated` event is in the journal but some outgoing
/// `ConnectorEvaluated` events (and their target cascades) were lost.
/// Only edges the replay found unevaluated are (re)evaluated, in
/// declaration order, exactly as the live path would have continued.
pub(crate) fn reevaluate_outgoing(inst: &mut Instance, svc: &NavServices<'_>, slot: u32) {
    let instance = inst.id;
    let tpl = Arc::clone(&inst.tpl);
    let lay = &tpl.layout;
    let sl = slot as usize;
    if inst.slab.state[sl] != ActState::Terminated {
        return;
    }
    let executed = inst.slab.executed[sl];
    let m = lay.scope(lay.owner[sl]);
    for &edge_id in &lay.act(slot).outgoing {
        let edge = &m.cs.edges[edge_id as usize];
        let es = (m.edge_base + edge_id) as usize;
        if inst.slab.connectors[es].is_some() {
            continue; // evaluated before the crash
        }
        let value = executed && edge.cond.eval_transition(&inst.slab.output[sl]);
        inst.slab.connectors[es] = Some(value);
        svc.journal.append(Event::ConnectorEvaluated {
            instance,
            scope: m.path.clone().into(),
            from: lay.edge_names[es].0.clone().into(),
            to: lay.edge_names[es].1.clone().into(),
            value,
            at: svc.now(),
        });
        update_target(inst, svc, m.act_base + edge.to);
    }
}

/// Terminates the activity at `slot`. `executed = false` is the dead
/// path elimination case. Evaluates outgoing connectors, cascades to
/// targets and checks scope completion.
pub fn terminate_activity(inst: &mut Instance, svc: &NavServices<'_>, slot: u32, executed: bool) {
    let instance = inst.id;
    let tpl = Arc::clone(&inst.tpl);
    let lay = &tpl.layout;
    let sl = slot as usize;
    let act = lay.act(slot);
    let s = lay.owner[sl];
    if !executed && svc.obs.enabled() {
        svc.obs.dead_paths.inc();
    }
    inst.set_act_state(slot, ActState::Terminated);
    inst.slab.executed[sl] = executed;
    svc.journal.append(Event::ActivityTerminated {
        instance,
        path: lay.paths[sl].clone().into(),
        executed,
        at: svc.now(),
    });
    if tpl.root.any_manual {
        svc.worklists.lock().close_for(instance, &lay.paths[sl]);
    }

    // Data connectors from this activity to the scope's output
    // container take effect at termination of an executed activity.
    if executed && !act.data_out.is_empty() {
        let output = inst.slab.output[sl].clone();
        for (from, to) in &act.data_out {
            if let Some(v) = output.get(from) {
                inst.slab.scope_output[s as usize].set(to, v.clone());
            }
        }
    }

    // Evaluate outgoing connectors. A dead activity's connectors are
    // all false (§3.2); an executed one evaluates its precompiled
    // transition plans over the output container (evaluation errors
    // are false — fail safe — and statically constant conditions were
    // folded at compile time).
    let m = lay.scope(s);
    for &edge_id in &act.outgoing {
        let edge = &m.cs.edges[edge_id as usize];
        let es = (m.edge_base + edge_id) as usize;
        let value = executed && edge.cond.eval_transition(&inst.slab.output[sl]);
        inst.slab.connectors[es] = Some(value);
        svc.journal.append(Event::ConnectorEvaluated {
            instance,
            scope: m.path.clone().into(),
            from: lay.edge_names[es].0.clone().into(),
            to: lay.edge_names[es].1.clone().into(),
            value,
            at: svc.now(),
        });
        update_target(inst, svc, m.act_base + edge.to);
    }

    check_scope_completion(inst, svc, s);
}

/// Re-examines a waiting activity's start condition after one of its
/// incoming connectors was evaluated; makes it ready or dead.
fn update_target(inst: &mut Instance, svc: &NavServices<'_>, slot: u32) {
    let tpl = Arc::clone(&inst.tpl);
    let lay = &tpl.layout;
    let sl = slot as usize;
    if inst.slab.state[sl] != ActState::Waiting {
        // Already ready/running/terminated; OR-joins latch on the
        // first true connector.
        return;
    }
    let act = lay.act(slot);
    let m = lay.scope(lay.owner[sl]);
    let mut any_true = false;
    let mut any_false = false;
    let mut any_pending = false;
    for &e in &act.incoming {
        match inst.slab.connectors[(m.edge_base + e) as usize] {
            Some(true) => any_true = true,
            Some(false) => any_false = true,
            None => any_pending = true,
        }
    }
    let decision = match act.start {
        StartCondition::And => {
            if any_false {
                Some(false) // dead
            } else if !any_pending {
                Some(true) // ready
            } else {
                None // still waiting
            }
        }
        StartCondition::Or => {
            if any_true {
                Some(true)
            } else if !any_pending {
                Some(false)
            } else {
                None
            }
        }
    };
    match decision {
        Some(true) => make_ready(inst, svc, slot),
        Some(false) => terminate_activity(inst, svc, slot, false),
        None => {}
    }
}

/// If every activity of scope `s` is terminated (tracked as a counter,
/// not a scan), the scope is finished: the root scope finishes the
/// instance; a block scope finishes its block activity (which may loop
/// via its exit condition).
pub(crate) fn check_scope_completion(inst: &mut Instance, svc: &NavServices<'_>, s: ScopeId) {
    let instance = inst.id;
    if !inst.slab.scope_live[s as usize] || inst.slab.remaining[s as usize] != 0 {
        return;
    }
    let output = inst.slab.scope_output[s as usize].clone();

    if s == 0 {
        if inst.status == InstanceStatus::Running {
            inst.status = InstanceStatus::Finished;
            svc.obs
                .observer
                .trace_event("instance.finished", || format!("{instance}"));
            svc.journal.append(Event::InstanceFinished {
                instance,
                output,
                at: svc.now(),
            });
        }
        return;
    }

    // A block scope finished: complete the block activity with the
    // scope's output. The block's return code is the scope output's
    // RC member when declared, else 1 ("the block ran").
    let (_, pslot) = inst
        .tpl
        .layout
        .scope(s)
        .parent
        .expect("non-root scope has a parent block");
    if inst.slab.state[pslot as usize] != ActState::Running {
        return; // already completed (idempotence guard)
    }
    let rc = output.get(RC_MEMBER).and_then(|v| v.as_int()).unwrap_or(1);
    let outputs: BTreeMap<String, Value> =
        output.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    complete_execution(inst, svc, pslot, rc, outputs);
}

/// Cancels the instance: closes its work items and journals the
/// cancellation. Non-terminated activities simply stop navigating.
pub fn cancel_instance(inst: &mut Instance, svc: &NavServices<'_>) {
    if inst.status != InstanceStatus::Running {
        return;
    }
    inst.status = InstanceStatus::Cancelled;
    if inst.tpl.root.any_manual {
        let mut worklists = svc.worklists.lock();
        let open: Vec<WorkItemId> = worklists
            .open_items()
            .iter()
            .filter(|it| it.instance == inst.id)
            .map(|it| it.id)
            .collect();
        for id in open {
            worklists.close(id);
        }
    }
    svc.journal.append(Event::InstanceCancelled {
        instance: inst.id,
        at: svc.now(),
    });
}

/// Sends deadline notifications (§3.3) for ready manual activities
/// whose deadline elapsed: each eligible person's manager is notified
/// once per readiness period. Returns `(path, person)` pairs notified.
///
/// The compiled template indexes deadline-bearing activities per scope
/// ([`CompiledScope::deadline_acts`](crate::compiled::CompiledScope::deadline_acts))
/// and records whether any exist at all
/// ([`CompiledScope::any_deadlines`](crate::compiled::CompiledScope::any_deadlines)),
/// so instances without deadlines return without scanning anything.
/// Scopes are visited in preorder — the historical depth-first scan
/// order — skipping scopes that are not actively executing.
pub fn check_deadlines(inst: &mut Instance, svc: &NavServices<'_>) -> Vec<(String, String)> {
    if !inst.tpl.root.any_deadlines {
        return Vec::new();
    }

    let now = svc.now();
    let tpl = Arc::clone(&inst.tpl);
    let lay = &tpl.layout;
    let mut due: Vec<(u32, Vec<String>)> = Vec::new();
    {
        let org = svc.org.lock();
        for s in 0..lay.n_scopes() as ScopeId {
            let m = lay.scope(s);
            if m.cs.deadline_acts.is_empty() || !inst.scope_active(s) {
                continue;
            }
            for &id in &m.cs.deadline_acts {
                let slot = m.act_base + id;
                let sl = slot as usize;
                if inst.slab.state[sl] != ActState::Ready || inst.slab.notified[sl] {
                    continue;
                }
                let act = lay.act(slot);
                if let (Some(deadline), Some(since)) = (act.deadline, inst.slab.ready_since[sl]) {
                    if since + deadline <= now {
                        inst.slab.notified[sl] = true;
                        let mut managers: Vec<String> = org
                            .resolve(&act.staff)
                            .iter()
                            .filter_map(|p| org.manager_of(p).map(|mg| mg.name.clone()))
                            .collect();
                        managers.sort();
                        managers.dedup();
                        due.push((slot, managers));
                    }
                }
            }
        }
    }

    let mut sent = Vec::new();
    for (slot, managers) in due {
        let path = &lay.paths[slot as usize];
        for person in managers {
            svc.journal.append(Event::NotificationSent {
                instance: inst.id,
                path: path.clone().into(),
                person: person.clone(),
                at: now,
            });
            sent.push((path.to_string(), person));
        }
    }
    // Deadline checks run off the clock-advance path (cold), so count
    // unconditionally — recovered engines report them too.
    if !sent.is_empty() {
        svc.obs.notifications.add(sent.len() as u64);
    }
    sent
}
