//! The navigator — FlowMark's execution semantics (§3.2, appendix).
//!
//! All navigation is deterministic and synchronous: given the same
//! definition, the same program outcomes and the same user actions,
//! the journal is byte-for-byte identical. That determinism is what
//! the golden-trace reproductions of the paper's appendix rely on,
//! and what makes forward recovery a replay.
//!
//! The rules implemented here, straight from the paper:
//!
//! * Activities without incoming control connectors are the start
//!   activities; they become ready when the process starts.
//! * When an activity terminates, its outgoing connectors' transition
//!   conditions are evaluated over its output container.
//! * A target becomes ready when its start condition is met — AND:
//!   all incoming connectors true; OR: one true.
//! * **Dead path elimination**: "if an activity will never be executed
//!   because its start condition evaluates to false, the activity is
//!   marked as terminated and all the outgoing control connectors from
//!   that activity are evaluated to false".
//! * After execution the exit condition is checked over the output
//!   container; if false the activity is reset to ready.
//! * The process is finished when all its activities are terminated.
//! * Blocks are embedded processes: when a block's scope finishes, the
//!   block activity itself finishes with the scope's output (and loops
//!   if its own exit condition says so).

use crate::event::{Event, WorkItemId};
use crate::journal::Journal;
use crate::org::OrgModel;
use crate::state::{join_path, ActState, Instance, InstanceStatus, ScopeState};
use crate::worklist::{WorkItem, WorkItemState, WorklistStore};
use std::collections::BTreeMap;
use std::sync::Arc;
use txn_substrate::{
    MultiDatabase, ProgramContext, ProgramOutcome, ProgramRegistry, Value, VirtualClock,
};
use wfms_model::{ActivityKind, Container, StartCondition, RC_MEMBER};

/// Shared services the navigator needs while driving an instance.
pub struct NavServices<'a> {
    /// Event journal (append-only).
    pub journal: &'a Journal,
    /// Virtual clock for event timestamps and deadlines.
    pub clock: &'a VirtualClock,
    /// Organization database for staff resolution.
    pub org: &'a OrgModel,
    /// Work-item store for manual activities.
    pub worklists: &'a mut WorklistStore,
    /// Work-item id allocator.
    pub next_item: &'a mut u64,
    /// Registered transactional programs.
    pub programs: &'a ProgramRegistry,
    /// The multidatabase programs run against.
    pub multidb: &'a Arc<MultiDatabase>,
}

impl NavServices<'_> {
    fn now(&self) -> txn_substrate::Tick {
        self.clock.now()
    }
}

/// Starts `inst`: journals the start event and makes the start
/// activities of the root scope ready.
pub fn start_instance(inst: &mut Instance, svc: &mut NavServices<'_>) {
    svc.journal.append(Event::InstanceStarted {
        instance: inst.id,
        process: inst.def.name.clone(),
        input: inst.root.input.clone(),
        at: svc.now(),
    });
    seed_scope(inst, svc, &[]);
}

/// Makes the start activities of the scope at `scope_path` ready.
fn seed_scope(inst: &mut Instance, svc: &mut NavServices<'_>, scope_path: &[String]) {
    let Some((def, _)) = inst.resolve(scope_path) else {
        return;
    };
    let starts: Vec<String> = def
        .start_activities()
        .iter()
        .map(|a| a.name.clone())
        .collect();
    for name in starts {
        let mut path = scope_path.to_vec();
        path.push(name);
        make_ready(inst, svc, &path);
    }
}

/// Transitions the activity at `path` to ready, offering a work item
/// if it is manual.
fn make_ready(inst: &mut Instance, svc: &mut NavServices<'_>, path: &[String]) {
    let instance = inst.id;
    let now = svc.now();
    let (name, scope_path) = path.split_last().expect("path never empty");
    let Some((def, scope)) = inst.resolve_mut(scope_path) else {
        return;
    };
    let Some(act) = def.activity(name) else { return };
    let staff = act.staff.clone();
    let automatic = act.automatic_start;
    let rt = scope.activities.get_mut(name).expect("activity exists");
    rt.state = ActState::Ready;
    rt.ready_since = Some(now);
    rt.notified = false;
    let attempt = rt.attempt;
    svc.journal.append(Event::ActivityReady {
        instance,
        path: join_path(path),
        attempt,
        at: now,
    });
    if !automatic {
        let persons = svc.org.resolve(&staff);
        let item = WorkItemId(*svc.next_item);
        *svc.next_item += 1;
        svc.worklists.offer(WorkItem {
            id: item,
            instance,
            path: join_path(path),
            attempt,
            offered_to: persons.clone(),
            state: WorkItemState::Offered,
            offered_at: now,
        });
        svc.journal.append(Event::WorkItemOffered {
            instance,
            path: join_path(path),
            item,
            persons,
            at: now,
        });
    }
}

/// Finds the first runnable activity: ready + automatic, scanning
/// scopes depth-first in definition order (recursing into running
/// blocks).
pub fn find_runnable(inst: &Instance) -> Option<Vec<String>> {
    fn scan(
        def: &wfms_model::ProcessDefinition,
        scope: &ScopeState,
        prefix: &mut Vec<String>,
    ) -> Option<Vec<String>> {
        for act in &def.activities {
            let rt = scope.activities.get(&act.name)?;
            match rt.state {
                ActState::Ready if act.automatic_start => {
                    let mut p = prefix.clone();
                    p.push(act.name.clone());
                    return Some(p);
                }
                ActState::Running => {
                    if let ActivityKind::Block { process } = &act.kind {
                        if let Some(child) = scope.children.get(&act.name) {
                            prefix.push(act.name.clone());
                            let found = scan(process, child, prefix);
                            prefix.pop();
                            if found.is_some() {
                                return found;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        None
    }
    if inst.status != InstanceStatus::Running {
        return None;
    }
    scan(&inst.def, &inst.root, &mut Vec::new())
}

/// Executes the activity at `path` (which must be ready). `by` names
/// the person for manual executions; `None` means the engine runs it.
pub fn execute_activity(
    inst: &mut Instance,
    svc: &mut NavServices<'_>,
    path: &[String],
    by: Option<String>,
) {
    let instance = inst.id;
    let (name, scope_path) = path.split_last().expect("path never empty");

    // Materialise the input container from the data connectors whose
    // sources are available (§3.2 flow of data).
    let input = materialize_input(inst, scope_path, name);

    let Some((def, scope)) = inst.resolve_mut(scope_path) else {
        return;
    };
    let Some(act) = def.activity(name) else { return };
    let kind = act.kind.clone();
    let rt = scope.activities.get_mut(name).expect("activity exists");
    debug_assert_eq!(rt.state, ActState::Ready, "execute requires ready");
    rt.state = ActState::Running;
    rt.input = input.clone();
    let attempt = rt.attempt;
    svc.journal.append(Event::ActivityStarted {
        instance,
        path: join_path(path),
        attempt,
        by,
        input: input.clone(),
        at: svc.now(),
    });

    match kind {
        ActivityKind::NoOp => {
            // A no-op activity "commits" immediately with rc 1 and
            // passes its input container through to its output (only
            // members declared in the output schema survive). The
            // Figure 2 compensation trigger relies on this to expose
            // the State_i flags to its outgoing transition conditions.
            let outputs: BTreeMap<String, Value> = input
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            complete_execution(inst, svc, path, 1, outputs);
        }
        ActivityKind::Program { program } => {
            let mut ctx = ProgramContext::new(Arc::clone(svc.multidb));
            ctx.attempt = attempt;
            ctx.params = input
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            let outcome = svc.programs.invoke(&program, &mut ctx);
            let (rc, outputs) = match outcome {
                ProgramOutcome::Committed { rc, outputs } => (rc, outputs),
                ProgramOutcome::Aborted { rc, .. } => (rc, BTreeMap::new()),
            };
            complete_execution(inst, svc, path, rc, outputs);
        }
        ActivityKind::Block { process } => {
            // Start the child scope; its input container is the block
            // activity's materialised input. The block stays running
            // until the child scope finishes.
            let mut child = ScopeState::for_definition(&process);
            for (k, v) in input.iter() {
                child.input.set(k, v.clone());
            }
            let Some((_, scope)) = inst.resolve_mut(scope_path) else {
                return;
            };
            scope.children.insert(name.clone(), child);
            seed_scope(inst, svc, path);
            // An empty block (no activities) finishes immediately;
            // validation forbids it, but stay safe.
            check_scope_completion(inst, svc, path);
        }
    }
}

/// Builds the input container of `name` in the scope at `scope_path`.
fn materialize_input(inst: &Instance, scope_path: &[String], name: &str) -> Container {
    let Some((def, scope)) = inst.resolve(scope_path) else {
        return Container::empty();
    };
    let Some(act) = def.activity(name) else {
        return Container::empty();
    };
    let mut input = act.input.instantiate();
    for d in &def.data {
        let targets_us = matches!(&d.to, wfms_model::DataEndpoint::ActivityInput(a) if a == name);
        if !targets_us {
            continue;
        }
        let source: Option<&Container> = match &d.from {
            wfms_model::DataEndpoint::ProcessInput => Some(&scope.input),
            wfms_model::DataEndpoint::ActivityOutput(s) => scope
                .activities
                .get(s)
                .filter(|rt| rt.is_terminated() && rt.executed)
                .map(|rt| &rt.output),
            _ => None,
        };
        let Some(source) = source else { continue };
        for m in &d.mappings {
            if let Some(v) = source.get(&m.from_member) {
                input.set(&m.to_member, v.clone());
            }
        }
    }
    input
}

/// Records the outcome of an execution: builds the output container
/// (schema defaults + program outputs + `RC`), journals the finish,
/// closes work items and decides the exit condition.
pub fn complete_execution(
    inst: &mut Instance,
    svc: &mut NavServices<'_>,
    path: &[String],
    rc: i64,
    outputs: BTreeMap<String, Value>,
) {
    let instance = inst.id;
    let (name, scope_path) = path.split_last().expect("path never empty");
    let Some((def, scope)) = inst.resolve_mut(scope_path) else {
        return;
    };
    let Some(act) = def.activity(name) else { return };
    let schema = def.effective_output(act);

    let mut output = schema.instantiate();
    for (k, v) in outputs {
        // Only declared members enter the container: schema discipline
        // (undeclared program outputs are dropped, as in FlowMark where
        // the API only exposes declared container members).
        if schema.has(&k) {
            output.set(&k, v);
        }
    }
    output.set(RC_MEMBER, Value::Int(rc));

    let rt = scope.activities.get_mut(name).expect("activity exists");
    rt.state = ActState::Finished;
    rt.output = output.clone();
    let attempt = rt.attempt;
    svc.journal.append(Event::ActivityFinished {
        instance,
        path: join_path(path),
        attempt,
        output: output.clone(),
        at: svc.now(),
    });
    svc.worklists.close_for(instance, &join_path(path));
    decide_exit(inst, svc, path);
}

/// Decides the exit condition of a *finished* activity: terminate on
/// true, reschedule on false (§3.2). Public so recovery can resume an
/// instance whose journal ends right after an `ActivityFinished`.
pub fn decide_exit(inst: &mut Instance, svc: &mut NavServices<'_>, path: &[String]) {
    let instance = inst.id;
    let (name, scope_path) = path.split_last().expect("path never empty");
    let Some((def, scope)) = inst.resolve(scope_path) else {
        return;
    };
    let Some(act) = def.activity(name) else { return };
    let exit = act.exit.clone();
    let is_block = act.kind.is_block();
    let Some(rt) = scope.activities.get(name) else { return };
    let output = rt.output.clone();

    let exit_ok = match &exit.expr {
        None => true,
        Some(e) => e.eval_bool(&output).unwrap_or(true),
    };
    if exit_ok {
        terminate_activity(inst, svc, path, true);
    } else {
        let Some((_, scope)) = inst.resolve_mut(scope_path) else {
            return;
        };
        if is_block {
            // A rescheduled block starts over with a fresh child scope.
            scope.children.remove(name);
        }
        let rt = scope.activities.get_mut(name).expect("activity exists");
        rt.attempt += 1;
        let next_attempt = rt.attempt;
        rt.state = ActState::Waiting; // make_ready flips to Ready
        svc.journal.append(Event::ActivityRescheduled {
            instance,
            path: join_path(path),
            next_attempt,
            at: svc.now(),
        });
        make_ready(inst, svc, path);
    }
}

/// Recovery helper: an activity that was `Running` when the engine
/// crashed is re-executed from the beginning (§3.3: "the activity will
/// be rescheduled to be executed from the beginning"). Any stale work
/// item is closed; a manual activity is re-offered.
pub fn reset_running_to_ready(inst: &mut Instance, svc: &mut NavServices<'_>, path: &[String]) {
    let instance = inst.id;
    let (name, scope_path) = path.split_last().expect("path never empty");
    let Some((_, scope)) = inst.resolve_mut(scope_path) else {
        return;
    };
    let Some(rt) = scope.activities.get_mut(name) else { return };
    if rt.state != ActState::Running {
        return;
    }
    rt.state = ActState::Waiting;
    svc.worklists.close_for(instance, &join_path(path));
    make_ready(inst, svc, path);
}

/// Terminates the activity at `path`. `executed = false` is the dead
/// path elimination case. Evaluates outgoing connectors, cascades to
/// targets and checks scope completion.
pub fn terminate_activity(
    inst: &mut Instance,
    svc: &mut NavServices<'_>,
    path: &[String],
    executed: bool,
) {
    let instance = inst.id;
    let (name, scope_path) = path.split_last().expect("path never empty");
    let Some((def, scope)) = inst.resolve_mut(scope_path) else {
        return;
    };
    let rt = scope.activities.get_mut(name).expect("activity exists");
    rt.state = ActState::Terminated;
    rt.executed = executed;
    let output = rt.output.clone();
    svc.journal.append(Event::ActivityTerminated {
        instance,
        path: join_path(path),
        executed,
        at: svc.now(),
    });
    svc.worklists.close_for(instance, &join_path(path));

    // Data connectors from this activity to the scope's output
    // container take effect at termination of an executed activity.
    if executed {
        for d in &def.data {
            let from_us =
                matches!(&d.from, wfms_model::DataEndpoint::ActivityOutput(a) if a == name);
            if from_us && d.to == wfms_model::DataEndpoint::ProcessOutput {
                for m in &d.mappings {
                    if let Some(v) = output.get(&m.from_member) {
                        scope.output.set(&m.to_member, v.clone());
                    }
                }
            }
        }
    }

    // Evaluate outgoing connectors. A dead activity's connectors are
    // all false (§3.2); an executed one evaluates its transition
    // conditions over the output container, treating evaluation errors
    // as false (fail safe).
    let outgoing: Vec<(String, wfms_model::Expr)> = def
        .outgoing(name)
        .into_iter()
        .map(|c| (c.to.clone(), c.condition.clone()))
        .collect();
    for (to, cond) in outgoing {
        let value = executed && cond.eval_bool(&output).unwrap_or(false);
        {
            let Some((_, scope)) = inst.resolve_mut(scope_path) else {
                return;
            };
            scope
                .connectors
                .insert((name.clone(), to.clone()), value);
        }
        svc.journal.append(Event::ConnectorEvaluated {
            instance,
            scope: join_path(scope_path),
            from: name.clone(),
            to: to.clone(),
            value,
            at: svc.now(),
        });
        let mut target_path = scope_path.to_vec();
        target_path.push(to);
        update_target(inst, svc, &target_path);
    }

    check_scope_completion(inst, svc, scope_path);
}

/// Re-examines a waiting activity's start condition after one of its
/// incoming connectors was evaluated; makes it ready or dead.
fn update_target(inst: &mut Instance, svc: &mut NavServices<'_>, path: &[String]) {
    let (name, scope_path) = path.split_last().expect("path never empty");
    let Some((def, scope)) = inst.resolve(scope_path) else {
        return;
    };
    let Some(act) = def.activity(name) else { return };
    let Some(rt) = scope.activities.get(name) else { return };
    if rt.state != ActState::Waiting {
        // Already ready/running/terminated; OR-joins latch on the
        // first true connector.
        return;
    }
    let values: Vec<Option<bool>> = def
        .incoming(name)
        .iter()
        .map(|c| scope.connector_value(&c.from, &c.to))
        .collect();
    let decision = match act.start {
        StartCondition::And => {
            if values.contains(&Some(false)) {
                Some(false) // dead
            } else if values.iter().all(|v| *v == Some(true)) {
                Some(true) // ready
            } else {
                None // still waiting
            }
        }
        StartCondition::Or => {
            if values.contains(&Some(true)) {
                Some(true)
            } else if values.iter().all(|v| *v == Some(false)) {
                Some(false)
            } else {
                None
            }
        }
    };
    match decision {
        Some(true) => make_ready(inst, svc, path),
        Some(false) => terminate_activity(inst, svc, path, false),
        None => {}
    }
}

/// If every activity of the scope at `scope_path` is terminated, the
/// scope is finished: the root scope finishes the instance; a block
/// scope finishes its block activity (which may loop via its exit
/// condition).
pub(crate) fn check_scope_completion(
    inst: &mut Instance,
    svc: &mut NavServices<'_>,
    scope_path: &[String],
) {
    let instance = inst.id;
    let Some((_, scope)) = inst.resolve(scope_path) else {
        return;
    };
    if !scope.all_terminated() {
        return;
    }
    let output = scope.output.clone();

    if scope_path.is_empty() {
        if inst.status == InstanceStatus::Running {
            inst.status = InstanceStatus::Finished;
            svc.journal.append(Event::InstanceFinished {
                instance,
                output,
                at: svc.now(),
            });
        }
        return;
    }

    // A block scope finished: complete the block activity with the
    // scope's output. The block's return code is the scope output's
    // RC member when declared, else 1 ("the block ran").
    let (block_name, parent_path) = scope_path.split_last().expect("non-empty");
    let Some((_, parent)) = inst.resolve(parent_path) else {
        return;
    };
    let Some(rt) = parent.activities.get(block_name) else {
        return;
    };
    if rt.state != ActState::Running {
        return; // already completed (idempotence guard)
    }
    let rc = output
        .get(RC_MEMBER)
        .and_then(|v| v.as_int())
        .unwrap_or(1);
    let outputs: BTreeMap<String, Value> = output
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    complete_execution(inst, svc, scope_path, rc, outputs);
}

/// Cancels the instance: closes its work items and journals the
/// cancellation. Non-terminated activities simply stop navigating.
pub fn cancel_instance(inst: &mut Instance, svc: &mut NavServices<'_>) {
    if inst.status != InstanceStatus::Running {
        return;
    }
    inst.status = InstanceStatus::Cancelled;
    let open: Vec<WorkItemId> = svc
        .worklists
        .open_items()
        .iter()
        .filter(|it| it.instance == inst.id)
        .map(|it| it.id)
        .collect();
    for id in open {
        svc.worklists.close(id);
    }
    svc.journal.append(Event::InstanceCancelled {
        instance: inst.id,
        at: svc.now(),
    });
}

/// Sends deadline notifications (§3.3) for ready manual activities
/// whose deadline elapsed: each eligible person's manager is notified
/// once per readiness period. Returns `(path, person)` pairs notified.
pub fn check_deadlines(
    inst: &mut Instance,
    svc: &mut NavServices<'_>,
) -> Vec<(String, String)> {
    fn scan(
        def: &wfms_model::ProcessDefinition,
        scope: &mut ScopeState,
        prefix: &mut Vec<String>,
        now: txn_substrate::Tick,
        org: &OrgModel,
        due: &mut Vec<(Vec<String>, Vec<String>)>,
    ) {
        for act in &def.activities {
            let Some(rt) = scope.activities.get_mut(&act.name) else {
                continue;
            };
            if rt.state == ActState::Ready && !act.automatic_start && !rt.notified {
                if let (Some(deadline), Some(since)) = (act.deadline, rt.ready_since) {
                    if since + deadline <= now {
                        rt.notified = true;
                        let mut managers: Vec<String> = org
                            .resolve(&act.staff)
                            .iter()
                            .filter_map(|p| org.manager_of(p).map(|m| m.name.clone()))
                            .collect();
                        managers.sort();
                        managers.dedup();
                        let mut path = prefix.clone();
                        path.push(act.name.clone());
                        due.push((path, managers));
                    }
                }
            }
            if rt.state == ActState::Running {
                if let ActivityKind::Block { process } = &act.kind {
                    if let Some(child) = scope.children.get_mut(&act.name) {
                        prefix.push(act.name.clone());
                        scan(process, child, prefix, now, org, due);
                        prefix.pop();
                    }
                }
            }
        }
    }

    let now = svc.now();
    let mut due = Vec::new();
    let def = Arc::clone(&inst.def);
    scan(&def, &mut inst.root, &mut Vec::new(), now, svc.org, &mut due);

    let mut sent = Vec::new();
    for (path, managers) in due {
        for person in managers {
            svc.journal.append(Event::NotificationSent {
                instance: inst.id,
                path: join_path(&path),
                person: person.clone(),
                at: now,
            });
            sent.push((join_path(&path), person));
        }
    }
    sent
}
