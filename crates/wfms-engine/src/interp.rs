//! A reference interpreter — the navigator *before* compiled
//! templates, kept as an executable specification.
//!
//! [`RefEngine`] walks the raw [`ProcessDefinition`] the way the
//! original engine did: string-keyed activity maps, a depth-first
//! rescan of the definition on every step to find the next runnable
//! activity, and transition/exit conditions evaluated from their
//! `Expr` trees on every use. It supports the full single-threaded
//! semantics — program, no-op and block activities; AND/OR joins; dead
//! path elimination; exit-condition loops; data connectors; **manual
//! activities** with worklists, claims and deadline notifications —
//! and journals the same [`Event`]s in the same order as the compiled
//! navigator, so it serves two purposes:
//!
//! * the **baseline** for the `nav_compiled` benchmark — the honest
//!   "before" of the optimisation, not a strawman;
//! * a **differential oracle**: property tests drive random process
//!   graphs (including manual and deadline-bearing activities) through
//!   both engines and require identical event sequences, statuses and
//!   outputs.
//!
//! Recovery and parallel scheduling stay out of scope — those paths
//! are exercised against the real engine directly.

use crate::event::{Event, InstanceId, WorkItemId};
use crate::org::OrgModel;
use crate::state::{join_path, ActState, ActivityRt, InstanceStatus};
use crate::worklist::{WorkItem, WorkItemState, WorklistError, WorklistStore};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use txn_substrate::{
    MultiDatabase, ProgramContext, ProgramOutcome, ProgramRegistry, Value, VirtualClock,
};
use wfms_model::{ActivityKind, Container, ProcessDefinition, StartCondition, RC_MEMBER};

/// String-keyed per-scope runtime state, as the original engine kept
/// it.
#[derive(Debug, Clone, Default)]
struct RefScope {
    activities: HashMap<String, ActivityRt>,
    connectors: HashMap<(String, String), bool>,
    input: Container,
    output: Container,
    children: HashMap<String, RefScope>,
}

impl RefScope {
    fn for_definition(def: &ProcessDefinition) -> Self {
        Self {
            activities: def
                .activities
                .iter()
                .map(|a| (a.name.clone(), ActivityRt::default()))
                .collect(),
            connectors: HashMap::new(),
            input: def.input.instantiate(),
            output: def.output.instantiate(),
            children: HashMap::new(),
        }
    }

    fn all_terminated(&self) -> bool {
        self.activities
            .values()
            .all(|rt| rt.state == ActState::Terminated)
    }
}

struct RefInstance {
    id: InstanceId,
    def: Arc<ProcessDefinition>,
    root: RefScope,
    status: InstanceStatus,
}

impl RefInstance {
    fn resolve(&self, path: &[String]) -> Option<(&ProcessDefinition, &RefScope)> {
        let mut def: &ProcessDefinition = &self.def;
        let mut scope = &self.root;
        for seg in path {
            let act = def.activity(seg)?;
            let ActivityKind::Block { process } = &act.kind else {
                return None;
            };
            scope = scope.children.get(seg)?;
            def = process;
        }
        Some((def, scope))
    }

    fn resolve_mut(&mut self, path: &[String]) -> Option<(&ProcessDefinition, &mut RefScope)> {
        let mut def: &ProcessDefinition = &self.def;
        let mut scope = &mut self.root;
        for seg in path {
            let act = def.activity(seg)?;
            let ActivityKind::Block { process } = &act.kind else {
                return None;
            };
            scope = scope.children.get_mut(seg)?;
            def = process;
        }
        Some((def, scope))
    }
}

/// The definition-walking reference engine. Same program registry,
/// multidatabase and clock wiring as [`crate::Engine`]; only the
/// navigation machinery differs.
pub struct RefEngine {
    defs: HashMap<String, Arc<ProcessDefinition>>,
    instances: BTreeMap<InstanceId, RefInstance>,
    journal: Vec<Event>,
    programs: Arc<ProgramRegistry>,
    multidb: Arc<MultiDatabase>,
    clock: VirtualClock,
    next_instance: u64,
    org: OrgModel,
    worklists: WorklistStore,
    next_item: u64,
}

impl RefEngine {
    /// Builds a reference engine sharing the multidatabase's clock.
    pub fn new(multidb: Arc<MultiDatabase>, programs: Arc<ProgramRegistry>) -> Self {
        Self::with_org(multidb, programs, OrgModel::new())
    }

    /// Builds a reference engine with an organization model, enabling
    /// manual activities and deadline notifications.
    pub fn with_org(
        multidb: Arc<MultiDatabase>,
        programs: Arc<ProgramRegistry>,
        org: OrgModel,
    ) -> Self {
        let clock = multidb.clock().clone();
        Self {
            defs: HashMap::new(),
            instances: BTreeMap::new(),
            journal: Vec::new(),
            programs,
            multidb,
            clock,
            next_instance: 1,
            org,
            worklists: WorklistStore::new(),
            next_item: 1,
        }
    }

    /// Registers a definition (assumed valid; the caller validates).
    pub fn register(&mut self, def: ProcessDefinition) {
        self.defs.insert(def.name.clone(), Arc::new(def));
    }

    /// Starts an instance; panics on an unknown process name (this is
    /// a test oracle, not a public API).
    pub fn start(&mut self, process: &str, input: Container) -> InstanceId {
        let def = Arc::clone(self.defs.get(process).expect("registered process"));
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        let mut inst = RefInstance {
            id,
            root: RefScope::for_definition(&def),
            def,
            status: InstanceStatus::Running,
        };
        for (k, v) in input.iter() {
            inst.root.input.set(k, v.clone());
        }
        self.journal.push(Event::InstanceStarted {
            instance: id,
            process: inst.def.name.clone(),
            tenant: None,
            input: inst.root.input.clone(),
            at: self.clock.now(),
        });
        self.seed_scope(&mut inst, &[]);
        self.instances.insert(id, inst);
        id
    }

    /// Drives one instance until no automatic activity is runnable.
    pub fn run_to_quiescence(&mut self, id: InstanceId) -> InstanceStatus {
        let mut inst = self.instances.remove(&id).expect("known instance");
        while let Some(path) = Self::find_runnable(&inst) {
            self.execute_activity(&mut inst, &path, None);
        }
        let status = inst.status;
        self.instances.insert(id, inst);
        status
    }

    /// The worklist of `person`, as the real engine reports it.
    pub fn worklist(&self, person: &str) -> Vec<WorkItem> {
        self.worklists
            .worklist(person)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Executes a work item on behalf of `person` (claiming it first
    /// if still offered), then continues automatic navigation — the
    /// oracle twin of [`crate::Engine::execute_item`].
    pub fn execute_item(&mut self, item: WorkItemId, person: &str) -> Result<(), WorklistError> {
        let it = self
            .worklists
            .get(item)
            .ok_or(WorklistError::NoSuchItem(item))?
            .clone();
        match &it.state {
            WorkItemState::Offered => {
                self.worklists.claim(item, person)?;
                self.journal.push(Event::WorkItemClaimed {
                    item,
                    person: person.to_owned(),
                    at: self.clock.now(),
                });
            }
            WorkItemState::Claimed(p) if p == person => {}
            WorkItemState::Claimed(p) => {
                return Err(WorklistError::AlreadyClaimed {
                    item,
                    by: p.clone(),
                })
            }
            WorkItemState::Closed => return Err(WorklistError::Closed(item)),
        }
        let mut inst = self
            .instances
            .remove(&it.instance)
            .expect("item's instance exists");
        let path: Vec<String> = it.path.split('/').map(str::to_owned).collect();
        let ready = inst
            .resolve(&path[..path.len() - 1])
            .and_then(|(_, s)| s.activities.get(&path[path.len() - 1]))
            .is_some_and(|rt| rt.state == ActState::Ready);
        assert!(ready, "open work item implies a ready activity");
        self.execute_activity(&mut inst, &path, Some(person.to_owned()));
        while let Some(p) = Self::find_runnable(&inst) {
            self.execute_activity(&mut inst, &p, None);
        }
        self.instances.insert(it.instance, inst);
        Ok(())
    }

    /// Advances the virtual clock and delivers due deadline
    /// notifications, instance by instance in id order — the oracle
    /// twin of [`crate::Engine::advance_clock`].
    pub fn advance_clock(&mut self, ticks: txn_substrate::Tick) -> Vec<(String, String)> {
        self.clock.advance(ticks);
        let ids: Vec<InstanceId> = self.instances.keys().copied().collect();
        let mut sent = Vec::new();
        for id in ids {
            let mut inst = self.instances.remove(&id).expect("known instance");
            if inst.status == InstanceStatus::Running {
                sent.extend(self.check_deadlines(&mut inst));
            }
            self.instances.insert(id, inst);
        }
        sent
    }

    /// Walks the definition for ready manual activities whose deadline
    /// elapsed, notifying each eligible person's manager once per
    /// readiness period. Scan order matches the compiled navigator:
    /// deadline activities of a scope in declaration order, then
    /// running blocks in declaration order.
    fn check_deadlines(&mut self, inst: &mut RefInstance) -> Vec<(String, String)> {
        fn scan(
            def: &ProcessDefinition,
            scope: &mut RefScope,
            prefix: &mut Vec<String>,
            now: txn_substrate::Tick,
            org: &OrgModel,
            due: &mut Vec<(Vec<String>, Vec<String>)>,
        ) {
            for act in &def.activities {
                if act.automatic_start {
                    continue;
                }
                let Some(deadline) = act.deadline else {
                    continue;
                };
                let Some(rt) = scope.activities.get_mut(&act.name) else {
                    continue;
                };
                if rt.state == ActState::Ready && !rt.notified {
                    if let Some(since) = rt.ready_since {
                        if since + deadline <= now {
                            rt.notified = true;
                            let mut managers: Vec<String> = org
                                .resolve(&act.staff)
                                .iter()
                                .filter_map(|p| org.manager_of(p).map(|m| m.name.clone()))
                                .collect();
                            managers.sort();
                            managers.dedup();
                            let mut path = prefix.clone();
                            path.push(act.name.clone());
                            due.push((path, managers));
                        }
                    }
                }
            }
            for act in &def.activities {
                if let ActivityKind::Block { process } = &act.kind {
                    let running = scope
                        .activities
                        .get(&act.name)
                        .is_some_and(|rt| rt.state == ActState::Running);
                    if running {
                        if let Some(child) = scope.children.get_mut(&act.name) {
                            prefix.push(act.name.clone());
                            scan(process, child, prefix, now, org, due);
                            prefix.pop();
                        }
                    }
                }
            }
        }

        let now = self.clock.now();
        let mut due = Vec::new();
        let def = Arc::clone(&inst.def);
        scan(
            &def,
            &mut inst.root,
            &mut Vec::new(),
            now,
            &self.org,
            &mut due,
        );

        let mut sent = Vec::new();
        for (path, managers) in due {
            let path_str = join_path(&path);
            for person in managers {
                self.journal.push(Event::NotificationSent {
                    instance: inst.id,
                    path: path_str.clone().into(),
                    person: person.clone(),
                    at: now,
                });
                sent.push((path_str.clone(), person));
            }
        }
        sent
    }

    /// Runs every instance to quiescence, in id order.
    pub fn run_all(&mut self) {
        let ids: Vec<InstanceId> = self.instances.keys().copied().collect();
        for id in ids {
            self.run_to_quiescence(id);
        }
    }

    /// Current status of an instance.
    pub fn status(&self, id: InstanceId) -> InstanceStatus {
        self.instances[&id].status
    }

    /// The process output container of an instance.
    pub fn output(&self, id: InstanceId) -> Container {
        self.instances[&id].root.output.clone()
    }

    /// All journalled events.
    pub fn events(&self) -> &[Event] {
        &self.journal
    }

    /// Events of one instance, in order.
    pub fn events_for(&self, id: InstanceId) -> Vec<Event> {
        self.journal
            .iter()
            .filter(|e| e.instance() == Some(id))
            .cloned()
            .collect()
    }

    fn seed_scope(&mut self, inst: &mut RefInstance, scope_path: &[String]) {
        let Some((def, _)) = inst.resolve(scope_path) else {
            return;
        };
        let starts: Vec<String> = def
            .start_activities()
            .iter()
            .map(|a| a.name.clone())
            .collect();
        for name in starts {
            let mut path = scope_path.to_vec();
            path.push(name);
            self.make_ready(inst, &path);
        }
    }

    fn make_ready(&mut self, inst: &mut RefInstance, path: &[String]) {
        let instance = inst.id;
        let now = self.clock.now();
        let (name, scope_path) = path.split_last().expect("path never empty");
        let Some((def, scope)) = inst.resolve_mut(scope_path) else {
            return;
        };
        let act = def.activity(name).expect("activity exists");
        let automatic = act.automatic_start;
        let staff = act.staff.clone();
        let rt = scope.activities.get_mut(name).expect("activity exists");
        rt.state = ActState::Ready;
        rt.ready_since = Some(now);
        rt.notified = false;
        let attempt = rt.attempt;
        self.journal.push(Event::ActivityReady {
            instance,
            path: join_path(path).into(),
            attempt,
            at: now,
        });
        if !automatic {
            let persons = self.org.resolve(&staff);
            let item = WorkItemId(self.next_item);
            self.next_item += 1;
            self.worklists.offer(WorkItem {
                id: item,
                instance,
                path: join_path(path),
                attempt,
                offered_to: persons.clone(),
                state: WorkItemState::Offered,
                offered_at: now,
            });
            self.journal.push(Event::WorkItemOffered {
                instance,
                path: join_path(path).into(),
                item,
                persons,
                at: now,
            });
        }
    }

    /// The original hot path: rescan the definition depth-first in
    /// declaration order for the first ready automatic activity.
    fn find_runnable(inst: &RefInstance) -> Option<Vec<String>> {
        fn scan(
            def: &ProcessDefinition,
            scope: &RefScope,
            prefix: &mut Vec<String>,
        ) -> Option<Vec<String>> {
            for act in &def.activities {
                let rt = scope.activities.get(&act.name)?;
                match rt.state {
                    ActState::Ready if act.automatic_start => {
                        let mut p = prefix.clone();
                        p.push(act.name.clone());
                        return Some(p);
                    }
                    ActState::Running => {
                        if let ActivityKind::Block { process } = &act.kind {
                            if let Some(child) = scope.children.get(&act.name) {
                                prefix.push(act.name.clone());
                                let found = scan(process, child, prefix);
                                prefix.pop();
                                if found.is_some() {
                                    return found;
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        if inst.status != InstanceStatus::Running {
            return None;
        }
        scan(&inst.def, &inst.root, &mut Vec::new())
    }

    fn execute_activity(&mut self, inst: &mut RefInstance, path: &[String], by: Option<String>) {
        let instance = inst.id;
        let (name, scope_path) = path.split_last().expect("path never empty");
        let input = Self::materialize_input(inst, scope_path, name);

        let Some((def, scope)) = inst.resolve_mut(scope_path) else {
            return;
        };
        let Some(act) = def.activity(name) else {
            return;
        };
        let kind = act.kind.clone();
        let rt = scope.activities.get_mut(name).expect("activity exists");
        rt.state = ActState::Running;
        rt.input = input.clone();
        let attempt = rt.attempt;
        self.journal.push(Event::ActivityStarted {
            instance,
            path: join_path(path).into(),
            attempt,
            by,
            input: input.clone(),
            at: self.clock.now(),
        });

        match kind {
            ActivityKind::NoOp => {
                let outputs: BTreeMap<String, Value> =
                    input.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                self.complete_execution(inst, path, 1, outputs);
            }
            ActivityKind::Program { program } => {
                let mut ctx = ProgramContext::new(Arc::clone(&self.multidb));
                ctx.attempt = attempt;
                ctx.params = input.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                let outcome = self.programs.invoke(&program, &mut ctx);
                let (rc, outputs) = match outcome {
                    ProgramOutcome::Committed { rc, outputs } => (rc, outputs),
                    ProgramOutcome::Aborted { rc, .. } => (rc, BTreeMap::new()),
                };
                self.complete_execution(inst, path, rc, outputs);
            }
            ActivityKind::Block { process } => {
                let mut child = RefScope::for_definition(&process);
                for (k, v) in input.iter() {
                    child.input.set(k, v.clone());
                }
                let Some((_, scope)) = inst.resolve_mut(scope_path) else {
                    return;
                };
                scope.children.insert(name.clone(), child);
                self.seed_scope(inst, path);
                self.check_scope_completion(inst, path);
            }
        }
    }

    fn materialize_input(inst: &RefInstance, scope_path: &[String], name: &str) -> Container {
        let Some((def, scope)) = inst.resolve(scope_path) else {
            return Container::empty();
        };
        let Some(act) = def.activity(name) else {
            return Container::empty();
        };
        let mut input = act.input.instantiate();
        for d in &def.data {
            let targets_us =
                matches!(&d.to, wfms_model::DataEndpoint::ActivityInput(a) if a == name);
            if !targets_us {
                continue;
            }
            let source: Option<&Container> = match &d.from {
                wfms_model::DataEndpoint::ProcessInput => Some(&scope.input),
                wfms_model::DataEndpoint::ActivityOutput(s) => scope
                    .activities
                    .get(s)
                    .filter(|rt| rt.is_terminated() && rt.executed)
                    .map(|rt| &rt.output),
                _ => None,
            };
            let Some(source) = source else { continue };
            for m in &d.mappings {
                if let Some(v) = source.get(&m.from_member) {
                    input.set(&m.to_member, v.clone());
                }
            }
        }
        input
    }

    fn complete_execution(
        &mut self,
        inst: &mut RefInstance,
        path: &[String],
        rc: i64,
        outputs: BTreeMap<String, Value>,
    ) {
        let instance = inst.id;
        let (name, scope_path) = path.split_last().expect("path never empty");
        let Some((def, scope)) = inst.resolve_mut(scope_path) else {
            return;
        };
        let Some(act) = def.activity(name) else {
            return;
        };
        let schema = def.effective_output(act);

        let mut output = schema.instantiate();
        for (k, v) in outputs {
            if schema.has(&k) {
                output.set(&k, v);
            }
        }
        output.set(RC_MEMBER, Value::Int(rc));

        let rt = scope.activities.get_mut(name).expect("activity exists");
        rt.state = ActState::Finished;
        rt.output = output.clone();
        let attempt = rt.attempt;
        self.journal.push(Event::ActivityFinished {
            instance,
            path: join_path(path).into(),
            attempt,
            output: output.clone(),
            at: self.clock.now(),
        });
        self.worklists.close_for(instance, &join_path(path));
        self.decide_exit(inst, path);
    }

    fn decide_exit(&mut self, inst: &mut RefInstance, path: &[String]) {
        let instance = inst.id;
        let (name, scope_path) = path.split_last().expect("path never empty");
        let Some((def, scope)) = inst.resolve(scope_path) else {
            return;
        };
        let Some(act) = def.activity(name) else {
            return;
        };
        let exit = act.exit.clone();
        let is_block = act.kind.is_block();
        let Some(rt) = scope.activities.get(name) else {
            return;
        };
        let output = rt.output.clone();

        let exit_ok = match &exit.expr {
            None => true,
            Some(e) => e.eval_bool(&output).unwrap_or(true),
        };
        if exit_ok {
            self.terminate_activity(inst, path, true);
        } else {
            let Some((_, scope)) = inst.resolve_mut(scope_path) else {
                return;
            };
            if is_block {
                scope.children.remove(name);
            }
            let rt = scope.activities.get_mut(name).expect("activity exists");
            rt.attempt += 1;
            let next_attempt = rt.attempt;
            rt.state = ActState::Waiting;
            self.journal.push(Event::ActivityRescheduled {
                instance,
                path: join_path(path).into(),
                next_attempt,
                at: self.clock.now(),
            });
            self.make_ready(inst, path);
        }
    }

    fn terminate_activity(&mut self, inst: &mut RefInstance, path: &[String], executed: bool) {
        let instance = inst.id;
        let (name, scope_path) = path.split_last().expect("path never empty");
        let Some((def, scope)) = inst.resolve_mut(scope_path) else {
            return;
        };
        let rt = scope.activities.get_mut(name).expect("activity exists");
        rt.state = ActState::Terminated;
        rt.executed = executed;
        let output = rt.output.clone();
        self.journal.push(Event::ActivityTerminated {
            instance,
            path: join_path(path).into(),
            executed,
            at: self.clock.now(),
        });
        self.worklists.close_for(instance, &join_path(path));

        if executed {
            for d in &def.data {
                let from_us =
                    matches!(&d.from, wfms_model::DataEndpoint::ActivityOutput(a) if a == name);
                if from_us && d.to == wfms_model::DataEndpoint::ProcessOutput {
                    for m in &d.mappings {
                        if let Some(v) = output.get(&m.from_member) {
                            scope.output.set(&m.to_member, v.clone());
                        }
                    }
                }
            }
        }

        let outgoing: Vec<(String, wfms_model::Expr)> = def
            .outgoing(name)
            .into_iter()
            .map(|c| (c.to.clone(), c.condition.clone()))
            .collect();
        for (to, cond) in outgoing {
            let value = executed && cond.eval_bool(&output).unwrap_or(false);
            {
                let Some((_, scope)) = inst.resolve_mut(scope_path) else {
                    return;
                };
                scope.connectors.insert((name.clone(), to.clone()), value);
            }
            self.journal.push(Event::ConnectorEvaluated {
                instance,
                scope: join_path(scope_path).into(),
                from: name.clone().into(),
                to: to.clone().into(),
                value,
                at: self.clock.now(),
            });
            let mut target_path = scope_path.to_vec();
            target_path.push(to);
            self.update_target(inst, &target_path);
        }

        self.check_scope_completion(inst, scope_path);
    }

    fn update_target(&mut self, inst: &mut RefInstance, path: &[String]) {
        let (name, scope_path) = path.split_last().expect("path never empty");
        let Some((def, scope)) = inst.resolve(scope_path) else {
            return;
        };
        let Some(act) = def.activity(name) else {
            return;
        };
        let Some(rt) = scope.activities.get(name) else {
            return;
        };
        if rt.state != ActState::Waiting {
            return;
        }
        let values: Vec<Option<bool>> = def
            .incoming(name)
            .iter()
            .map(|c| {
                scope
                    .connectors
                    .get(&(c.from.clone(), c.to.clone()))
                    .copied()
            })
            .collect();
        let decision = match act.start {
            StartCondition::And => {
                if values.contains(&Some(false)) {
                    Some(false)
                } else if values.iter().all(|v| *v == Some(true)) {
                    Some(true)
                } else {
                    None
                }
            }
            StartCondition::Or => {
                if values.contains(&Some(true)) {
                    Some(true)
                } else if values.iter().all(|v| *v == Some(false)) {
                    Some(false)
                } else {
                    None
                }
            }
        };
        match decision {
            Some(true) => self.make_ready(inst, path),
            Some(false) => self.terminate_activity(inst, path, false),
            None => {}
        }
    }

    fn check_scope_completion(&mut self, inst: &mut RefInstance, scope_path: &[String]) {
        let instance = inst.id;
        let Some((_, scope)) = inst.resolve(scope_path) else {
            return;
        };
        if !scope.all_terminated() {
            return;
        }
        let output = scope.output.clone();

        if scope_path.is_empty() {
            if inst.status == InstanceStatus::Running {
                inst.status = InstanceStatus::Finished;
                self.journal.push(Event::InstanceFinished {
                    instance,
                    output,
                    at: self.clock.now(),
                });
            }
            return;
        }

        let (block_name, parent_path) = scope_path.split_last().expect("non-empty");
        let Some((_, parent)) = inst.resolve(parent_path) else {
            return;
        };
        let Some(rt) = parent.activities.get(block_name) else {
            return;
        };
        if rt.state != ActState::Running {
            return;
        }
        let rc = output.get(RC_MEMBER).and_then(|v| v.as_int()).unwrap_or(1);
        let outputs: BTreeMap<String, Value> =
            output.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        self.complete_execution(inst, scope_path, rc, outputs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_model::ProcessBuilder;

    fn world() -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
        let fed = MultiDatabase::new(0);
        fed.add_database("db");
        let programs = Arc::new(ProgramRegistry::new());
        programs.register_fn("ok", |_ctx| ProgramOutcome::Committed {
            rc: 1,
            outputs: BTreeMap::new(),
        });
        (fed, programs)
    }

    #[test]
    fn runs_a_chain_to_finished() {
        let (fed, programs) = world();
        let def = ProcessBuilder::new("p")
            .program("A", "ok")
            .program("B", "ok")
            .connect_when("A", "B", "RC = 1")
            .build()
            .unwrap();
        let mut eng = RefEngine::new(fed, programs);
        eng.register(def);
        let id = eng.start("p", Container::empty());
        assert_eq!(eng.run_to_quiescence(id), InstanceStatus::Finished);
        assert!(eng
            .events()
            .iter()
            .any(|e| matches!(e, Event::InstanceFinished { .. })));
    }

    #[test]
    fn dead_path_elimination_terminates_unexecuted_branch() {
        let (fed, programs) = world();
        let def = ProcessBuilder::new("p")
            .program("A", "ok")
            .program("B", "ok")
            .program("C", "ok")
            .connect_when("A", "B", "RC = 1")
            .connect_when("A", "C", "RC = 0")
            .build()
            .unwrap();
        let mut eng = RefEngine::new(fed, programs);
        eng.register(def);
        let id = eng.start("p", Container::empty());
        assert_eq!(eng.run_to_quiescence(id), InstanceStatus::Finished);
        let dead = eng.events_for(id).iter().any(
            |e| matches!(e, Event::ActivityTerminated { path, executed: false, .. } if path == "C"),
        );
        assert!(dead, "C must be dead-path eliminated");
    }
}
