//! Live engine metrics — the observability layer §3.3 motivates
//! ("monitoring, accounting and audit" as product-critical WFMS
//! features). Where [`crate::audit`] renders history after the fact,
//! this module observes a *running* engine: per-activity latency
//! histograms, navigator counters, journal append/flush timing and the
//! federation's transaction/lock/WAL statistics, snapshotted into a
//! typed [`EngineMetrics`] and exposed as JSON or Prometheus text.
//!
//! ## Hot-path design
//!
//! Navigation of the compiled 100-activity benchmark chain spends
//! ~2.7µs per activity, so the whole metrics budget per execution is
//! on the order of 100ns. Two rules keep the hooks inside it:
//!
//! * **No name lookups while navigating.** [`EngineObs`] resolves its
//!   counter/gauge `Arc`s from the registry once at engine
//!   construction; `ScopeProbes` pre-resolves one histogram handle
//!   per activity of a compiled template, mirroring the scope tree so
//!   an `IdPath` indexes its probe directly.
//! * **One branch when disabled.** Every hot hook is gated on
//!   `EngineObs::enabled`; a default engine pays a single predictable
//!   branch per hook site and records nothing.
//!
//! Cold paths (recovery fix-ups, stale-claim releases) record
//! unconditionally — their counts answer "what did recovery do" even
//! on engines that never opted into hot-path metrics.

use crate::compiled::{ActId, CompiledKind, CompiledScope};
use crate::engine::Engine;
use crate::state::InstanceStatus;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;
use wfms_observe::{
    Counter, Gauge, Histogram, HistogramSnapshot, HistogramVec, Observer, Registry,
};

/// Name of the per-activity latency histogram family.
pub const ACT_LATENCY_FAMILY: &str = "engine.act_latency_ns";

/// Per-activity latency probes mirroring one compiled template's scope
/// tree: `acts[id]` is the histogram of the activity with that
/// [`ActId`], `children[id]` the probes of its child scope when the
/// activity is a block. Walking an `IdPath` through this tree costs a
/// few indexed loads — no map lookup, no string formatting.
#[derive(Debug)]
pub(crate) struct ScopeProbes {
    acts: Vec<Arc<Histogram>>,
    children: Vec<Option<Arc<ScopeProbes>>>,
}

impl ScopeProbes {
    /// Builds the probe tree for `root`, registering one labelled
    /// histogram per activity (labels are the journal's slash paths).
    pub(crate) fn build(root: &CompiledScope, registry: &Registry) -> Arc<Self> {
        let family = registry.histogram_vec(ACT_LATENCY_FAMILY);
        Self::build_scope(root, "", &family)
    }

    fn build_scope(cs: &CompiledScope, prefix: &str, family: &HistogramVec) -> Arc<Self> {
        let mut acts = Vec::with_capacity(cs.acts.len());
        let mut children = Vec::with_capacity(cs.acts.len());
        for act in &cs.acts {
            let label = if prefix.is_empty() {
                act.name.clone()
            } else {
                format!("{prefix}/{}", act.name)
            };
            acts.push(family.with_label(&label));
            children.push(match &act.kind {
                CompiledKind::Block(child) => Some(Self::build_scope(child, &label, family)),
                _ => None,
            });
        }
        Arc::new(Self { acts, children })
    }

    /// The histogram of the activity at `path` (None only for paths
    /// that do not address this template — defensive, like the
    /// navigator's own resolution).
    pub(crate) fn probe(&self, path: &[ActId]) -> Option<&Histogram> {
        let (&last, scope_ids) = path.split_last()?;
        let mut cur = self;
        for &id in scope_ids {
            cur = cur.children.get(id as usize)?.as_deref()?;
        }
        cur.acts.get(last as usize).map(|h| h.as_ref())
    }
}

/// The engine's observability bundle: the [`Observer`] plus hot-path
/// instruments pre-resolved from its registry (see the module docs for
/// why lookups are banned from navigation).
#[derive(Debug)]
pub struct EngineObs {
    pub(crate) observer: Arc<Observer>,
    /// Activity executions started (attempts, not unique activities).
    pub(crate) executions: Arc<Counter>,
    /// Executions with attempt > 0 (exit-condition retries).
    pub(crate) retries: Arc<Counter>,
    /// Exit conditions that evaluated false.
    pub(crate) reschedules: Arc<Counter>,
    /// Activities removed by dead path elimination.
    pub(crate) dead_paths: Arc<Counter>,
    /// Executions whose innermost enclosing block is a compensation
    /// block (the saga translation's `Compensation` scope).
    pub(crate) compensations: Arc<Counter>,
    /// Work items offered to worklists.
    pub(crate) items_offered: Arc<Counter>,
    /// Deadline notifications sent.
    pub(crate) notifications: Arc<Counter>,
    /// High-water mark of any instance's ready heap.
    pub(crate) ready_depth: Arc<Gauge>,
}

impl EngineObs {
    pub(crate) fn new(observer: Arc<Observer>) -> Self {
        let reg = observer.registry();
        Self {
            executions: reg.counter("nav.executions"),
            retries: reg.counter("nav.retries"),
            reschedules: reg.counter("nav.reschedules"),
            dead_paths: reg.counter("nav.dead_paths"),
            compensations: reg.counter("nav.compensations"),
            items_offered: reg.counter("worklist.items_offered"),
            notifications: reg.counter("nav.notifications"),
            ready_depth: reg.gauge("engine.ready_heap_depth"),
            observer,
        }
    }

    /// True when hot-path hooks should record.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.observer.is_enabled()
    }
}

/// Journal instruments, attached to the engine's main journal when the
/// observer is enabled (per-worker shards stay unobserved — their
/// events are counted when the merged batch lands).
#[derive(Debug)]
pub struct JournalProbes {
    /// Single-event appends.
    pub(crate) appends: Arc<Counter>,
    /// Wall-clock nanoseconds per append, *including* the mirror write
    /// and any policy-driven flush — the journal flush latency.
    /// Sampled 1-in-16 (see `JournalProbes::sample_tick`): the
    /// engine appends several events per activity, and timing each
    /// one costs more than the append itself.
    pub(crate) append_ns: Arc<Histogram>,
    /// Events per `append_batch` call (the group-commit size).
    pub(crate) batch_size: Arc<Histogram>,
    /// Rolling append index driving the `append_ns` sampler.
    sample: std::sync::atomic::AtomicU64,
}

impl JournalProbes {
    pub(crate) fn new(reg: &Registry) -> Self {
        Self {
            appends: reg.counter("journal.appends"),
            append_ns: reg.histogram("journal.append_ns"),
            batch_size: reg.histogram("journal.batch_size"),
            sample: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// True on every 16th call — whether this append's latency should
    /// be clocked. `journal.appends` stays exact; `journal.append_ns`
    /// holds a 1-in-16 sample, which preserves the quantiles while
    /// keeping the per-append cost to one relaxed `fetch_add`.
    pub(crate) fn sample_tick(&self) -> bool {
        self.sample
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            & 0xF
            == 0
    }
}

/// Latency summary in nanoseconds — the serialisable face of a
/// [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct LatencySummary {
    /// Observations recorded.
    pub count: u64,
    /// Mean, rounded down.
    pub mean_ns: u64,
    /// Estimated median.
    pub p50_ns: u64,
    /// Estimated 95th percentile.
    pub p95_ns: u64,
    /// Estimated 99th percentile.
    pub p99_ns: u64,
    /// Largest observation.
    pub max_ns: u64,
}

impl From<HistogramSnapshot> for LatencySummary {
    fn from(s: HistogramSnapshot) -> Self {
        Self {
            count: s.count,
            mean_ns: s.mean(),
            p50_ns: s.p50,
            p95_ns: s.p95,
            p99_ns: s.p99,
            max_ns: s.max,
        }
    }
}

/// Per-database statistics of the federation: transaction rates, lock
/// contention and WAL append/flush timing, pulled from the substrate's
/// own counters at snapshot time.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DbMetrics {
    /// Database name.
    pub name: String,
    /// Transactions begun.
    pub txns_begun: u64,
    /// Transactions committed.
    pub txns_committed: u64,
    /// Transactions aborted (all causes).
    pub txns_aborted: u64,
    /// Aborts caused by deadlock detection.
    pub deadlock_aborts: u64,
    /// Aborts caused by the failure injector.
    pub injected_aborts: u64,
    /// Transactional reads.
    pub reads: u64,
    /// Transactional writes.
    pub writes: u64,
    /// Locks granted without waiting.
    pub lock_immediate_grants: u64,
    /// Lock requests that blocked.
    pub lock_waits: u64,
    /// Nanoseconds spent blocked on locks.
    pub lock_wait_nanos: u64,
    /// Deadlock refusals.
    pub lock_deadlocks: u64,
    /// Shared→exclusive upgrades.
    pub lock_upgrades: u64,
    /// WAL records appended.
    pub wal_appends: u64,
    /// WAL commit/abort durability barriers.
    pub wal_barrier_flushes: u64,
    /// Nanoseconds of WAL mirror file I/O.
    pub wal_mirror_nanos: u64,
}

/// A typed point-in-time snapshot of everything the engine observes.
/// Produced by [`Engine::metrics`]; rendered by
/// [`EngineMetrics::to_json`] / [`EngineMetrics::to_prometheus`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct EngineMetrics {
    /// Instances currently running.
    pub instances_running: u64,
    /// Instances finished.
    pub instances_finished: u64,
    /// Instances cancelled.
    pub instances_cancelled: u64,
    /// Work items in `Offered` state.
    pub items_offered: u64,
    /// Work items claimed and not yet finished.
    pub items_claimed: u64,
    /// Work items closed.
    pub items_closed: u64,
    /// Events in the journal right now (post-compaction length).
    pub journal_events: u64,
    /// Per-activity start→finish latency, labelled by activity path.
    pub activities: BTreeMap<String, LatencySummary>,
    /// Every registry counter by name (navigator, journal, recovery).
    pub counters: BTreeMap<String, u64>,
    /// Every registry gauge by name.
    pub gauges: BTreeMap<String, i64>,
    /// Every plain registry histogram by name (journal flush latency,
    /// batch sizes, …).
    pub histograms: BTreeMap<String, LatencySummary>,
    /// Per-database federation statistics.
    pub federation: Vec<DbMetrics>,
}

impl EngineMetrics {
    /// Pretty-printed JSON exposition.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("EngineMetrics is always serializable")
    }

    /// Prometheus text exposition: the registry instruments plus typed
    /// engine/worklist/federation gauges.
    pub fn to_prometheus(&self) -> String {
        fn prom_name(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        fn hist(out: &mut String, name: &str, label: Option<&str>, s: &LatencySummary) {
            let tag = |q: &str| match label {
                Some(l) => format!("{name}{{label=\"{l}\",quantile=\"{q}\"}}"),
                None => format!("{name}{{quantile=\"{q}\"}}"),
            };
            let bare = |suffix: &str| match label {
                Some(l) => format!("{name}_{suffix}{{label=\"{l}\"}}"),
                None => format!("{name}_{suffix}"),
            };
            out.push_str(&format!("{} {}\n", tag("0.5"), s.p50_ns));
            out.push_str(&format!("{} {}\n", tag("0.95"), s.p95_ns));
            out.push_str(&format!("{} {}\n", tag("0.99"), s.p99_ns));
            out.push_str(&format!("{} {}\n", bare("count"), s.count));
            out.push_str(&format!("{} {}\n", bare("max"), s.max_ns));
        }

        let mut out = String::new();
        for (name, v) in [
            ("engine.instances_running", self.instances_running),
            ("engine.instances_finished", self.instances_finished),
            ("engine.instances_cancelled", self.instances_cancelled),
            ("worklist.items_open", self.items_offered),
            ("worklist.items_claimed", self.items_claimed),
            ("worklist.items_closed", self.items_closed),
            ("journal.events", self.journal_events),
        ] {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, s) in &self.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            hist(&mut out, &n, None, s);
        }
        let act = prom_name(ACT_LATENCY_FAMILY);
        if !self.activities.is_empty() {
            out.push_str(&format!("# TYPE {act} summary\n"));
        }
        for (label, s) in &self.activities {
            hist(&mut out, &act, Some(label), s);
        }
        for db in &self.federation {
            for (name, v) in [
                ("db.txns_begun", db.txns_begun),
                ("db.txns_committed", db.txns_committed),
                ("db.txns_aborted", db.txns_aborted),
                ("db.deadlock_aborts", db.deadlock_aborts),
                ("db.injected_aborts", db.injected_aborts),
                ("db.reads", db.reads),
                ("db.writes", db.writes),
                ("db.lock_immediate_grants", db.lock_immediate_grants),
                ("db.lock_waits", db.lock_waits),
                ("db.lock_wait_nanos", db.lock_wait_nanos),
                ("db.lock_deadlocks", db.lock_deadlocks),
                ("db.lock_upgrades", db.lock_upgrades),
                ("db.wal_appends", db.wal_appends),
                ("db.wal_barrier_flushes", db.wal_barrier_flushes),
                ("db.wal_mirror_nanos", db.wal_mirror_nanos),
            ] {
                let n = prom_name(name);
                out.push_str(&format!("{n}{{db=\"{}\"}} {v}\n", db.name));
            }
        }
        out
    }
}

impl Engine {
    /// The engine's observer (disabled by default; pass one via
    /// [`crate::EngineConfig::observer`] to enable hot-path metrics).
    pub fn observer(&self) -> &Arc<Observer> {
        &self.obs.observer
    }

    /// Snapshots everything the engine observes into a typed
    /// [`EngineMetrics`]. Always available — on engines without an
    /// enabled observer the per-activity histograms are empty, but
    /// instance/work-item states, journal length, cold-path counters
    /// and the federation statistics are still populated.
    pub fn metrics(&self) -> EngineMetrics {
        let (mut running, mut finished, mut cancelled) = (0u64, 0u64, 0u64);
        for inst in self.instances.lock().values() {
            match inst.status {
                InstanceStatus::Running => running += 1,
                InstanceStatus::Finished => finished += 1,
                InstanceStatus::Cancelled => cancelled += 1,
            }
        }
        let (offered, claimed, closed) = self.worklists.lock().state_counts();

        let snap = self.obs.observer.registry().snapshot();
        let activities = snap
            .families
            .get(ACT_LATENCY_FAMILY)
            .map(|labels| {
                labels
                    .iter()
                    .map(|(l, s)| (l.clone(), LatencySummary::from(*s)))
                    .collect()
            })
            .unwrap_or_default();

        let federation = self
            .multidb
            .names()
            .into_iter()
            .filter_map(|name| self.multidb.db(&name))
            .map(|db| {
                let s = db.stats();
                let l = db.lock_stats();
                let w = db.wal_stats();
                DbMetrics {
                    name: db.name().to_owned(),
                    txns_begun: s.begun,
                    txns_committed: s.committed,
                    txns_aborted: s.aborted,
                    deadlock_aborts: s.deadlock_aborts,
                    injected_aborts: s.injected_aborts,
                    reads: s.reads,
                    writes: s.writes,
                    lock_immediate_grants: l.immediate_grants,
                    lock_waits: l.waits,
                    lock_wait_nanos: l.wait_nanos,
                    lock_deadlocks: l.deadlocks,
                    lock_upgrades: l.upgrades,
                    wal_appends: w.appends,
                    wal_barrier_flushes: w.barrier_flushes,
                    wal_mirror_nanos: w.mirror_nanos,
                }
            })
            .collect();

        EngineMetrics {
            instances_running: running,
            instances_finished: finished,
            instances_cancelled: cancelled,
            items_offered: offered,
            items_claimed: claimed,
            items_closed: closed,
            journal_events: self.journal.len() as u64,
            activities,
            counters: snap.counters,
            gauges: snap.gauges,
            histograms: snap
                .histograms
                .into_iter()
                .map(|(k, s)| (k, LatencySummary::from(s)))
                .collect(),
            federation,
        }
    }
}
