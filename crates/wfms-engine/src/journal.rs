//! The persistent execution journal.
//!
//! Same shape as the substrate's WAL: an in-memory event list,
//! optionally mirrored to a file of JSON lines. *When* those lines
//! reach the file is governed by a
//! [`DurabilityPolicy`]: the default
//! `PerEvent` flushes the writer after every append (navigation events
//! are rare compared to database updates, so per-event flushing is
//! affordable and makes the recovery point exact **for process
//! crashes** — bytes handed to the OS survive the process dying, but
//! only `PerEventSync` pushes them through the page cache to stable
//! storage, and `Batched{n}` may leave up to `n-1` complete events
//! unflushed). See `docs/recovery.md` for how the crash-point sweep
//! exercises each policy's loss window.
//!
//! Reopening a mirrored journal tolerates a **torn tail**: a crash
//! mid-append leaves a partial final line, which is truncated away
//! with a diagnostic (mid-file corruption is still rejected). Mirror
//! I/O errors never panic the engine: the first error is remembered
//! ([`Journal::mirror_error`]), the mirror is disabled, and the
//! in-memory journal keeps working so the engine can park the
//! affected instances instead of dying mid-navigation.

use crate::event::Event;
use crate::metrics::JournalProbes;
use parking_lot::Mutex;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use txn_substrate::durability::{
    atomic_rewrite, read_json_lines, DurabilityPolicy, DurableWriter, MirrorError, TailReport,
};

/// The file mirror of a [`Journal`]: the policy-driven writer plus
/// the path (needed for atomic compaction rewrites) and a reused
/// serialization buffer for group commits.
#[derive(Debug)]
struct JournalMirror {
    writer: DurableWriter,
    path: PathBuf,
    /// Batch serialization buffer, reused across [`Journal::append_batch`]
    /// calls so a group commit costs one buffer fill and one write, not
    /// one `String` per event.
    buf: String,
}

/// An append-only journal of navigation events.
///
/// Lock order: `events` is always acquired **before** `mirror`, and
/// held across the mirror write, so the file's event order is exactly
/// the in-memory order and a concurrent [`Journal::compact`] can
/// never rewrite the file while an append sits between "in memory"
/// and "in file".
#[derive(Debug, Default)]
pub struct Journal {
    events: Mutex<Vec<Event>>,
    mirror: Mutex<Option<JournalMirror>>,
    /// Fast-path flag mirroring `mirror.is_some()`: purely in-memory
    /// journals (the steady-state engine default and every parallel
    /// worker shard) skip event serialization entirely — events are
    /// only rendered to JSON when a file mirror needs the bytes.
    mirrored: AtomicBool,
    mirror_error: Mutex<Option<MirrorError>>,
    /// Observability instruments, attached by the engine when its
    /// observer is enabled. `OnceLock::get` on the (common) empty cell
    /// is a single atomic load, so unobserved journals pay nothing.
    probes: OnceLock<JournalProbes>,
}

impl Journal {
    /// An in-memory journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// A journal mirrored to `path` under the default
    /// [`DurabilityPolicy::PerEvent`]; existing events are loaded
    /// first (this is how [`crate::recovery`] reopens a crashed
    /// engine's journal).
    pub fn with_file(path: &Path) -> std::io::Result<Self> {
        Self::with_file_policy(path, DurabilityPolicy::default())
    }

    /// A journal mirrored to `path` under an explicit durability
    /// policy.
    pub fn with_file_policy(path: &Path, policy: DurabilityPolicy) -> std::io::Result<Self> {
        Self::with_file_report(path, policy).map(|(j, _)| j)
    }

    /// Like [`Journal::with_file_policy`] but also returns the
    /// [`TailReport`] of the reopen, so callers (and the crash sweep)
    /// can observe whether a torn tail was truncated.
    pub fn with_file_report(
        path: &Path,
        policy: DurabilityPolicy,
    ) -> std::io::Result<(Self, TailReport)> {
        let journal = Self::new();
        let mut report = TailReport::default();
        if path.exists() {
            let (events, rep) = read_json_lines::<Event>(path)?;
            if let Some(tail) = &rep.torn_tail {
                eprintln!(
                    "journal: torn tail in {} at byte {}: truncated partial event {:?}",
                    path.display(),
                    tail.offset,
                    tail.discarded
                );
            }
            report = rep;
            *journal.events.lock() = events;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        *journal.mirror.lock() = Some(JournalMirror {
            writer: DurableWriter::new(file, policy),
            path: path.to_path_buf(),
            buf: String::new(),
        });
        journal.mirrored.store(true, Ordering::Release);
        Ok((journal, report))
    }

    /// Test-only: mirrors the journal to an already-open `file` (e.g.
    /// one opened read-only, to exercise the mirror-failure path).
    #[doc(hidden)]
    pub fn with_injected_file(
        file: std::fs::File,
        path: PathBuf,
        policy: DurabilityPolicy,
    ) -> Self {
        let journal = Self::new();
        *journal.mirror.lock() = Some(JournalMirror {
            writer: DurableWriter::new(file, policy),
            path,
            buf: String::new(),
        });
        journal.mirrored.store(true, Ordering::Release);
        journal
    }

    /// The first mirror I/O error hit, if any. Once set, the file
    /// mirror is disabled and the journal serves from memory only; the
    /// engine surfaces this as
    /// [`EngineError::Journal`](crate::EngineError::Journal).
    pub fn mirror_error(&self) -> Option<MirrorError> {
        self.mirror_error.lock().clone()
    }

    /// Records the first mirror failure and disables the mirror.
    fn fail_mirror(&self, guard: &mut Option<JournalMirror>, context: &str, e: &std::io::Error) {
        let err = MirrorError::new(context, e);
        eprintln!("journal: {err}; disabling file mirror, journal continues in memory");
        let mut slot = self.mirror_error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        *guard = None;
        self.mirrored.store(false, Ordering::Release);
    }

    /// Attaches metrics probes (append counts, append/flush latency,
    /// batch sizes). First attachment wins; called once by the engine
    /// at construction when observability is enabled.
    pub(crate) fn attach_probes(&self, probes: JournalProbes) {
        let _ = self.probes.set(probes);
    }

    /// Appends an event. Mirror I/O failures do not panic; they are
    /// reported through [`Journal::mirror_error`].
    ///
    /// Serialization happens **only when a file mirror is attached**:
    /// the in-memory journal stores the event value itself, so the
    /// unmirrored steady state (every benchmark engine and every
    /// parallel worker shard) pays a lock and a `Vec` push, nothing
    /// more.
    pub fn append(&self, event: Event) {
        if !self.mirrored.load(Ordering::Acquire) && self.probes.get().is_none() {
            self.events.lock().push(event);
            return;
        }
        // Latency is sampled 1-in-16; the append counter stays exact.
        let t0 = self
            .probes
            .get()
            .and_then(|p| p.sample_tick().then(std::time::Instant::now));
        let mut events = self.events.lock();
        if self.mirrored.load(Ordering::Acquire) {
            let line = serde_json::to_string(&event).expect("Event is always serializable");
            events.push(event);
            let mut guard = self.mirror.lock();
            if let Some(m) = guard.as_mut() {
                if let Err(e) = m.writer.append_line(&line, false) {
                    self.fail_mirror(&mut guard, "append", &e);
                }
            }
        } else {
            events.push(event);
        }
        drop(events);
        if let Some(p) = self.probes.get() {
            p.appends.inc();
            if let Some(t0) = t0 {
                p.append_ns.record(t0.elapsed().as_nanos() as u64);
            }
        }
    }

    /// Appends a batch of events with a single lock acquisition and a
    /// single group commit of the mirror — how the parallel scheduler
    /// merges per-worker journal shards back into the main journal.
    ///
    /// When a mirror is attached the whole batch is serialized into
    /// one reused buffer and written with a single `write_all` — the
    /// bytes are exactly the per-event lines in order, so the journal
    /// file format is unchanged.
    pub fn append_batch(&self, batch: Vec<Event>) {
        if batch.is_empty() {
            return;
        }
        if let Some(p) = self.probes.get() {
            p.appends.add(batch.len() as u64);
            p.batch_size.record(batch.len() as u64);
        }
        let mut events = self.events.lock();
        if self.mirrored.load(Ordering::Acquire) {
            let mut guard = self.mirror.lock();
            if let Some(m) = guard.as_mut() {
                let mut buf = std::mem::take(&mut m.buf);
                buf.clear();
                for event in &batch {
                    serde_json::append_to_string(&mut buf, event)
                        .expect("Event is always serializable");
                    buf.push('\n');
                }
                // The batch end is a flush barrier: one group commit.
                if let Err(e) = m.writer.append_chunk(&buf, batch.len(), true) {
                    self.fail_mirror(&mut guard, "append", &e);
                } else {
                    m.buf = buf;
                }
            }
        }
        events.extend(batch);
    }

    /// Forces buffered mirror lines to the file (a durability barrier
    /// under any policy; a no-op for unmirrored journals).
    pub fn flush(&self) {
        let _events = self.events.lock();
        let mut guard = self.mirror.lock();
        if let Some(m) = guard.as_mut() {
            if let Err(e) = m.writer.flush() {
                self.fail_mirror(&mut guard, "flush", &e);
            }
        }
    }

    /// Consumes the journal, returning its events (shards are
    /// in-memory only, so there is no mirror to close).
    pub fn into_events(self) -> Vec<Event> {
        self.events.into_inner()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if no events have been journalled.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// A copy of all events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Drops every event before the last
    /// [`Event::EngineCheckpoint`] (journal compaction). A no-op when
    /// no checkpoint exists. When mirrored to a file, the file is
    /// **atomically rewritten** (temp file + rename): a crash during
    /// compaction leaves either the old or the new complete file,
    /// never a half-truncated one. Returns the number of events
    /// dropped.
    pub fn compact(&self) -> usize {
        let mut events = self.events.lock();
        let Some(start) = events
            .iter()
            .rposition(|e| matches!(e, Event::EngineCheckpoint { .. }))
        else {
            return 0;
        };
        let dropped = start;
        events.drain(..start);
        let mut guard = self.mirror.lock();
        if let Some(m) = guard.as_mut() {
            let lines = events
                .iter()
                .map(|ev| serde_json::to_string(ev).expect("Event is always serializable"));
            match atomic_rewrite(&m.path, lines) {
                Ok(file) => m.writer.replace_file(file),
                Err(e) => self.fail_mirror(&mut guard, "compact", &e),
            }
        }
        dropped
    }

    /// Events of one instance, in order.
    pub fn events_for(&self, instance: crate::event::InstanceId) -> Vec<Event> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.instance() == Some(instance))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::InstanceId;
    use wfms_model::Container;

    fn started(n: u64) -> Event {
        Event::InstanceStarted {
            instance: InstanceId(n),
            process: "p".into(),
            tenant: None,
            input: Container::empty(),
            at: 0,
        }
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wftx-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_filter() {
        let j = Journal::new();
        j.append(started(1));
        j.append(started(2));
        j.append(Event::InstanceFinished {
            instance: InstanceId(1),
            output: Container::empty(),
            at: 1,
        });
        assert_eq!(j.len(), 3);
        assert_eq!(j.events_for(InstanceId(1)).len(), 2);
        assert_eq!(j.events_for(InstanceId(2)).len(), 1);
    }

    #[test]
    fn file_mirror_reloads() {
        let dir = tmp_dir("reload");
        let path = dir.join("engine.journal");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::with_file(&path).unwrap();
            j.append(started(7));
        }
        let j2 = Journal::with_file(&path).unwrap();
        assert_eq!(j2.len(), 1);
        assert_eq!(j2.events()[0].instance(), Some(InstanceId(7)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_journal() {
        let j = Journal::new();
        assert!(j.is_empty());
        assert_eq!(j.events(), vec![]);
    }

    #[test]
    fn torn_tail_reopen_recovers() {
        let dir = tmp_dir("torn");
        let path = dir.join("engine.journal");
        {
            let j = Journal::with_file(&path).unwrap();
            j.append(started(1));
            j.append(started(2));
        }
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"InstanceStar").unwrap();
        }
        let (j2, report) = Journal::with_file_report(&path, DurabilityPolicy::PerEvent).unwrap();
        assert_eq!(j2.len(), 2, "complete events survive the torn tail");
        assert!(report.torn_tail.is_some());
        // Appends after truncation land on a clean record boundary.
        j2.append(started(3));
        drop(j2);
        let j3 = Journal::with_file(&path).unwrap();
        assert_eq!(j3.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mirror_failure_is_sticky_not_fatal() {
        let dir = tmp_dir("sticky");
        let path = dir.join("engine.journal");
        std::fs::write(&path, "").unwrap();
        let ro = OpenOptions::new().read(true).open(&path).unwrap();
        let j = Journal::with_injected_file(ro, path.clone(), DurabilityPolicy::PerEvent);
        j.append(started(1));
        let err = j.mirror_error().expect("first failure recorded");
        j.append(started(2));
        assert_eq!(j.mirror_error(), Some(err), "first error wins");
        assert_eq!(j.len(), 2, "in-memory journal keeps working");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_policy_append_batch_is_one_group_commit() {
        let dir = tmp_dir("batch");
        let path = dir.join("engine.journal");
        let j = Journal::with_file_policy(&path, DurabilityPolicy::Batched { n: 1000 }).unwrap();
        j.append(started(1));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "", "buffered");
        j.append_batch(vec![started(2), started(3)]);
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk.lines().count(), 3, "batch end flushes the group");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
