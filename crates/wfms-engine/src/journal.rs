//! The persistent execution journal.
//!
//! Same shape as the substrate's WAL: an in-memory event list,
//! optionally mirrored to a file of JSON lines flushed on every
//! append (navigation events are rare compared to database updates,
//! so per-event flushing is affordable and makes the recovery point
//! exact).

use crate::event::Event;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// An append-only journal of navigation events.
#[derive(Debug, Default)]
pub struct Journal {
    events: Mutex<Vec<Event>>,
    file: Option<Mutex<BufWriter<File>>>,
}

impl Journal {
    /// An in-memory journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// A journal mirrored to `path`; existing events are loaded first
    /// (this is how [`crate::recovery`] reopens a crashed engine's
    /// journal).
    pub fn with_file(path: &Path) -> std::io::Result<Self> {
        let mut journal = Self::new();
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            let mut events = Vec::new();
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let ev: Event = serde_json::from_str(&line)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                events.push(ev);
            }
            journal.events = Mutex::new(events);
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        journal.file = Some(Mutex::new(BufWriter::new(file)));
        Ok(journal)
    }

    /// Appends an event (and flushes the mirror if one is attached).
    pub fn append(&self, event: Event) {
        if let Some(file) = &self.file {
            let mut w = file.lock();
            let line = serde_json::to_string(&event).expect("Event is always serializable");
            writeln!(w, "{line}").expect("journal mirror write failed");
            w.flush().expect("journal mirror flush failed");
        }
        self.events.lock().push(event);
    }

    /// Appends a batch of events with a single lock acquisition and a
    /// single flush of the mirror — how the parallel scheduler merges
    /// per-worker journal shards back into the main journal.
    pub fn append_batch(&self, batch: Vec<Event>) {
        if batch.is_empty() {
            return;
        }
        if let Some(file) = &self.file {
            let mut w = file.lock();
            for event in &batch {
                let line = serde_json::to_string(event).expect("Event is always serializable");
                writeln!(w, "{line}").expect("journal mirror write failed");
            }
            w.flush().expect("journal mirror flush failed");
        }
        self.events.lock().extend(batch);
    }

    /// Consumes the journal, returning its events (shards are
    /// in-memory only, so there is no mirror to close).
    pub fn into_events(self) -> Vec<Event> {
        self.events.into_inner()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if no events have been journalled.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// A copy of all events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Drops every event before the last
    /// [`Event::EngineCheckpoint`] (journal compaction). A no-op when
    /// no checkpoint exists. When mirrored to a file the file is
    /// rewritten. Returns the number of events dropped.
    pub fn compact(&self) -> usize {
        let mut events = self.events.lock();
        let Some(start) = events
            .iter()
            .rposition(|e| matches!(e, Event::EngineCheckpoint { .. }))
        else {
            return 0;
        };
        let dropped = start;
        events.drain(..start);
        if let Some(file) = &self.file {
            let mut w = file.lock();
            use std::io::Seek;
            w.flush().expect("journal mirror flush failed");
            let inner = w.get_mut();
            inner.set_len(0).expect("journal mirror truncate failed");
            inner
                .seek(std::io::SeekFrom::Start(0))
                .expect("journal mirror seek failed");
            for ev in events.iter() {
                let line =
                    serde_json::to_string(ev).expect("Event is always serializable");
                writeln!(w, "{line}").expect("journal mirror write failed");
            }
            w.flush().expect("journal mirror flush failed");
        }
        dropped
    }

    /// Events of one instance, in order.
    pub fn events_for(&self, instance: crate::event::InstanceId) -> Vec<Event> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.instance() == Some(instance))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::InstanceId;
    use wfms_model::Container;

    fn started(n: u64) -> Event {
        Event::InstanceStarted {
            instance: InstanceId(n),
            process: "p".into(),
            input: Container::empty(),
            at: 0,
        }
    }

    #[test]
    fn append_and_filter() {
        let j = Journal::new();
        j.append(started(1));
        j.append(started(2));
        j.append(Event::InstanceFinished {
            instance: InstanceId(1),
            output: Container::empty(),
            at: 1,
        });
        assert_eq!(j.len(), 3);
        assert_eq!(j.events_for(InstanceId(1)).len(), 2);
        assert_eq!(j.events_for(InstanceId(2)).len(), 1);
    }

    #[test]
    fn file_mirror_reloads() {
        let dir = std::env::temp_dir().join(format!(
            "wftx-journal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.journal");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::with_file(&path).unwrap();
            j.append(started(7));
        }
        let j2 = Journal::with_file(&path).unwrap();
        assert_eq!(j2.len(), 1);
        assert_eq!(j2.events()[0].instance(), Some(InstanceId(7)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_journal() {
        let j = Journal::new();
        assert!(j.is_empty());
        assert_eq!(j.events(), vec![]);
    }
}
