//! The engine — the public API tying templates, instances, programs,
//! the organization, worklists, the journal and the clock together.
//!
//! State is split into independently locked fields (templates,
//! instances, organization, worklists; the journal synchronises
//! internally and the id allocators are atomics) instead of one big
//! mutex. Navigation of one instance only ever holds the instances
//! lock plus, transiently, the org/worklist locks — which is what lets
//! [`Engine::run_all_parallel`] drive disjoint instances from several
//! worker threads at once.

use crate::compiled::CompiledProcess;
use crate::event::{Event, InstanceId, WorkItemId};
use crate::journal::Journal;
use crate::metrics::{EngineObs, JournalProbes, ScopeProbes};
use crate::navigator::{self, NavServices};
use crate::org::OrgModel;
use crate::registry::{TemplateRegistry, TemplateVersion};
use crate::state::{split_path, ActState, Instance, InstanceStatus};
use crate::worklist::{WorkItem, WorkItemState, WorklistError, WorklistStore};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use txn_substrate::{DurabilityPolicy, MirrorError, MultiDatabase, ProgramRegistry, VirtualClock};
use wfms_model::{validate, Container, ProcessDefinition, ValidationError};
use wfms_observe::Observer;

/// Errors surfaced by the engine API.
#[derive(Debug)]
pub enum EngineError {
    /// `register` rejected a definition.
    Validation(Vec<ValidationError>),
    /// No template with this name.
    UnknownProcess(String),
    /// No instance with this id.
    UnknownInstance(InstanceId),
    /// A worklist operation failed.
    Worklist(WorklistError),
    /// The addressed activity does not exist or is in the wrong state.
    BadActivityState {
        /// Activity path.
        path: String,
        /// What the operation needed.
        expected: &'static str,
    },
    /// `run_to_quiescence` exceeded the configured step limit — almost
    /// always a livelock from an exit condition that can never become
    /// true.
    StepLimit(usize),
    /// The journal's file mirror failed (disk full, permissions, …).
    /// The in-memory journal and all instance state are intact — the
    /// engine *parks* rather than panicking — but nothing further is
    /// durable, so the caller must decide whether to carry on
    /// memory-only or stop and repair.
    Journal(MirrorError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Validation(errs) => {
                writeln!(f, "definition rejected with {} error(s):", errs.len())?;
                for e in errs {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            EngineError::UnknownProcess(p) => write!(f, "no process template named {p:?}"),
            EngineError::UnknownInstance(i) => write!(f, "no instance {i}"),
            EngineError::Worklist(e) => write!(f, "worklist: {e}"),
            EngineError::BadActivityState { path, expected } => {
                write!(f, "activity {path:?} is not {expected}")
            }
            EngineError::StepLimit(n) => {
                write!(f, "step limit of {n} reached; livelocked exit condition?")
            }
            EngineError::Journal(e) => {
                write!(f, "journal mirror failed (instances parked): {e}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<WorklistError> for EngineError {
    fn from(e: WorklistError) -> Self {
        EngineError::Worklist(e)
    }
}

impl From<MirrorError> for EngineError {
    fn from(e: MirrorError) -> Self {
        EngineError::Journal(e)
    }
}

/// Construction-time options.
pub struct EngineConfig {
    /// Organization database.
    pub org: OrgModel,
    /// Mirror the journal to this file (enables recovery across real
    /// process restarts).
    pub journal_path: Option<PathBuf>,
    /// When the journal mirror flushes/syncs (ignored without
    /// `journal_path`). See [`DurabilityPolicy`].
    pub durability: DurabilityPolicy,
    /// Upper bound on navigation steps per `run_to_quiescence` call.
    pub step_limit: usize,
    /// Observability: pass [`Observer::enabled`] (or
    /// [`Observer::with_sink`]) to record per-activity latency
    /// histograms, navigator counters and journal flush timing. `None`
    /// (the default) installs a disabled observer — every hot-path
    /// hook reduces to one branch and records nothing.
    pub observer: Option<Arc<Observer>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            org: OrgModel::new(),
            journal_path: None,
            durability: DurabilityPolicy::default(),
            step_limit: 1_000_000,
            observer: None,
        }
    }
}

/// What [`Engine::migrate_to_default`] did to the instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationOutcome {
    /// The instance now runs under the default version; a `Migrated`
    /// event was journalled before the state transfer.
    Migrated {
        /// Version the instance was pinned to (hex spec hash).
        from: String,
        /// The new default it migrated to.
        to: String,
    },
    /// The instance was already pinned to the default version.
    AlreadyCurrent,
    /// The instance stays on its pinned version — it is not at a
    /// migratable point (an activity or nested block is mid-flight),
    /// its begun work has no counterpart in the new version, or it is
    /// no longer running. Drain-old semantics apply: it finishes under
    /// the version it started with.
    Skipped {
        /// Why the instance was left on its pinned version.
        reason: String,
    },
}

/// The workflow engine.
pub struct Engine {
    pub(crate) templates: Mutex<TemplateRegistry>,
    pub(crate) instances: Mutex<BTreeMap<InstanceId, Instance>>,
    pub(crate) org: Mutex<OrgModel>,
    pub(crate) worklists: Mutex<WorklistStore>,
    pub(crate) journal: Journal,
    pub(crate) next_instance: AtomicU64,
    pub(crate) next_item: AtomicU64,
    pub(crate) step_limit: usize,
    pub(crate) programs: Arc<ProgramRegistry>,
    pub(crate) multidb: Arc<MultiDatabase>,
    pub(crate) clock: VirtualClock,
    pub(crate) obs: EngineObs,
    /// Per-template probe trees, built lazily on first start and shared
    /// by every instance of the template (keyed by template name).
    pub(crate) probes: Mutex<HashMap<String, Arc<ScopeProbes>>>,
}

impl Engine {
    /// Builds an engine with default configuration.
    pub fn new(multidb: Arc<MultiDatabase>, programs: Arc<ProgramRegistry>) -> Self {
        Self::with_config(multidb, programs, EngineConfig::default())
    }

    /// Builds an engine with explicit configuration. The engine shares
    /// the multidatabase's virtual clock so database events and
    /// navigation events are on one timeline.
    ///
    /// # Panics
    /// Panics if the journal file cannot be opened.
    pub fn with_config(
        multidb: Arc<MultiDatabase>,
        programs: Arc<ProgramRegistry>,
        config: EngineConfig,
    ) -> Self {
        let journal = match &config.journal_path {
            Some(p) => {
                Journal::with_file_policy(p, config.durability).expect("cannot open journal file")
            }
            None => Journal::new(),
        };
        let observer = config
            .observer
            .unwrap_or_else(|| Arc::new(Observer::disabled()));
        if observer.is_enabled() {
            journal.attach_probes(JournalProbes::new(observer.registry()));
        }
        let obs = EngineObs::new(observer);
        let clock = multidb.clock().clone();
        Self {
            templates: Mutex::new(TemplateRegistry::new()),
            instances: Mutex::new(BTreeMap::new()),
            org: Mutex::new(config.org),
            worklists: Mutex::new(WorklistStore::new()),
            journal,
            next_instance: AtomicU64::new(1),
            next_item: AtomicU64::new(1),
            step_limit: config.step_limit,
            programs,
            multidb,
            clock,
            obs,
            probes: Mutex::new(HashMap::new()),
        }
    }

    /// Surfaces a journal-mirror failure as [`EngineError::Journal`].
    /// Checked at every navigation entry point: once the mirror is
    /// broken nothing further would be durable, so affected instances
    /// park (their in-memory state is untouched and still queryable)
    /// instead of the engine panicking mid-navigation.
    fn check_journal(&self) -> Result<(), EngineError> {
        match self.journal.mirror_error() {
            Some(e) => Err(EngineError::Journal(e)),
            None => Ok(()),
        }
    }

    /// The engine's virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The shared multidatabase.
    pub fn multidb(&self) -> &Arc<MultiDatabase> {
        &self.multidb
    }

    /// The program registry.
    pub fn programs(&self) -> &Arc<ProgramRegistry> {
        &self.programs
    }

    /// Navigation services bound to the main journal.
    fn services(&self) -> NavServices<'_> {
        NavServices {
            journal: &self.journal,
            clock: &self.clock,
            org: &self.org,
            worklists: &self.worklists,
            next_item: &self.next_item,
            programs: &self.programs,
            multidb: &self.multidb,
            obs: &self.obs,
        }
    }

    /// Navigation services writing to `journal` instead of the main
    /// journal — used by the parallel scheduler's per-worker shards.
    fn services_with<'a>(&'a self, journal: &'a Journal) -> NavServices<'a> {
        NavServices {
            journal,
            clock: &self.clock,
            org: &self.org,
            worklists: &self.worklists,
            next_item: &self.next_item,
            programs: &self.programs,
            multidb: &self.multidb,
            obs: &self.obs,
        }
    }

    /// The probe tree for `tpl`, built on first use and cached. Keyed
    /// by name *and* version: two versions of one process can have
    /// different scope shapes.
    fn probes_for(&self, tpl: &Arc<CompiledProcess>) -> Arc<ScopeProbes> {
        let mut cache = self.probes.lock();
        Arc::clone(
            cache
                .entry(format!("{}@{}", tpl.name(), tpl.version()))
                .or_insert_with(|| ScopeProbes::build(&tpl.root, self.obs.observer.registry())),
        )
    }

    /// Validates a definition and registers its **compiled template**
    /// (Figure 5's import stage: specification → validated model →
    /// executable template). Compilation interns activity names,
    /// builds the connector adjacency, constant-folds every transition
    /// and exit condition and flattens the data-connector maps — all
    /// navigation then runs on the indexed form. The compiled template
    /// is then [optimized](crate::optimize): condition values are
    /// propagated through the graph, decidable plans become constants
    /// and statically-dead activities are pruned from the data and
    /// deadline indexes (the event stream is unchanged).
    ///
    /// Templates are versioned by the content hash of the definition
    /// ([`crate::compiled::spec_hash_of`]); the returned
    /// [`TemplateVersion`] names the version this definition compiled
    /// to. Registering a *different* definition under an existing name
    /// journals a `TemplateDeployed` event and makes the new version
    /// the default for future [`Engine::start`]s; running instances
    /// stay pinned to the version they started under (their own
    /// `Arc`). Re-registering the current default is an idempotent
    /// no-op.
    pub fn register(&self, def: ProcessDefinition) -> Result<TemplateVersion, EngineError> {
        let errors = validate(&def);
        if !errors.is_empty() {
            return Err(EngineError::Validation(errors));
        }
        let tpl = CompiledProcess::compile_arc(Arc::new(def));
        let (tpl, _stats) = crate::optimize::optimize(&tpl);
        Ok(self.register_compiled(Arc::new(tpl)))
    }

    /// Registers an already compiled template (e.g. one produced by a
    /// front-end pipeline that validated the definition itself). Same
    /// versioning semantics as [`Engine::register`].
    pub fn register_compiled(&self, tpl: Arc<CompiledProcess>) -> TemplateVersion {
        // The deploy event is journalled while the registry lock is
        // held: anything that resolves the default (`start`) also
        // journals under this lock, so journal order always matches
        // which default each instance actually got.
        let mut registry = self.templates.lock();
        let (version, deployed) = registry.insert(tpl, true);
        if deployed {
            self.journal.append(Event::TemplateDeployed {
                process: version.process.clone(),
                version: version.version.clone(),
                at: self.clock.now(),
            });
        }
        version
    }

    /// The current default template of `name`.
    pub fn template(&self, name: &str) -> Option<Arc<CompiledProcess>> {
        self.templates.lock().default_tpl(name)
    }

    /// Registered template names, sorted.
    pub fn template_names(&self) -> Vec<String> {
        self.templates.lock().names()
    }

    /// Every version registered under `name` (hex spec hashes, in
    /// registration order).
    pub fn template_versions(&self, name: &str) -> Vec<String> {
        self.templates.lock().versions(name)
    }

    /// The default version of `name` — what a new instance would be
    /// pinned to.
    pub fn default_version(&self, name: &str) -> Option<String> {
        self.templates.lock().default_tpl(name).map(|t| t.version())
    }

    /// The template version instance `id` is pinned to.
    pub fn instance_version(&self, id: InstanceId) -> Result<String, EngineError> {
        self.instances
            .lock()
            .get(&id)
            .map(|i| i.tpl.version())
            .ok_or(EngineError::UnknownInstance(id))
    }

    /// Starts an instance of `process` with `input` seeding the
    /// process input container, and navigates its start activities to
    /// ready. Does not run anything yet — call
    /// [`Engine::run_to_quiescence`]. The instance is pinned to the
    /// current default version of `process` for its whole life (unless
    /// explicitly migrated).
    pub fn start(&self, process: &str, input: Container) -> Result<InstanceId, EngineError> {
        self.start_for_tenant(process, input, None)
    }

    /// [`Engine::start`] with an owning tenant: the tenant name is
    /// journalled on the `InstanceStarted` event and restored by
    /// recovery, so instance→tenant attribution survives `kill -9`.
    pub fn start_for_tenant(
        &self,
        process: &str,
        input: Container,
        tenant: Option<String>,
    ) -> Result<InstanceId, EngineError> {
        // Hold the registry lock until InstanceStarted is journalled:
        // a deploy journalled before this event is then guaranteed to
        // have been the default this instance resolved, which is what
        // lets replay re-resolve the pin from journal order alone.
        let registry = self.templates.lock();
        let tpl = registry
            .default_tpl(process)
            .ok_or_else(|| EngineError::UnknownProcess(process.to_owned()))?;
        let mut instances = self.instances.lock();
        let id = InstanceId(self.next_instance.fetch_add(1, Ordering::Relaxed));
        let mut inst = Instance::new(id, tpl);
        inst.tenant = tenant;
        if self.obs.enabled() {
            inst.probes = Some(self.probes_for(&inst.tpl));
        }
        for (k, v) in input.iter() {
            inst.root_input_mut().set(k, v.clone());
        }
        navigator::start_instance(&mut inst, &self.services());
        instances.insert(id, inst);
        drop(registry);
        Ok(id)
    }

    /// The tenant instance `id` was started under (`None` for
    /// untenanted instances).
    pub fn instance_tenant(&self, id: InstanceId) -> Result<Option<String>, EngineError> {
        self.instances
            .lock()
            .get(&id)
            .map(|i| i.tenant.clone())
            .ok_or(EngineError::UnknownInstance(id))
    }

    /// Migrates a running instance to the current default version of
    /// its process — the `migrate-at-scope-boundary` policy. The
    /// transfer is only attempted at a quiescent scope boundary (no
    /// activity and no nested block mid-flight) and only when every
    /// begun activity has a same-named counterpart in the target
    /// version; otherwise the instance is left pinned
    /// ([`MigrationOutcome::Skipped`] — drain-old semantics). On
    /// success a `Migrated{from,to}` event is journalled **before**
    /// the in-memory state transfer (write-ahead, like every other
    /// navigation event), so a crash at any point either replays the
    /// instance fully un-migrated or re-applies the same deterministic
    /// transfer.
    pub fn migrate_to_default(&self, id: InstanceId) -> Result<MigrationOutcome, EngineError> {
        self.check_journal()?;
        // Lock order elsewhere is registry → instances, so resolve the
        // target before locking the instance map (no nesting at all).
        let name = self
            .instances
            .lock()
            .get(&id)
            .map(|i| i.tpl.name().to_owned())
            .ok_or(EngineError::UnknownInstance(id))?;
        let target = self
            .template(&name)
            .ok_or(EngineError::UnknownProcess(name))?;
        let mut instances = self.instances.lock();
        let inst = instances
            .get_mut(&id)
            .ok_or(EngineError::UnknownInstance(id))?;
        if inst.tpl.spec_hash == target.spec_hash {
            return Ok(MigrationOutcome::AlreadyCurrent);
        }
        if inst.status != InstanceStatus::Running {
            return Ok(MigrationOutcome::Skipped {
                reason: format!("instance is {:?}", inst.status),
            });
        }
        let mut migrated = match inst.migrate_to(&target) {
            Ok(m) => m,
            Err(reason) => return Ok(MigrationOutcome::Skipped { reason }),
        };
        let from = inst.tpl.version();
        let to = target.version();
        self.journal.append(Event::Migrated {
            instance: id,
            from: from.clone(),
            to: to.clone(),
            at: self.clock.now(),
        });
        if self.obs.enabled() {
            migrated.probes = Some(self.probes_for(&target));
        }
        *inst = migrated;
        // The transferred frontier may owe navigation the new version
        // introduces (fresh edges out of terminated activities, joins
        // that are now decidable). Repair it with exactly recovery's
        // resume pass — live and post-crash migration then journal the
        // same continuation events.
        let events = self.journal.events();
        let counts = crate::recovery::fixup_instance(inst, &self.services(), &events);
        counts.record(self.obs.observer.registry(), "migration.fixups");
        self.check_journal()?;
        Ok(MigrationOutcome::Migrated { from, to })
    }

    /// Executes at most one ready automatic activity of `id`. Returns
    /// `Ok(true)` if an activity ran, `Ok(false)` at quiescence. Used
    /// by crash tests and benchmarks that need to stop an instance at
    /// an exact point.
    pub fn step(&self, id: InstanceId) -> Result<bool, EngineError> {
        self.check_journal()?;
        let mut instances = self.instances.lock();
        let inst = instances
            .get_mut(&id)
            .ok_or(EngineError::UnknownInstance(id))?;
        let Some(slot) = navigator::find_runnable(inst) else {
            return Ok(false);
        };
        navigator::execute_activity(inst, &self.services(), slot, None);
        self.check_journal()?;
        Ok(true)
    }

    /// Runs every ready automatic activity of `id` (including those
    /// that become ready as a consequence) until none is runnable.
    /// Manual activities stay on worklists. Returns the instance
    /// status at quiescence.
    pub fn run_to_quiescence(&self, id: InstanceId) -> Result<InstanceStatus, EngineError> {
        self.check_journal()?;
        let mut instances = self.instances.lock();
        let inst = instances
            .get_mut(&id)
            .ok_or(EngineError::UnknownInstance(id))?;
        match navigator::drive_to_quiescence(inst, &self.services(), self.step_limit) {
            Some(_) => {
                self.check_journal()?;
                Ok(inst.status)
            }
            None => Err(EngineError::StepLimit(self.step_limit)),
        }
    }

    /// Runs every instance to quiescence, in id order.
    pub fn run_all(&self) -> Result<(), EngineError> {
        let ids: Vec<InstanceId> = self.instances.lock().keys().copied().collect();
        for id in ids {
            self.run_to_quiescence(id)?;
        }
        Ok(())
    }

    /// Runs every instance to quiescence across `n_threads` worker
    /// threads — the multi-instance scheduler. Instances are disjoint
    /// state machines, so each worker drives its claimed instance
    /// against a **private journal shard**; at the end the shards are
    /// merged into the main journal in instance-id order, which makes
    /// the resulting journal identical to a sequential
    /// [`Engine::run_all`] whenever the programs themselves are
    /// deterministic and order-independent (programs contending on
    /// shared database keys may of course commit or abort differently
    /// under concurrency — exactly as real FlowMark runtime servers
    /// racing on a shared multidatabase would).
    ///
    /// The first error (by instance id) is returned after all workers
    /// finish; remaining instances still run.
    ///
    /// `n_threads` is clamped to the machine's available parallelism
    /// ([`std::thread::available_parallelism`]): workers beyond the
    /// core count only add scheduling overhead and journal-merge
    /// latency, they cannot add throughput.
    pub fn run_all_parallel(&self, n_threads: usize) -> Result<(), EngineError> {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(usize::MAX);
        let n = n_threads.max(1).min(cores);
        // A single worker has nothing to shard: per-instance journals,
        // the end-of-run merge (one full copy of every event) and the
        // instance-map rebuild would be pure overhead, costing ~25% of
        // throughput on a 1-core host. Drive instances in place
        // against the main journal instead — the single worker visits
        // slots in id order, so the resulting journal is byte-for-byte
        // what the sharded path would have merged.
        if n == 1 {
            let ids: Vec<InstanceId> = self.instances.lock().keys().copied().collect();
            let mut first_err = None;
            for id in ids {
                let mut instances = self.instances.lock();
                let inst = instances.get_mut(&id).expect("id listed above");
                if navigator::drive_to_quiescence(inst, &self.services(), self.step_limit).is_none()
                    && first_err.is_none()
                {
                    first_err = Some(EngineError::StepLimit(self.step_limit));
                }
            }
            return match first_err {
                Some(e) => Err(e),
                None => self.check_journal(),
            };
        }
        struct Slot {
            id: InstanceId,
            inst: Mutex<Option<Instance>>,
            shard: Journal,
            err: Mutex<Option<EngineError>>,
        }
        // Take the instances out of the engine for the duration of the
        // run: public accessors would observe an empty map, but no
        // navigation can race with the workers.
        let taken = std::mem::take(&mut *self.instances.lock());
        let slots: Vec<Slot> = taken
            .into_iter()
            .map(|(id, inst)| Slot {
                id,
                inst: Mutex::new(Some(inst)),
                shard: Journal::new(),
                err: Mutex::new(None),
            })
            .collect();
        let cursor = AtomicUsize::new(0);

        std::thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = slots.get(i) else { break };
                    let mut guard = slot.inst.lock();
                    let inst = guard.as_mut().expect("slot filled above");
                    let svc = self.services_with(&slot.shard);
                    if navigator::drive_to_quiescence(inst, &svc, self.step_limit).is_none() {
                        *slot.err.lock() = Some(EngineError::StepLimit(self.step_limit));
                    }
                });
            }
        });

        // Merge shards and reinstate the instances in id order. The
        // events are gathered first so the journal lock (and its
        // mirror flush) is taken once, not once per instance.
        let mut first_err = None;
        let mut merged = Vec::new();
        let mut instances = self.instances.lock();
        for slot in slots {
            merged.extend(slot.shard.into_events());
            let inst = slot.inst.into_inner().expect("worker returns the instance");
            instances.insert(slot.id, inst);
            if first_err.is_none() {
                first_err = slot.err.into_inner();
            }
        }
        self.journal.append_batch(merged);
        match first_err {
            Some(e) => Err(e),
            None => self.check_journal(),
        }
    }

    /// The worklist of `person` (clones of the visible items).
    pub fn worklist(&self, person: &str) -> Vec<WorkItem> {
        self.worklists
            .lock()
            .worklist(person)
            .into_iter()
            .cloned()
            .collect()
    }

    /// The instance a work item belongs to, if the item exists.
    pub fn item_instance(&self, item: WorkItemId) -> Option<InstanceId> {
        self.worklists.lock().get(item).map(|it| it.instance)
    }

    /// Claims a work item for `person`; it disappears from every other
    /// worklist.
    pub fn claim(&self, item: WorkItemId, person: &str) -> Result<(), EngineError> {
        let at = self.clock.now();
        self.worklists.lock().claim(item, person)?;
        self.journal.append(Event::WorkItemClaimed {
            item,
            person: person.to_owned(),
            at,
        });
        Ok(())
    }

    /// Releases a claimed work item back to every eligible worklist
    /// (§3.3: a user may stop work they selected; the activity
    /// becomes available for load balancing again).
    pub fn release(&self, item: WorkItemId, person: &str) -> Result<(), EngineError> {
        let at = self.clock.now();
        let mut worklists = self.worklists.lock();
        worklists.release(item, person)?;
        let (instance, path) = worklists
            .get(item)
            .map(|it| (it.instance, it.path.clone()))
            .unwrap_or((InstanceId(0), String::new()));
        drop(worklists);
        self.journal.append(Event::UserIntervention {
            instance,
            path: path.into(),
            action: format!("release {item} by {person}"),
            at,
        });
        Ok(())
    }

    /// Marks a person absent (optionally naming a substitute) or
    /// present again. Affects *future* work-item offers; items already
    /// offered stay with their original offerees (§3.3's organization
    /// is consulted at staff-resolution time).
    pub fn set_absent(&self, person: &str, absent: bool, substitute: Option<&str>) {
        self.org.lock().set_absent(person, absent, substitute);
    }

    /// All instances: `(id, process name, status)`.
    pub fn instances(&self) -> Vec<(InstanceId, String, InstanceStatus)> {
        self.instances
            .lock()
            .values()
            .map(|i| (i.id, i.tpl.name().to_owned(), i.status))
            .collect()
    }

    /// Executes a work item `person` has claimed (claiming it first if
    /// still offered), then continues automatic navigation of the
    /// instance.
    pub fn execute_item(&self, item: WorkItemId, person: &str) -> Result<(), EngineError> {
        self.check_journal()?;
        let it = {
            let mut worklists = self.worklists.lock();
            let it = worklists
                .get(item)
                .ok_or(EngineError::Worklist(WorklistError::NoSuchItem(item)))?
                .clone();
            match &it.state {
                WorkItemState::Offered => {
                    worklists.claim(item, person)?;
                    let at = self.clock.now();
                    self.journal.append(Event::WorkItemClaimed {
                        item,
                        person: person.to_owned(),
                        at,
                    });
                }
                WorkItemState::Claimed(p) if p == person => {}
                WorkItemState::Claimed(p) => {
                    return Err(EngineError::Worklist(WorklistError::AlreadyClaimed {
                        item,
                        by: p.clone(),
                    }))
                }
                WorkItemState::Closed => {
                    return Err(EngineError::Worklist(WorklistError::Closed(item)))
                }
            }
            it
        };
        let mut instances = self.instances.lock();
        let inst = instances
            .get_mut(&it.instance)
            .ok_or(EngineError::UnknownInstance(it.instance))?;
        let path = inst.resolve_names(&split_path(&it.path)).ok_or_else(|| {
            EngineError::BadActivityState {
                path: it.path.clone(),
                expected: "present",
            }
        })?;
        // The underlying activity must still be ready at the claimed
        // attempt.
        let ok = inst
            .activity_rt(&path)
            .map(|rt| rt.state == ActState::Ready)
            .unwrap_or(false);
        if !ok {
            return Err(EngineError::BadActivityState {
                path: it.path.clone(),
                expected: "ready",
            });
        }
        let slot = inst.live_slot_of(&path).expect("checked ready above");
        let svc = self.services();
        navigator::execute_activity(inst, &svc, slot, Some(person.to_owned()));
        match navigator::drive_to_quiescence(inst, &svc, self.step_limit) {
            Some(_) => Ok(()),
            None => Err(EngineError::StepLimit(self.step_limit)),
        }
    }

    /// Operator intervention (§3.3): forces a ready or running
    /// activity to finish with return code `rc` and no outputs, then
    /// continues navigation.
    pub fn force_finish(&self, id: InstanceId, path: &str, rc: i64) -> Result<(), EngineError> {
        self.check_journal()?;
        let mut instances = self.instances.lock();
        let at = self.clock.now();
        let inst = instances
            .get_mut(&id)
            .ok_or(EngineError::UnknownInstance(id))?;
        let segs = inst.resolve_names(&split_path(path));
        let ok = segs
            .as_deref()
            .and_then(|p| inst.activity_rt(p))
            .map(|rt| matches!(rt.state, ActState::Ready | ActState::Running))
            .unwrap_or(false);
        if !ok {
            return Err(EngineError::BadActivityState {
                path: path.to_owned(),
                expected: "ready or running",
            });
        }
        let segs = segs.expect("checked above");
        self.journal.append(Event::UserIntervention {
            instance: id,
            path: path.into(),
            action: format!("force-finish rc={rc}"),
            at,
        });
        let slot = inst.live_slot_of(&segs).expect("checked above");
        let svc = self.services();
        navigator::complete_execution(inst, &svc, slot, rc, BTreeMap::new());
        match navigator::drive_to_quiescence(inst, &svc, self.step_limit) {
            Some(_) => Ok(()),
            None => Err(EngineError::StepLimit(self.step_limit)),
        }
    }

    /// Cancels a running instance.
    pub fn cancel(&self, id: InstanceId) -> Result<(), EngineError> {
        let mut instances = self.instances.lock();
        let inst = instances
            .get_mut(&id)
            .ok_or(EngineError::UnknownInstance(id))?;
        navigator::cancel_instance(inst, &self.services());
        Ok(())
    }

    /// Advances the virtual clock and delivers due deadline
    /// notifications. Returns `(activity path, notified person)`
    /// pairs. Instances whose compiled template declares no deadline
    /// at all are skipped without touching their state.
    pub fn advance_clock(&self, ticks: txn_substrate::Tick) -> Vec<(String, String)> {
        self.clock.advance(ticks);
        let mut instances = self.instances.lock();
        let svc = self.services();
        let mut sent = Vec::new();
        for inst in instances.values_mut() {
            if inst.status != InstanceStatus::Running || !inst.tpl.root.any_deadlines {
                continue;
            }
            sent.extend(navigator::check_deadlines(inst, &svc));
        }
        sent
    }

    /// Current status of an instance.
    pub fn status(&self, id: InstanceId) -> Result<InstanceStatus, EngineError> {
        self.instances
            .lock()
            .get(&id)
            .map(|i| i.status)
            .ok_or(EngineError::UnknownInstance(id))
    }

    /// The process output container of an instance (final once the
    /// instance is finished).
    pub fn output(&self, id: InstanceId) -> Result<Container, EngineError> {
        self.instances
            .lock()
            .get(&id)
            .map(|i| i.root_output().clone())
            .ok_or(EngineError::UnknownInstance(id))
    }

    /// Runtime inspection: `(state, executed, attempt)` of the
    /// activity at `path`.
    pub fn activity_state(
        &self,
        id: InstanceId,
        path: &str,
    ) -> Result<(ActState, bool, u32), EngineError> {
        let instances = self.instances.lock();
        let inst = instances.get(&id).ok_or(EngineError::UnknownInstance(id))?;
        inst.resolve_names(&split_path(path))
            .and_then(|p| inst.activity_rt(&p))
            .map(|rt| (rt.state, rt.executed, rt.attempt))
            .ok_or(EngineError::BadActivityState {
                path: path.to_owned(),
                expected: "present",
            })
    }

    /// All journal events (copy).
    pub fn journal_events(&self) -> Vec<Event> {
        self.journal.events()
    }

    /// Journal events of one instance.
    pub fn events_for(&self, id: InstanceId) -> Vec<Event> {
        self.journal.events_for(id)
    }

    /// Writes an engine checkpoint — a complete snapshot of every
    /// instance, the worklists and the allocators — into the journal
    /// and compacts it, bounding recovery replay time (the engine-side
    /// mirror of [`txn_substrate::Database::checkpoint`]). Safe at any
    /// quiescent point (no navigation in flight — guaranteed here by
    /// holding the instances lock). Returns the number of journal
    /// events dropped.
    pub fn checkpoint(&self) -> usize {
        let registry = self.templates.lock();
        let instances = self.instances.lock();
        let worklists = self.worklists.lock();
        let snaps: Vec<crate::event::InstanceSnapshot> = instances
            .values()
            .map(|i| crate::event::InstanceSnapshot {
                id: i.id,
                process: i.tpl.name().to_owned(),
                tenant: i.tenant.clone(),
                status: i.status,
                version: i.tpl.version(),
                root: i.snapshot_root(),
            })
            .collect();
        let next_item = self.next_item.load(Ordering::Relaxed);
        let mut all_items: Vec<WorkItem> = worklists
            .open_items()
            .iter()
            .map(|it| (*it).clone())
            .collect();
        // Claimed items survive too: open_items() covers Offered only,
        // so collect claimed ones explicitly by id range.
        for id in 1..next_item {
            if let Some(it) = worklists.get(WorkItemId(id)) {
                if matches!(it.state, WorkItemState::Claimed(_))
                    && !all_items.iter().any(|x| x.id == it.id)
                {
                    all_items.push(it.clone());
                }
            }
        }
        all_items.sort_by_key(|it| it.id);
        self.journal.append(Event::EngineCheckpoint {
            instances: snaps,
            items: all_items,
            next_instance: self.next_instance.load(Ordering::Relaxed),
            next_item,
            at: self.clock.now(),
        });
        // Compaction drops everything before the checkpoint, including
        // any TemplateDeployed events that moved a default off its
        // initial version. Re-journal the current default of every
        // multi-version name *after* the snapshot so they survive;
        // single-version names journal nothing (their default is the
        // recovery template set's, exactly as pre-versioning).
        for (process, version) in registry.multi_version_defaults() {
            self.journal.append(Event::TemplateDeployed {
                process,
                version,
                at: self.clock.now(),
            });
        }
        self.journal.compact()
    }

    /// Forces the journal mirror to disk — a durability barrier under
    /// any [`DurabilityPolicy`]. After this returns `Ok`, every event
    /// appended so far survives a crash. Group-commit callers (a
    /// server shard batching submissions) append under `Batched{n}`
    /// and call this once per batch before acknowledging any of it.
    pub fn flush_journal(&self) -> Result<(), EngineError> {
        self.journal.flush();
        self.check_journal()
    }

    /// Drains the engine for shutdown: flushes the journal, writes a
    /// checkpoint (compacting the replay history), and flushes again
    /// so the checkpoint itself is durable. Returns the number of
    /// journal events the compaction dropped. The engine stays usable
    /// afterwards — drain is a durability barrier, not a poison pill.
    pub fn drain(&self) -> Result<usize, EngineError> {
        self.flush_journal()?;
        let dropped = self.checkpoint();
        self.flush_journal()?;
        Ok(dropped)
    }

    /// Simulates a crash: drops all volatile state, keeping only what
    /// the journal file (if any) holds. Use
    /// [`crate::recovery::recover`] to rebuild. Consumes the engine so
    /// no handle can observe the dead state.
    pub fn crash(self) {
        drop(self);
    }
}
