//! The engine — the public API tying templates, instances, programs,
//! the organization, worklists, the journal and the clock together.

use crate::event::{Event, InstanceId, WorkItemId};
use crate::journal::Journal;
use crate::navigator;
use crate::org::OrgModel;
use crate::state::{split_path, ActState, Instance, InstanceStatus};
use crate::worklist::{WorkItem, WorkItemState, WorklistError, WorklistStore};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramRegistry, VirtualClock};
use wfms_model::{validate, Container, ProcessDefinition, ValidationError};

/// Errors surfaced by the engine API.
#[derive(Debug)]
pub enum EngineError {
    /// `register` rejected a definition.
    Validation(Vec<ValidationError>),
    /// No template with this name.
    UnknownProcess(String),
    /// No instance with this id.
    UnknownInstance(InstanceId),
    /// A worklist operation failed.
    Worklist(WorklistError),
    /// The addressed activity does not exist or is in the wrong state.
    BadActivityState {
        /// Activity path.
        path: String,
        /// What the operation needed.
        expected: &'static str,
    },
    /// `run_to_quiescence` exceeded the configured step limit — almost
    /// always a livelock from an exit condition that can never become
    /// true.
    StepLimit(usize),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Validation(errs) => {
                writeln!(f, "definition rejected with {} error(s):", errs.len())?;
                for e in errs {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            EngineError::UnknownProcess(p) => write!(f, "no process template named {p:?}"),
            EngineError::UnknownInstance(i) => write!(f, "no instance {i}"),
            EngineError::Worklist(e) => write!(f, "worklist: {e}"),
            EngineError::BadActivityState { path, expected } => {
                write!(f, "activity {path:?} is not {expected}")
            }
            EngineError::StepLimit(n) => {
                write!(f, "step limit of {n} reached; livelocked exit condition?")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<WorklistError> for EngineError {
    fn from(e: WorklistError) -> Self {
        EngineError::Worklist(e)
    }
}

/// Construction-time options.
pub struct EngineConfig {
    /// Organization database.
    pub org: OrgModel,
    /// Mirror the journal to this file (enables recovery across real
    /// process restarts).
    pub journal_path: Option<PathBuf>,
    /// Upper bound on navigation steps per `run_to_quiescence` call.
    pub step_limit: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            org: OrgModel::new(),
            journal_path: None,
            step_limit: 1_000_000,
        }
    }
}

pub(crate) struct Inner {
    pub(crate) templates: HashMap<String, Arc<ProcessDefinition>>,
    pub(crate) instances: BTreeMap<InstanceId, Instance>,
    pub(crate) org: OrgModel,
    pub(crate) worklists: WorklistStore,
    pub(crate) journal: Journal,
    pub(crate) next_instance: u64,
    pub(crate) next_item: u64,
    pub(crate) step_limit: usize,
}

/// The workflow engine.
pub struct Engine {
    pub(crate) inner: Mutex<Inner>,
    pub(crate) programs: Arc<ProgramRegistry>,
    pub(crate) multidb: Arc<MultiDatabase>,
    pub(crate) clock: VirtualClock,
}

impl Engine {
    /// Builds an engine with default configuration.
    pub fn new(multidb: Arc<MultiDatabase>, programs: Arc<ProgramRegistry>) -> Self {
        Self::with_config(multidb, programs, EngineConfig::default())
    }

    /// Builds an engine with explicit configuration. The engine shares
    /// the multidatabase's virtual clock so database events and
    /// navigation events are on one timeline.
    ///
    /// # Panics
    /// Panics if the journal file cannot be opened.
    pub fn with_config(
        multidb: Arc<MultiDatabase>,
        programs: Arc<ProgramRegistry>,
        config: EngineConfig,
    ) -> Self {
        let journal = match &config.journal_path {
            Some(p) => Journal::with_file(p).expect("cannot open journal file"),
            None => Journal::new(),
        };
        let clock = multidb.clock().clone();
        Self {
            inner: Mutex::new(Inner {
                templates: HashMap::new(),
                instances: BTreeMap::new(),
                org: config.org,
                worklists: WorklistStore::new(),
                journal,
                next_instance: 1,
                next_item: 1,
                step_limit: config.step_limit,
            }),
            programs,
            multidb,
            clock,
        }
    }

    /// The engine's virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The shared multidatabase.
    pub fn multidb(&self) -> &Arc<MultiDatabase> {
        &self.multidb
    }

    /// The program registry.
    pub fn programs(&self) -> &Arc<ProgramRegistry> {
        &self.programs
    }

    /// Validates and registers a process template. Registering a new
    /// version under the same name replaces the template for *future*
    /// instances; running instances keep their own `Arc`.
    pub fn register(&self, def: ProcessDefinition) -> Result<(), EngineError> {
        let errors = validate(&def);
        if !errors.is_empty() {
            return Err(EngineError::Validation(errors));
        }
        let mut inner = self.inner.lock();
        inner.templates.insert(def.name.clone(), Arc::new(def));
        Ok(())
    }

    /// Registered template names, sorted.
    pub fn template_names(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let mut names: Vec<String> = inner.templates.keys().cloned().collect();
        names.sort();
        names
    }

    /// Starts an instance of `process` with `input` seeding the
    /// process input container, and navigates its start activities to
    /// ready. Does not run anything yet — call
    /// [`Engine::run_to_quiescence`].
    pub fn start(&self, process: &str, input: Container) -> Result<InstanceId, EngineError> {
        let mut inner = self.inner.lock();
        let def = inner
            .templates
            .get(process)
            .ok_or_else(|| EngineError::UnknownProcess(process.to_owned()))?
            .clone();
        let id = InstanceId(inner.next_instance);
        inner.next_instance += 1;
        let mut inst = Instance::new(id, def);
        for (k, v) in input.iter() {
            inst.root.input.set(k, v.clone());
        }
        {
            let Inner {
                journal,
                org,
                worklists,
                next_item,
                ..
            } = &mut *inner;
            let mut svc = navigator::NavServices {
                journal,
                clock: &self.clock,
                org,
                worklists,
                next_item,
                programs: &self.programs,
                multidb: &self.multidb,
            };
            navigator::start_instance(&mut inst, &mut svc);
        }
        inner.instances.insert(id, inst);
        Ok(id)
    }

    /// Executes at most one ready automatic activity of `id`. Returns
    /// `Ok(true)` if an activity ran, `Ok(false)` at quiescence. Used
    /// by crash tests and benchmarks that need to stop an instance at
    /// an exact point.
    pub fn step(&self, id: InstanceId) -> Result<bool, EngineError> {
        let mut inner = self.inner.lock();
        let inst = inner
            .instances
            .get_mut(&id)
            .ok_or(EngineError::UnknownInstance(id))?;
        let Some(path) = navigator::find_runnable(inst) else {
            return Ok(false);
        };
        let Inner {
            journal,
            org,
            worklists,
            next_item,
            instances,
            ..
        } = &mut *inner;
        let inst = instances.get_mut(&id).expect("checked above");
        let mut svc = navigator::NavServices {
            journal,
            clock: &self.clock,
            org,
            worklists,
            next_item,
            programs: &self.programs,
            multidb: &self.multidb,
        };
        navigator::execute_activity(inst, &mut svc, &path, None);
        Ok(true)
    }

    /// Runs every ready automatic activity of `id` (including those
    /// that become ready as a consequence) until none is runnable.
    /// Manual activities stay on worklists. Returns the instance
    /// status at quiescence.
    pub fn run_to_quiescence(&self, id: InstanceId) -> Result<InstanceStatus, EngineError> {
        let mut inner = self.inner.lock();
        let limit = inner.step_limit;
        let mut steps = 0usize;
        loop {
            let inst = inner
                .instances
                .get_mut(&id)
                .ok_or(EngineError::UnknownInstance(id))?;
            let Some(path) = navigator::find_runnable(inst) else {
                return Ok(inst.status);
            };
            steps += 1;
            if steps > limit {
                return Err(EngineError::StepLimit(limit));
            }
            let Inner {
                journal,
                org,
                worklists,
                next_item,
                instances,
                ..
            } = &mut *inner;
            let inst = instances.get_mut(&id).expect("checked above");
            let mut svc = navigator::NavServices {
                journal,
                clock: &self.clock,
                org,
                worklists,
                next_item,
                programs: &self.programs,
                multidb: &self.multidb,
            };
            navigator::execute_activity(inst, &mut svc, &path, None);
        }
    }

    /// Runs every instance to quiescence, in id order.
    pub fn run_all(&self) -> Result<(), EngineError> {
        let ids: Vec<InstanceId> = self.inner.lock().instances.keys().copied().collect();
        for id in ids {
            self.run_to_quiescence(id)?;
        }
        Ok(())
    }

    /// The worklist of `person` (clones of the visible items).
    pub fn worklist(&self, person: &str) -> Vec<WorkItem> {
        self.inner
            .lock()
            .worklists
            .worklist(person)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Claims a work item for `person`; it disappears from every other
    /// worklist.
    pub fn claim(&self, item: WorkItemId, person: &str) -> Result<(), EngineError> {
        let mut inner = self.inner.lock();
        let at = self.clock.now();
        inner.worklists.claim(item, person)?;
        inner.journal.append(Event::WorkItemClaimed {
            item,
            person: person.to_owned(),
            at,
        });
        Ok(())
    }

    /// Releases a claimed work item back to every eligible worklist
    /// (§3.3: a user may stop work they selected; the activity
    /// becomes available for load balancing again).
    pub fn release(&self, item: WorkItemId, person: &str) -> Result<(), EngineError> {
        let mut inner = self.inner.lock();
        let at = self.clock.now();
        inner.worklists.release(item, person)?;
        inner.journal.append(Event::UserIntervention {
            instance: inner
                .worklists
                .get(item)
                .map(|it| it.instance)
                .unwrap_or(InstanceId(0)),
            path: inner
                .worklists
                .get(item)
                .map(|it| it.path.clone())
                .unwrap_or_default(),
            action: format!("release {item} by {person}"),
            at,
        });
        Ok(())
    }

    /// Marks a person absent (optionally naming a substitute) or
    /// present again. Affects *future* work-item offers; items already
    /// offered stay with their original offerees (§3.3's organization
    /// is consulted at staff-resolution time).
    pub fn set_absent(&self, person: &str, absent: bool, substitute: Option<&str>) {
        self.inner.lock().org.set_absent(person, absent, substitute);
    }

    /// All instances: `(id, process name, status)`.
    pub fn instances(&self) -> Vec<(InstanceId, String, InstanceStatus)> {
        self.inner
            .lock()
            .instances
            .values()
            .map(|i| (i.id, i.def.name.clone(), i.status))
            .collect()
    }

    /// Executes a work item `person` has claimed (claiming it first if
    /// still offered), then continues automatic navigation of the
    /// instance.
    pub fn execute_item(&self, item: WorkItemId, person: &str) -> Result<(), EngineError> {
        let instance;
        {
            let mut inner = self.inner.lock();
            let it = inner
                .worklists
                .get(item)
                .ok_or(EngineError::Worklist(WorklistError::NoSuchItem(item)))?
                .clone();
            match &it.state {
                WorkItemState::Offered => {
                    inner.worklists.claim(item, person)?;
                    let at = self.clock.now();
                    inner.journal.append(Event::WorkItemClaimed {
                        item,
                        person: person.to_owned(),
                        at,
                    });
                }
                WorkItemState::Claimed(p) if p == person => {}
                WorkItemState::Claimed(p) => {
                    return Err(EngineError::Worklist(WorklistError::AlreadyClaimed {
                        item,
                        by: p.clone(),
                    }))
                }
                WorkItemState::Closed => {
                    return Err(EngineError::Worklist(WorklistError::Closed(item)))
                }
            }
            instance = it.instance;
            let path = split_path(&it.path);
            {
                let Inner {
                    journal,
                    org,
                    worklists,
                    next_item,
                    instances,
                    ..
                } = &mut *inner;
                let inst = instances
                    .get_mut(&instance)
                    .ok_or(EngineError::UnknownInstance(instance))?;
                // The underlying activity must still be ready at the
                // claimed attempt.
                let ok = inst
                    .activity_rt(&path)
                    .map(|rt| rt.state == ActState::Ready)
                    .unwrap_or(false);
                if !ok {
                    return Err(EngineError::BadActivityState {
                        path: it.path.clone(),
                        expected: "ready",
                    });
                }
                let mut svc = navigator::NavServices {
                    journal,
                    clock: &self.clock,
                    org,
                    worklists,
                    next_item,
                    programs: &self.programs,
                    multidb: &self.multidb,
                };
                navigator::execute_activity(inst, &mut svc, &path, Some(person.to_owned()));
            }
        }
        self.run_to_quiescence(instance)?;
        Ok(())
    }

    /// Operator intervention (§3.3): forces a ready or running
    /// activity to finish with return code `rc` and no outputs, then
    /// continues navigation.
    pub fn force_finish(
        &self,
        id: InstanceId,
        path: &str,
        rc: i64,
    ) -> Result<(), EngineError> {
        {
            let mut inner = self.inner.lock();
            let at = self.clock.now();
            let Inner {
                journal,
                org,
                worklists,
                next_item,
                instances,
                ..
            } = &mut *inner;
            let inst = instances
                .get_mut(&id)
                .ok_or(EngineError::UnknownInstance(id))?;
            let segs = split_path(path);
            let ok = inst
                .activity_rt(&segs)
                .map(|rt| matches!(rt.state, ActState::Ready | ActState::Running))
                .unwrap_or(false);
            if !ok {
                return Err(EngineError::BadActivityState {
                    path: path.to_owned(),
                    expected: "ready or running",
                });
            }
            journal.append(Event::UserIntervention {
                instance: id,
                path: path.to_owned(),
                action: format!("force-finish rc={rc}"),
                at,
            });
            let mut svc = navigator::NavServices {
                journal,
                clock: &self.clock,
                org,
                worklists,
                next_item,
                programs: &self.programs,
                multidb: &self.multidb,
            };
            navigator::complete_execution(inst, &mut svc, &segs, rc, BTreeMap::new());
        }
        self.run_to_quiescence(id)?;
        Ok(())
    }

    /// Cancels a running instance.
    pub fn cancel(&self, id: InstanceId) -> Result<(), EngineError> {
        let mut inner = self.inner.lock();
        let Inner {
            journal,
            org,
            worklists,
            next_item,
            instances,
            ..
        } = &mut *inner;
        let inst = instances
            .get_mut(&id)
            .ok_or(EngineError::UnknownInstance(id))?;
        let mut svc = navigator::NavServices {
            journal,
            clock: &self.clock,
            org,
            worklists,
            next_item,
            programs: &self.programs,
            multidb: &self.multidb,
        };
        navigator::cancel_instance(inst, &mut svc);
        Ok(())
    }

    /// Advances the virtual clock and delivers due deadline
    /// notifications. Returns `(activity path, notified person)`
    /// pairs.
    pub fn advance_clock(&self, ticks: txn_substrate::Tick) -> Vec<(String, String)> {
        self.clock.advance(ticks);
        let mut inner = self.inner.lock();
        let ids: Vec<InstanceId> = inner.instances.keys().copied().collect();
        let mut sent = Vec::new();
        for id in ids {
            let Inner {
                journal,
                org,
                worklists,
                next_item,
                instances,
                ..
            } = &mut *inner;
            let inst = instances.get_mut(&id).expect("id from key scan");
            if inst.status != InstanceStatus::Running {
                continue;
            }
            let mut svc = navigator::NavServices {
                journal,
                clock: &self.clock,
                org,
                worklists,
                next_item,
                programs: &self.programs,
                multidb: &self.multidb,
            };
            sent.extend(navigator::check_deadlines(inst, &mut svc));
        }
        sent
    }

    /// Current status of an instance.
    pub fn status(&self, id: InstanceId) -> Result<InstanceStatus, EngineError> {
        self.inner
            .lock()
            .instances
            .get(&id)
            .map(|i| i.status)
            .ok_or(EngineError::UnknownInstance(id))
    }

    /// The process output container of an instance (final once the
    /// instance is finished).
    pub fn output(&self, id: InstanceId) -> Result<Container, EngineError> {
        self.inner
            .lock()
            .instances
            .get(&id)
            .map(|i| i.root.output.clone())
            .ok_or(EngineError::UnknownInstance(id))
    }

    /// Runtime inspection: `(state, executed, attempt)` of the
    /// activity at `path`.
    pub fn activity_state(
        &self,
        id: InstanceId,
        path: &str,
    ) -> Result<(ActState, bool, u32), EngineError> {
        let inner = self.inner.lock();
        let inst = inner
            .instances
            .get(&id)
            .ok_or(EngineError::UnknownInstance(id))?;
        inst.activity_rt(&split_path(path))
            .map(|rt| (rt.state, rt.executed, rt.attempt))
            .ok_or(EngineError::BadActivityState {
                path: path.to_owned(),
                expected: "present",
            })
    }

    /// All journal events (copy).
    pub fn journal_events(&self) -> Vec<Event> {
        self.inner.lock().journal.events()
    }

    /// Journal events of one instance.
    pub fn events_for(&self, id: InstanceId) -> Vec<Event> {
        self.inner.lock().journal.events_for(id)
    }

    /// Writes an engine checkpoint — a complete snapshot of every
    /// instance, the worklists and the allocators — into the journal
    /// and compacts it, bounding recovery replay time (the engine-side
    /// mirror of [`txn_substrate::Database::checkpoint`]). Safe at any
    /// quiescent point (no navigation in flight — guaranteed here by
    /// holding the engine lock). Returns the number of journal events
    /// dropped by compaction.
    pub fn checkpoint(&self) -> usize {
        let inner = self.inner.lock();
        let instances: Vec<crate::event::InstanceSnapshot> = inner
            .instances
            .values()
            .map(|i| crate::event::InstanceSnapshot {
                id: i.id,
                process: i.def.name.clone(),
                status: i.status,
                root: i.root.clone(),
            })
            .collect();
        let items: Vec<crate::worklist::WorkItem> = inner
            .worklists
            .open_items()
            .iter()
            .map(|it| (*it).clone())
            .collect();
        // Claimed items survive too: open_items() covers Offered only,
        // so collect claimed ones explicitly via the persons that hold
        // them — simplest is to re-walk all items by id range.
        let mut all_items = items;
        for id in 1..inner.next_item {
            if let Some(it) = inner.worklists.get(WorkItemId(id)) {
                if matches!(it.state, crate::worklist::WorkItemState::Claimed(_))
                    && !all_items.iter().any(|x| x.id == it.id)
                {
                    all_items.push(it.clone());
                }
            }
        }
        all_items.sort_by_key(|it| it.id);
        inner.journal.append(Event::EngineCheckpoint {
            instances,
            items: all_items,
            next_instance: inner.next_instance,
            next_item: inner.next_item,
            at: self.clock.now(),
        });
        inner.journal.compact()
    }

    /// Simulates a crash: drops all volatile state, keeping only what
    /// the journal file (if any) holds. Use
    /// [`crate::recovery::recover`] to rebuild. Consumes the engine so
    /// no handle can observe the dead state.
    pub fn crash(self) {
        drop(self);
    }
}
