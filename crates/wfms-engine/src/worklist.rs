//! Worklists — how humans interact with the engine.
//!
//! §3.3: "Regular users interact with the system using worklists. A
//! worklist contains the activities that correspond to the user. Note
//! that the same activity may appear in several worklists
//! simultaneously, however, as soon as a user selects that activity
//! for execution, it disappears from all other worklists. This can be
//! effectively used to perform load balancing."
//!
//! A [`WorkItem`] is one offer of one ready manual activity. The store
//! keeps a single item per offer and materialises per-person views on
//! demand; claiming is a single atomic state change, so the
//! vanishes-from-all-other-worklists rule holds by construction.

use crate::event::{InstanceId, WorkItemId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Lifecycle of a work item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkItemState {
    /// Visible on every eligible person's worklist.
    Offered,
    /// Claimed by one person; invisible to everyone else.
    Claimed(String),
    /// The underlying activity completed (or was cancelled).
    Closed,
}

/// One offer of a ready manual activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkItem {
    /// Unique id.
    pub id: WorkItemId,
    /// Owning instance.
    pub instance: InstanceId,
    /// Activity path within the instance.
    pub path: String,
    /// Attempt number of the underlying activity.
    pub attempt: u32,
    /// Persons the item is offered to.
    pub offered_to: Vec<String>,
    /// Current state.
    pub state: WorkItemState,
    /// Tick at which the item was offered (deadline tracking).
    pub offered_at: txn_substrate::Tick,
}

/// Errors from worklist operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorklistError {
    /// The item does not exist.
    NoSuchItem(WorkItemId),
    /// The person is not among the item's offerees.
    NotEligible { item: WorkItemId, person: String },
    /// Someone else already claimed the item.
    AlreadyClaimed { item: WorkItemId, by: String },
    /// The item is closed.
    Closed(WorkItemId),
}

impl std::fmt::Display for WorklistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorklistError::NoSuchItem(id) => write!(f, "{id} does not exist"),
            WorklistError::NotEligible { item, person } => {
                write!(f, "{person} is not eligible for {item}")
            }
            WorklistError::AlreadyClaimed { item, by } => {
                write!(f, "{item} already claimed by {by}")
            }
            WorklistError::Closed(id) => write!(f, "{id} is closed"),
        }
    }
}

impl std::error::Error for WorklistError {}

/// The store of all work items.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorklistStore {
    items: BTreeMap<WorkItemId, WorkItem>,
}

impl WorklistStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new offer.
    pub fn offer(&mut self, item: WorkItem) {
        self.items.insert(item.id, item);
    }

    /// The worklist of `person`: items offered to them and not claimed
    /// by anyone else, plus items they themselves claimed but have not
    /// finished.
    pub fn worklist(&self, person: &str) -> Vec<&WorkItem> {
        self.items
            .values()
            .filter(|it| match &it.state {
                WorkItemState::Offered => it.offered_to.iter().any(|p| p == person),
                WorkItemState::Claimed(p) => p == person,
                WorkItemState::Closed => false,
            })
            .collect()
    }

    /// Claims `item` for `person`. On success the item disappears from
    /// every other worklist (it is now `Claimed(person)`).
    pub fn claim(&mut self, item: WorkItemId, person: &str) -> Result<&WorkItem, WorklistError> {
        let it = self
            .items
            .get_mut(&item)
            .ok_or(WorklistError::NoSuchItem(item))?;
        match &it.state {
            WorkItemState::Closed => Err(WorklistError::Closed(item)),
            WorkItemState::Claimed(by) => Err(WorklistError::AlreadyClaimed {
                item,
                by: by.clone(),
            }),
            WorkItemState::Offered => {
                if !it.offered_to.iter().any(|p| p == person) {
                    return Err(WorklistError::NotEligible {
                        item,
                        person: person.to_owned(),
                    });
                }
                it.state = WorkItemState::Claimed(person.to_owned());
                Ok(&*it)
            }
        }
    }

    /// Releases a claim: the item returns to `Offered` and reappears
    /// on every eligible worklist (§3.3's "stop an activity" — the
    /// person hands the work back). Only the claimer may release.
    pub fn release(&mut self, item: WorkItemId, person: &str) -> Result<(), WorklistError> {
        let it = self
            .items
            .get_mut(&item)
            .ok_or(WorklistError::NoSuchItem(item))?;
        match &it.state {
            WorkItemState::Closed => Err(WorklistError::Closed(item)),
            WorkItemState::Offered => Ok(()), // already released
            WorkItemState::Claimed(by) if by == person => {
                it.state = WorkItemState::Offered;
                Ok(())
            }
            WorkItemState::Claimed(by) => Err(WorklistError::AlreadyClaimed {
                item,
                by: by.clone(),
            }),
        }
    }

    /// Closes `item` (activity completed or cancelled).
    pub fn close(&mut self, item: WorkItemId) {
        if let Some(it) = self.items.get_mut(&item) {
            it.state = WorkItemState::Closed;
        }
    }

    /// Closes every open item for `(instance, path)` — used when an
    /// activity is force-finished or its instance is cancelled.
    pub fn close_for(&mut self, instance: InstanceId, path: &str) {
        for it in self.items.values_mut() {
            if it.instance == instance && it.path == path && it.state != WorkItemState::Closed {
                it.state = WorkItemState::Closed;
            }
        }
    }

    /// Releases every claimed item back to `Offered`, returning how
    /// many were released. Claims are leases held by a live engine
    /// session: after a crash the claiming worker's session is gone,
    /// so recovery calls this to put claimed-but-unstarted items back
    /// on every eligible worklist instead of leaving them parked on a
    /// dead worker forever. (Items whose activity had already started
    /// are re-offered separately by the running-activity fix-up.)
    pub fn release_stale_claims(&mut self) -> usize {
        let mut released = 0;
        for it in self.items.values_mut() {
            if matches!(it.state, WorkItemState::Claimed(_)) {
                it.state = WorkItemState::Offered;
                released += 1;
            }
        }
        released
    }

    /// Counts items by state: `(offered, claimed, closed)` — the
    /// worklist portion of the engine's metrics snapshot.
    pub fn state_counts(&self) -> (u64, u64, u64) {
        let (mut offered, mut claimed, mut closed) = (0, 0, 0);
        for it in self.items.values() {
            match it.state {
                WorkItemState::Offered => offered += 1,
                WorkItemState::Claimed(_) => claimed += 1,
                WorkItemState::Closed => closed += 1,
            }
        }
        (offered, claimed, closed)
    }

    /// Looks up an item.
    pub fn get(&self, item: WorkItemId) -> Option<&WorkItem> {
        self.items.get(&item)
    }

    /// True when `(instance, path)` has an offered or claimed item —
    /// the guard the recovery/migration fix-up uses before re-offering
    /// a `Ready` manual activity whose offer may have been lost.
    pub fn has_live_item(&self, instance: InstanceId, path: &str) -> bool {
        self.items.values().any(|it| {
            it.instance == instance && it.path == path && it.state != WorkItemState::Closed
        })
    }

    /// Open (offered, unclaimed) items, in id order.
    pub fn open_items(&self) -> Vec<&WorkItem> {
        self.items
            .values()
            .filter(|it| it.state == WorkItemState::Offered)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: u64, offered_to: &[&str]) -> WorkItem {
        WorkItem {
            id: WorkItemId(id),
            instance: InstanceId(1),
            path: "A".into(),
            attempt: 0,
            offered_to: offered_to.iter().map(|s| s.to_string()).collect(),
            state: WorkItemState::Offered,
            offered_at: 0,
        }
    }

    #[test]
    fn offer_appears_on_every_eligible_worklist() {
        let mut s = WorklistStore::new();
        s.offer(item(1, &["ann", "bob"]));
        assert_eq!(s.worklist("ann").len(), 1);
        assert_eq!(s.worklist("bob").len(), 1);
        assert_eq!(s.worklist("carol").len(), 0);
    }

    #[test]
    fn claim_removes_from_other_worklists() {
        let mut s = WorklistStore::new();
        s.offer(item(1, &["ann", "bob"]));
        s.claim(WorkItemId(1), "ann").unwrap();
        assert_eq!(s.worklist("ann").len(), 1, "claimer still sees it");
        assert_eq!(s.worklist("bob").len(), 0, "vanished for bob");
    }

    #[test]
    fn double_claim_rejected() {
        let mut s = WorklistStore::new();
        s.offer(item(1, &["ann", "bob"]));
        s.claim(WorkItemId(1), "ann").unwrap();
        let err = s.claim(WorkItemId(1), "bob").unwrap_err();
        assert_eq!(
            err,
            WorklistError::AlreadyClaimed {
                item: WorkItemId(1),
                by: "ann".into()
            }
        );
    }

    #[test]
    fn ineligible_claim_rejected() {
        let mut s = WorklistStore::new();
        s.offer(item(1, &["ann"]));
        assert!(matches!(
            s.claim(WorkItemId(1), "mallory"),
            Err(WorklistError::NotEligible { .. })
        ));
    }

    #[test]
    fn closed_items_invisible_everywhere() {
        let mut s = WorklistStore::new();
        s.offer(item(1, &["ann"]));
        s.close(WorkItemId(1));
        assert!(s.worklist("ann").is_empty());
        assert!(matches!(
            s.claim(WorkItemId(1), "ann"),
            Err(WorklistError::Closed(_))
        ));
    }

    #[test]
    fn close_for_targets_activity() {
        let mut s = WorklistStore::new();
        s.offer(item(1, &["ann"]));
        let mut other = item(2, &["ann"]);
        other.path = "B".into();
        s.offer(other);
        s.close_for(InstanceId(1), "A");
        let remaining = s.worklist("ann");
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].path, "B");
    }

    #[test]
    fn release_stale_claims_reoffers_only_claimed_items() {
        let mut s = WorklistStore::new();
        s.offer(item(1, &["ann", "bob"]));
        s.offer(item(2, &["ann"]));
        let mut closed = item(3, &["ann"]);
        closed.state = WorkItemState::Closed;
        s.offer(closed);
        s.claim(WorkItemId(1), "ann").unwrap();
        assert_eq!(s.release_stale_claims(), 1);
        assert_eq!(s.get(WorkItemId(1)).unwrap().state, WorkItemState::Offered);
        assert_eq!(s.get(WorkItemId(2)).unwrap().state, WorkItemState::Offered);
        assert_eq!(s.get(WorkItemId(3)).unwrap().state, WorkItemState::Closed);
        // Bob sees the item again: the dead worker's lease is gone.
        assert_eq!(s.worklist("bob").len(), 1);
        assert_eq!(s.release_stale_claims(), 0);
    }

    #[test]
    fn missing_item_errors() {
        let mut s = WorklistStore::new();
        assert!(matches!(
            s.claim(WorkItemId(9), "ann"),
            Err(WorklistError::NoSuchItem(_))
        ));
        assert!(s.get(WorkItemId(9)).is_none());
    }
}
