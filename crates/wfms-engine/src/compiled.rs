//! Compiled process templates — the "executable process template" at
//! the end of the paper's Figure 5 pipeline.
//!
//! [`Engine::register`](crate::Engine::register) lowers each validated
//! [`ProcessDefinition`] into a [`CompiledProcess`] once, so the
//! navigator never rescans the definition on the hot path:
//!
//! * activity names are interned to dense `u32` ids in declaration
//!   order ([`wfms_model::Interner`]), so per-scope runtime state is a
//!   plain vector indexed by id;
//! * control connectors become a CSR-style adjacency: edges live in
//!   one vector (in declaration order, which fixes journal event
//!   order), and every activity carries its incoming/outgoing edge-id
//!   lists;
//! * transition and exit conditions are constant-folded
//!   ([`wfms_model::Expr::const_fold`]) into [`CondPlan`]s — statically
//!   true/false conditions (including guaranteed evaluation errors,
//!   which the engine maps to a constant) skip expression evaluation
//!   entirely at run time;
//! * data connectors are flattened into per-activity mapping tables
//!   ([`DataIn`] for input materialisation, `data_out` for
//!   process-output propagation);
//! * the effective output schema (declared members + the reserved `RC`
//!   member) is precomputed per activity;
//! * deadline-bearing and manual activities are indexed so
//!   [`check_deadlines`](crate::navigator::check_deadlines) and
//!   worklist maintenance skip instances that cannot need them.
//!
//! Compilation is deterministic: ids are declaration positions, so a
//! template compiled at recovery time addresses the same state slots
//! as the one that produced the journal.

use std::sync::Arc;
use txn_substrate::{Tick, Value};
use wfms_model::{
    ActivityKind, Container, ContainerSchema, DataEndpoint, Expr, Interner, ProcessDefinition,
    StaffAssignment, StartCondition, RC_MEMBER,
};

/// Dense per-scope activity id (declaration position).
pub type ActId = u32;

/// Dense per-scope control-connector id (declaration position).
pub type EdgeId = u32;

/// Dense scope id: the position of a (sub)process scope in the
/// preorder flattening of the block tree ([`ScopeLayout`]). The root
/// scope is always id 0.
pub type ScopeId = u32;

/// A path of activity ids from the root scope: every prefix element
/// names a block activity, the last element the addressed activity.
/// Lexicographic order on id paths is exactly the navigator's
/// depth-first declaration-order scan, which is what makes the ready
/// queue a plain binary heap.
pub type IdPath = Vec<ActId>;

/// A precompiled condition: the constant-folded expression, or the
/// constant it folds to. Guaranteed evaluation errors fold to the
/// constant the engine would produce at run time (transition
/// conditions error to `false`, exit conditions to `true`), so the
/// run-time error path disappears from compiled templates.
#[derive(Debug, Clone)]
pub enum CondPlan {
    /// Statically true — no evaluation needed.
    AlwaysTrue,
    /// Statically false — no evaluation needed.
    AlwaysFalse,
    /// Genuinely dynamic; the stored expression is already folded.
    Dynamic(Expr),
}

impl CondPlan {
    /// Compiles a transition condition. The engine evaluates these as
    /// `expr.eval_bool(output).unwrap_or(false)`, so a guaranteed
    /// error is statically false.
    pub fn transition(expr: &Expr) -> Self {
        let folded = expr.const_fold();
        match folded.const_value() {
            Some(v) => {
                if v.as_bool() == Some(true) {
                    CondPlan::AlwaysTrue
                } else {
                    // A non-boolean constant errors at eval time,
                    // which the transition rule maps to false.
                    CondPlan::AlwaysFalse
                }
            }
            None => {
                if folded.const_error().is_some() {
                    CondPlan::AlwaysFalse
                } else {
                    CondPlan::Dynamic(folded)
                }
            }
        }
    }

    /// Compiles an exit condition. The engine evaluates these as
    /// `expr.eval_bool(output).unwrap_or(true)`, so a guaranteed error
    /// is statically true; an absent condition is always true.
    pub fn exit(expr: &Option<Expr>) -> Self {
        let Some(expr) = expr else {
            return CondPlan::AlwaysTrue;
        };
        let folded = expr.const_fold();
        match folded.const_value() {
            Some(v) => {
                if v.as_bool() == Some(false) {
                    CondPlan::AlwaysFalse
                } else {
                    // True, or a non-boolean constant (eval error →
                    // exit-ok).
                    CondPlan::AlwaysTrue
                }
            }
            None => {
                if folded.const_error().is_some() {
                    CondPlan::AlwaysTrue
                } else {
                    CondPlan::Dynamic(folded)
                }
            }
        }
    }

    /// Evaluates a transition plan over `output` (errors are false).
    pub fn eval_transition(&self, output: &Container) -> bool {
        match self {
            CondPlan::AlwaysTrue => true,
            CondPlan::AlwaysFalse => false,
            CondPlan::Dynamic(e) => e.eval_bool(output).unwrap_or(false),
        }
    }

    /// Evaluates an exit plan over `output` (errors are true).
    pub fn eval_exit(&self, output: &Container) -> bool {
        match self {
            CondPlan::AlwaysTrue => true,
            CondPlan::AlwaysFalse => false,
            CondPlan::Dynamic(e) => e.eval_bool(output).unwrap_or(true),
        }
    }
}

/// One compiled control connector.
#[derive(Debug, Clone)]
pub struct CompiledEdge {
    /// Source activity id.
    pub from: ActId,
    /// Target activity id.
    pub to: ActId,
    /// Precompiled transition condition.
    pub cond: CondPlan,
}

/// Source side of a flattened input-data mapping.
#[derive(Debug, Clone)]
pub enum DataSource {
    /// The scope's input container.
    ProcessInput,
    /// The output container of the activity with this id (applies only
    /// once that activity terminated after executing).
    ActivityOutput(ActId),
}

/// One flattened data connector feeding an activity's input container.
#[derive(Debug, Clone)]
pub struct DataIn {
    /// Where the values come from.
    pub source: DataSource,
    /// `(from_member, to_member)` copies, in declaration order.
    pub mappings: Vec<(String, String)>,
}

/// What a compiled activity executes.
#[derive(Debug, Clone)]
pub enum CompiledKind {
    /// Pass-through no-op (commits with `RC = 1`).
    NoOp,
    /// Invokes the named transactional program.
    Program(String),
    /// Runs an embedded subprocess.
    Block(Arc<CompiledScope>),
}

/// One activity, fully indexed.
#[derive(Debug, Clone)]
pub struct CompiledActivity {
    /// Activity name (for journal paths and API lookups).
    pub name: String,
    /// Program / block / no-op.
    pub kind: CompiledKind,
    /// Engine-started when ready (vs worklist-offered).
    pub automatic: bool,
    /// AND/OR join semantics.
    pub start: StartCondition,
    /// Precompiled exit condition.
    pub exit: CondPlan,
    /// Staff assignment for manual activities.
    pub staff: StaffAssignment,
    /// Deadline in ticks for manual activities.
    pub deadline: Option<Tick>,
    /// Input container schema.
    pub input: ContainerSchema,
    /// Effective output schema: declared members plus `RC`.
    pub eff_output: ContainerSchema,
    /// Incoming control-connector edge ids, in declaration order.
    pub incoming: Vec<EdgeId>,
    /// Outgoing control-connector edge ids, in declaration order.
    pub outgoing: Vec<EdgeId>,
    /// Flattened data connectors into this activity's input.
    pub data_in: Vec<DataIn>,
    /// `(from_member, to_member)` copies from this activity's output
    /// into the scope's output container, applied at termination.
    pub data_out: Vec<(String, String)>,
}

/// One compiled (sub)process scope.
#[derive(Debug, Clone)]
pub struct CompiledScope {
    /// Scope name (process or block name).
    pub name: String,
    /// Activities indexed by [`ActId`] (declaration order).
    pub acts: Vec<CompiledActivity>,
    /// `name → ActId` for API path resolution.
    pub interner: Interner,
    /// Control connectors indexed by [`EdgeId`] (declaration order).
    pub edges: Vec<CompiledEdge>,
    /// Activities with no incoming connectors, in declaration order.
    pub starts: Vec<ActId>,
    /// Manual activities with a deadline, directly in this scope.
    pub deadline_acts: Vec<ActId>,
    /// True if this scope or any nested block has a deadline-bearing
    /// manual activity.
    pub any_deadlines: bool,
    /// True if this scope or any nested block has a manual activity.
    pub any_manual: bool,
    /// Scope input container schema.
    pub input: ContainerSchema,
    /// Scope output container schema.
    pub output: ContainerSchema,
}

impl CompiledScope {
    fn compile(def: &ProcessDefinition) -> Self {
        let mut interner = Interner::new();
        for a in &def.activities {
            interner.intern(&a.name);
        }
        let id_of = |name: &str| -> Option<ActId> { interner.get(name) };

        let mut edges = Vec::with_capacity(def.control.len());
        let mut incoming: Vec<Vec<EdgeId>> = vec![Vec::new(); def.activities.len()];
        let mut outgoing: Vec<Vec<EdgeId>> = vec![Vec::new(); def.activities.len()];
        for c in &def.control {
            let (Some(from), Some(to)) = (id_of(&c.from), id_of(&c.to)) else {
                // Validation rejects dangling connectors; tolerate
                // them here so compile is total.
                continue;
            };
            let e = edges.len() as EdgeId;
            edges.push(CompiledEdge {
                from,
                to,
                cond: CondPlan::transition(&c.condition),
            });
            outgoing[from as usize].push(e);
            incoming[to as usize].push(e);
        }

        let mut acts = Vec::with_capacity(def.activities.len());
        let mut any_deadlines = false;
        let mut any_manual = false;
        let mut deadline_acts = Vec::new();
        for (i, a) in def.activities.iter().enumerate() {
            let kind = match &a.kind {
                ActivityKind::NoOp => CompiledKind::NoOp,
                ActivityKind::Program { program } => CompiledKind::Program(program.clone()),
                ActivityKind::Block { process } => {
                    let child = CompiledScope::compile(process);
                    any_deadlines |= child.any_deadlines;
                    any_manual |= child.any_manual;
                    CompiledKind::Block(Arc::new(child))
                }
            };
            if !a.automatic_start {
                any_manual = true;
                if a.deadline.is_some() {
                    any_deadlines = true;
                    deadline_acts.push(i as ActId);
                }
            }

            let mut data_in = Vec::new();
            let mut data_out = Vec::new();
            for d in &def.data {
                if matches!(&d.to, DataEndpoint::ActivityInput(t) if t == &a.name) {
                    let source = match &d.from {
                        DataEndpoint::ProcessInput => Some(DataSource::ProcessInput),
                        DataEndpoint::ActivityOutput(s) => id_of(s).map(DataSource::ActivityOutput),
                        _ => None,
                    };
                    if let Some(source) = source {
                        data_in.push(DataIn {
                            source,
                            mappings: d
                                .mappings
                                .iter()
                                .map(|m| (m.from_member.clone(), m.to_member.clone()))
                                .collect(),
                        });
                    }
                }
                if matches!(&d.from, DataEndpoint::ActivityOutput(s) if s == &a.name)
                    && d.to == DataEndpoint::ProcessOutput
                {
                    for m in &d.mappings {
                        data_out.push((m.from_member.clone(), m.to_member.clone()));
                    }
                }
            }

            acts.push(CompiledActivity {
                name: a.name.clone(),
                kind,
                automatic: a.automatic_start,
                start: a.start,
                exit: CondPlan::exit(&a.exit.expr),
                staff: a.staff.clone(),
                deadline: a.deadline,
                input: a.input.clone(),
                eff_output: def.effective_output(a),
                incoming: std::mem::take(&mut incoming[i]),
                outgoing: std::mem::take(&mut outgoing[i]),
                data_in,
                data_out,
            });
        }

        let starts: Vec<ActId> = acts
            .iter()
            .enumerate()
            .filter(|(_, a)| a.incoming.is_empty())
            .map(|(i, _)| i as ActId)
            .collect();

        Self {
            name: def.name.clone(),
            acts,
            interner,
            edges,
            starts,
            deadline_acts,
            any_deadlines,
            any_manual,
            input: def.input.clone(),
            output: def.output.clone(),
        }
    }

    /// The compiled activity behind `id`.
    #[inline]
    pub fn act(&self, id: ActId) -> &CompiledActivity {
        &self.acts[id as usize]
    }

    /// The id of `name`, if the scope declares it.
    #[inline]
    pub fn id(&self, name: &str) -> Option<ActId> {
        self.interner.get(name)
    }

    /// The child scope of the block activity `id`, if it is a block.
    #[inline]
    pub fn child_scope(&self, id: ActId) -> Option<&Arc<CompiledScope>> {
        match &self.acts.get(id as usize)?.kind {
            CompiledKind::Block(s) => Some(s),
            _ => None,
        }
    }

    /// The edge id of the connector `from → to`, if declared.
    pub fn edge_id(&self, from: &str, to: &str) -> Option<EdgeId> {
        let (f, t) = (self.id(from)?, self.id(to)?);
        self.acts[f as usize]
            .outgoing
            .iter()
            .copied()
            .find(|&e| self.edges[e as usize].to == t)
    }

    /// Number of activities.
    pub fn len(&self) -> usize {
        self.acts.len()
    }

    /// True when the scope declares no activities.
    pub fn is_empty(&self) -> bool {
        self.acts.is_empty()
    }
}

/// Metadata of one scope in the flattened preorder [`ScopeLayout`].
#[derive(Debug)]
pub struct ScopeMeta {
    /// The compiled scope this entry describes.
    pub cs: Arc<CompiledScope>,
    /// Parent scope and the **global act slot** of the block activity
    /// that opens this scope; `None` for the root.
    pub parent: Option<(ScopeId, u32)>,
    /// First global act slot of this scope's activities (slots are
    /// contiguous: `act_base..act_base + cs.acts.len()`).
    pub act_base: u32,
    /// First global edge slot of this scope's connectors.
    pub edge_base: u32,
    /// Last [`ScopeId`] in this scope's preorder subtree (inclusive).
    /// Preorder numbering makes every subtree a contiguous id range —
    /// and, because slots are assigned in the same order, a contiguous
    /// act/edge slot range too.
    pub subtree_last: ScopeId,
    /// Block-nesting depth (root = 0).
    pub depth: u32,
    /// Slash path of the scope in journal form (`""` for the root).
    pub path: Arc<str>,
    /// Prototype input container (schema defaults), cloned — an `Arc`
    /// bump — whenever the scope opens.
    pub input_proto: Container,
    /// Prototype output container (schema defaults).
    pub output_proto: Container,
}

/// The arena layout of one compiled template: every activity and
/// connector of every (possibly nested) scope mapped to a **global
/// slot** in one contiguous index space, with everything the hot path
/// would otherwise recompute per step — journal path strings, id
/// paths, container prototypes, execution-order ranks — precomputed
/// per slot.
///
/// The per-instance [`StateSlab`](crate::state::StateSlab) allocates
/// one vector per state column over this slot space, so instance state
/// is a handful of contiguous allocations instead of a pointer tree,
/// and navigation steps index columns instead of walking scopes.
#[derive(Debug)]
pub struct ScopeLayout {
    /// Scopes in preorder (root first).
    pub scopes: Vec<ScopeMeta>,
    /// Per act slot: the owning scope.
    pub owner: Vec<ScopeId>,
    /// Per act slot: the scope-local [`ActId`].
    pub local: Vec<ActId>,
    /// Per act slot: the child scope a block activity opens (`None`
    /// for non-blocks).
    pub block_child: Vec<Option<ScopeId>>,
    /// Per act slot: engine-started when ready.
    pub automatic: Vec<bool>,
    /// Per act slot: full slash path in journal form, interned once so
    /// event construction is an `Arc` clone.
    pub paths: Vec<Arc<str>>,
    /// Per act slot: the [`IdPath`] addressing the slot.
    pub id_paths: Vec<IdPath>,
    /// Per act slot: prototype input container (schema defaults).
    pub input_proto: Vec<Container>,
    /// Per act slot: prototype output container with `RC = 1` — the
    /// completion fast path for executions that produce no outputs.
    pub output_rc1: Vec<Container>,
    /// Per act slot: the slot's position in depth-first
    /// declaration-order execution (lexicographic [`IdPath`] order).
    /// The per-instance ready queue is a min-heap of these ranks —
    /// `u32` comparisons and no allocation, while popping still
    /// reproduces the navigator's historical scan order exactly.
    pub rank: Vec<u32>,
    /// Inverse of [`ScopeLayout::rank`].
    pub rank_to_slot: Vec<u32>,
    /// Per edge slot: interned `(from, to)` activity names for
    /// `ConnectorEvaluated` events.
    pub edge_names: Vec<(Arc<str>, Arc<str>)>,
}

impl ScopeLayout {
    fn build(root: &Arc<CompiledScope>) -> Self {
        let mut l = ScopeLayout {
            scopes: Vec::new(),
            owner: Vec::new(),
            local: Vec::new(),
            block_child: Vec::new(),
            automatic: Vec::new(),
            paths: Vec::new(),
            id_paths: Vec::new(),
            input_proto: Vec::new(),
            output_rc1: Vec::new(),
            rank: Vec::new(),
            rank_to_slot: Vec::new(),
            edge_names: Vec::new(),
        };
        let mut prefix = IdPath::new();
        visit_scope(&mut l, root, None, "", &mut prefix);
        // Execution-order ranks: lexicographic order on id paths is the
        // depth-first declaration-order scan.
        let mut order: Vec<u32> = (0..l.owner.len() as u32).collect();
        order.sort_by(|&a, &b| l.id_paths[a as usize].cmp(&l.id_paths[b as usize]));
        l.rank = vec![0; order.len()];
        for (r, &slot) in order.iter().enumerate() {
            l.rank[slot as usize] = r as u32;
        }
        l.rank_to_slot = order;
        l
    }

    /// Number of global activity slots.
    #[inline]
    pub fn n_acts(&self) -> usize {
        self.owner.len()
    }

    /// Number of global connector slots.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edge_names.len()
    }

    /// Number of scopes.
    #[inline]
    pub fn n_scopes(&self) -> usize {
        self.scopes.len()
    }

    /// The scope metadata of `s`.
    #[inline]
    pub fn scope(&self, s: ScopeId) -> &ScopeMeta {
        &self.scopes[s as usize]
    }

    /// The compiled activity behind a global act slot.
    #[inline]
    pub fn act(&self, slot: u32) -> &CompiledActivity {
        let m = &self.scopes[self.owner[slot as usize] as usize];
        &m.cs.acts[self.local[slot as usize] as usize]
    }

    /// The global act slot of activity `id` in scope `s`.
    #[inline]
    pub fn slot(&self, s: ScopeId, id: ActId) -> u32 {
        self.scopes[s as usize].act_base + id
    }

    /// The global edge slot of connector `e` in scope `s`.
    #[inline]
    pub fn edge_slot(&self, s: ScopeId, e: EdgeId) -> u32 {
        self.scopes[s as usize].edge_base + e
    }

    /// Act-slot range of the scope's own activities.
    pub fn act_range(&self, s: ScopeId) -> std::ops::Range<usize> {
        let m = &self.scopes[s as usize];
        m.act_base as usize..m.act_base as usize + m.cs.acts.len()
    }

    /// Act-slot range covering the scope's whole subtree (contiguous
    /// by preorder construction).
    pub fn subtree_act_range(&self, s: ScopeId) -> std::ops::Range<usize> {
        let m = &self.scopes[s as usize];
        let last = &self.scopes[m.subtree_last as usize];
        m.act_base as usize..last.act_base as usize + last.cs.acts.len()
    }

    /// Edge-slot range covering the scope's whole subtree.
    pub fn subtree_edge_range(&self, s: ScopeId) -> std::ops::Range<usize> {
        let m = &self.scopes[s as usize];
        let last = &self.scopes[m.subtree_last as usize];
        m.edge_base as usize..last.edge_base as usize + last.cs.edges.len()
    }

    /// Scope-id range covering the scope's whole subtree (inclusive of
    /// `s` itself).
    pub fn subtree_scope_range(&self, s: ScopeId) -> std::ops::Range<usize> {
        s as usize..self.scopes[s as usize].subtree_last as usize + 1
    }

    /// Resolves an [`IdPath`] prefix of block ids to the scope it
    /// addresses — structural only (liveness is per-instance state).
    pub fn scope_of(&self, scope_ids: &[ActId]) -> Option<ScopeId> {
        let mut s: ScopeId = 0;
        for &id in scope_ids {
            let m = &self.scopes[s as usize];
            if (id as usize) >= m.cs.acts.len() {
                return None;
            }
            s = self.block_child[(m.act_base + id) as usize]?;
        }
        Some(s)
    }

    /// Resolves a full [`IdPath`] to its global act slot — structural
    /// only.
    pub fn slot_of(&self, ids: &[ActId]) -> Option<u32> {
        let (&last, scope_ids) = ids.split_last()?;
        let s = self.scope_of(scope_ids)?;
        let m = &self.scopes[s as usize];
        ((last as usize) < m.cs.acts.len()).then(|| m.act_base + last)
    }
}

/// Preorder flattening: records the scope, assigns its act/edge slots,
/// then recurses into block children in declaration order.
fn visit_scope(
    l: &mut ScopeLayout,
    cs: &Arc<CompiledScope>,
    parent: Option<(ScopeId, u32)>,
    scope_path: &str,
    prefix: &mut IdPath,
) -> ScopeId {
    let sid = l.scopes.len() as ScopeId;
    let act_base = l.owner.len() as u32;
    let edge_base = l.edge_names.len() as u32;
    l.scopes.push(ScopeMeta {
        cs: Arc::clone(cs),
        parent,
        act_base,
        edge_base,
        subtree_last: sid,
        depth: prefix.len() as u32,
        path: Arc::from(scope_path),
        input_proto: cs.input.instantiate(),
        output_proto: cs.output.instantiate(),
    });
    for (i, act) in cs.acts.iter().enumerate() {
        let path = if scope_path.is_empty() {
            act.name.clone()
        } else {
            format!("{scope_path}/{}", act.name)
        };
        l.owner.push(sid);
        l.local.push(i as ActId);
        l.block_child.push(None);
        l.automatic.push(act.automatic);
        l.paths.push(Arc::from(path.as_str()));
        let mut ids = prefix.clone();
        ids.push(i as ActId);
        l.id_paths.push(ids);
        l.input_proto.push(act.input.instantiate());
        let mut rc1 = act.eff_output.instantiate();
        rc1.set(RC_MEMBER, Value::Int(1));
        l.output_rc1.push(rc1);
    }
    for e in &cs.edges {
        l.edge_names.push((
            Arc::from(cs.act(e.from).name.as_str()),
            Arc::from(cs.act(e.to).name.as_str()),
        ));
    }
    for (i, act) in cs.acts.iter().enumerate() {
        if let CompiledKind::Block(child) = &act.kind {
            let slot = act_base + i as u32;
            let child_path = l.paths[slot as usize].to_string();
            prefix.push(i as ActId);
            let c = visit_scope(l, child, Some((sid, slot)), &child_path, prefix);
            prefix.pop();
            l.block_child[slot as usize] = Some(c);
        }
    }
    l.scopes[sid as usize].subtree_last = (l.scopes.len() - 1) as ScopeId;
    sid
}

/// A process definition lowered into its executable form. Cheap to
/// clone (`Arc` inside); templates are shared by every instance and
/// every worker thread.
#[derive(Debug, Clone)]
pub struct CompiledProcess {
    /// The source definition (kept for API compatibility, FDL
    /// re-emission and diagnostics; the navigator never reads it).
    pub def: Arc<ProcessDefinition>,
    /// The compiled root scope.
    pub root: Arc<CompiledScope>,
    /// The flattened arena layout (global slots, precomputed paths,
    /// execution ranks) the slab-backed instance state runs on.
    pub layout: Arc<ScopeLayout>,
    /// Content hash of the definition — the template's version
    /// identity. See [`spec_hash_of`].
    pub spec_hash: u64,
}

/// Content hash of a process definition: FNV-1a 64 over the canonical
/// JSON serialization of the *validated definition*, not its source
/// text. Two spec files that parse to the same definition (whitespace,
/// comments, declaration formatting) share a version; any semantic
/// edit — an activity, an edge, a condition constant — produces a new
/// one. Deterministic because every serialized model type keeps its
/// collections ordered (`Vec` / `BTreeMap`), and stable across
/// compile/optimize/recovery because all of them hash the same
/// definition.
pub fn spec_hash_of(def: &ProcessDefinition) -> u64 {
    let canon = serde_json::to_string(def).expect("ProcessDefinition is always serializable");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in canon.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl CompiledProcess {
    /// Compiles `def`. Deterministic: ids are declaration positions.
    pub fn compile(def: ProcessDefinition) -> Self {
        Self::compile_arc(Arc::new(def))
    }

    /// Compiles a definition already behind an `Arc`.
    pub fn compile_arc(def: Arc<ProcessDefinition>) -> Self {
        let root = Arc::new(CompiledScope::compile(&def));
        Self::from_parts(def, root)
    }

    /// Assembles a template from an already-compiled root scope,
    /// computing the [`ScopeLayout`] — the one constructor every
    /// template passes through.
    pub fn from_parts(def: Arc<ProcessDefinition>, root: Arc<CompiledScope>) -> Self {
        let layout = Arc::new(ScopeLayout::build(&root));
        let spec_hash = spec_hash_of(&def);
        Self {
            def,
            root,
            layout,
            spec_hash,
        }
    }

    /// The process name.
    pub fn name(&self) -> &str {
        &self.def.name
    }

    /// The version identity as journals and APIs render it: the spec
    /// content hash in fixed-width hex.
    pub fn version(&self) -> String {
        format!("{:016x}", self.spec_hash)
    }

    /// Resolves a name path (block names, then an activity name) into
    /// an [`IdPath`].
    pub fn resolve_path(&self, segs: &[String]) -> Option<IdPath> {
        let mut scope: &CompiledScope = &self.root;
        let mut ids = Vec::with_capacity(segs.len());
        for (i, seg) in segs.iter().enumerate() {
            let id = scope.id(seg)?;
            ids.push(id);
            if i + 1 < segs.len() {
                scope = scope.child_scope(id)?;
            }
        }
        Some(ids)
    }

    /// Renders an [`IdPath`] back to the slash-separated journal form.
    pub fn path_string(&self, ids: &[ActId]) -> String {
        let mut out = String::new();
        let mut scope: &CompiledScope = &self.root;
        for (i, &id) in ids.iter().enumerate() {
            if i > 0 {
                out.push('/');
            }
            out.push_str(&scope.act(id).name);
            if i + 1 < ids.len() {
                scope = scope.child_scope(id).expect("prefix ids name blocks");
            }
        }
        out
    }

    /// The compiled scope addressed by a (possibly empty) prefix of
    /// block ids.
    pub fn scope_at(&self, scope_ids: &[ActId]) -> Option<&Arc<CompiledScope>> {
        let mut scope = &self.root;
        for &id in scope_ids {
            scope = scope.child_scope(id)?;
        }
        Some(scope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_model::ProcessBuilder;

    fn nested() -> ProcessDefinition {
        let inner = ProcessBuilder::new("inner")
            .program("X", "px")
            .program("Y", "py")
            .connect_when("X", "Y", "RC = 1")
            .build()
            .unwrap();
        ProcessBuilder::new("outer")
            .program("A", "pa")
            .block("B", inner)
            .connect_when("A", "B", "RC = 1")
            .build()
            .unwrap()
    }

    #[test]
    fn ids_are_declaration_positions() {
        let t = CompiledProcess::compile(nested());
        assert_eq!(t.root.id("A"), Some(0));
        assert_eq!(t.root.id("B"), Some(1));
        assert_eq!(t.root.starts, vec![0]);
        let b = t.root.child_scope(1).unwrap();
        assert_eq!(b.id("X"), Some(0));
        assert_eq!(b.id("Y"), Some(1));
        assert_eq!(b.edges.len(), 1);
        assert_eq!(b.edges[0].from, 0);
        assert_eq!(b.edges[0].to, 1);
    }

    #[test]
    fn adjacency_matches_declaration() {
        let t = CompiledProcess::compile(nested());
        assert_eq!(t.root.act(0).outgoing, vec![0]);
        assert_eq!(t.root.act(1).incoming, vec![0]);
        assert_eq!(t.root.edge_id("A", "B"), Some(0));
        assert_eq!(t.root.edge_id("B", "A"), None);
    }

    #[test]
    fn path_round_trip() {
        let t = CompiledProcess::compile(nested());
        let segs = vec!["B".to_owned(), "X".to_owned()];
        let ids = t.resolve_path(&segs).unwrap();
        assert_eq!(ids, vec![1, 0]);
        assert_eq!(t.path_string(&ids), "B/X");
        assert!(t.resolve_path(&["Ghost".to_owned()]).is_none());
        assert!(t.resolve_path(&["A".to_owned(), "X".to_owned()]).is_none());
    }

    #[test]
    fn constant_conditions_fold() {
        let e = Expr::parse("1 = 1").unwrap();
        assert!(matches!(CondPlan::transition(&e), CondPlan::AlwaysTrue));
        let f = Expr::parse("1 = 2").unwrap();
        assert!(matches!(CondPlan::transition(&f), CondPlan::AlwaysFalse));
        // Guaranteed evaluation error: transition false, exit true.
        let err = Expr::parse("1 / 0 = 1").unwrap();
        assert!(matches!(CondPlan::transition(&err), CondPlan::AlwaysFalse));
        assert!(matches!(CondPlan::exit(&Some(err)), CondPlan::AlwaysTrue));
        let dynamic = Expr::parse("RC = 1").unwrap();
        assert!(matches!(
            CondPlan::transition(&dynamic),
            CondPlan::Dynamic(_)
        ));
        assert!(matches!(CondPlan::exit(&None), CondPlan::AlwaysTrue));
    }

    #[test]
    fn effective_output_includes_rc() {
        let t = CompiledProcess::compile(nested());
        assert!(t.root.act(0).eff_output.has(wfms_model::RC_MEMBER));
    }

    #[test]
    fn layout_flattens_scopes_in_preorder() {
        let t = CompiledProcess::compile(nested());
        let l = &t.layout;
        assert_eq!(l.n_scopes(), 2);
        assert_eq!(l.n_acts(), 4, "A, B, B/X, B/Y");
        assert_eq!(l.n_edges(), 2);
        // Root scope: acts 0..2, child scope opens at slot 1.
        assert_eq!(l.scope(0).act_base, 0);
        assert_eq!(l.scope(0).subtree_last, 1);
        assert_eq!(l.block_child[1], Some(1));
        assert_eq!(l.scope(1).parent, Some((0, 1)));
        assert_eq!(l.scope(1).act_base, 2);
        assert_eq!(&*l.scope(1).path, "B");
        // Interned paths and id paths line up with resolution.
        assert_eq!(&*l.paths[2], "B/X");
        assert_eq!(l.id_paths[3], vec![1, 1]);
        assert_eq!(l.slot_of(&[1, 0]), Some(2));
        assert_eq!(l.scope_of(&[1]), Some(1));
        assert_eq!(l.scope_of(&[0]), None, "A is not a block");
        assert_eq!(l.slot_of(&[9]), None);
    }

    #[test]
    fn layout_ranks_match_lexicographic_id_path_order() {
        let t = CompiledProcess::compile(nested());
        let l = &t.layout;
        // Expected DFS order: A [0], B [1], B/X [1,0], B/Y [1,1].
        let order: Vec<&str> = (0..l.n_acts())
            .map(|r| &*l.paths[l.rank_to_slot[r] as usize])
            .collect();
        assert_eq!(order, vec!["A", "B", "B/X", "B/Y"]);
        for slot in 0..l.n_acts() {
            assert_eq!(l.rank_to_slot[l.rank[slot] as usize] as usize, slot);
        }
    }

    #[test]
    fn layout_prototypes_carry_defaults_and_rc() {
        let t = CompiledProcess::compile(nested());
        let l = &t.layout;
        for slot in 0..l.n_acts() {
            let proto = &l.output_rc1[slot];
            assert_eq!(
                proto.get(RC_MEMBER),
                Some(&Value::Int(1)),
                "rc-1 prototype at slot {slot}"
            );
            let mut rebuilt = l.act(slot as u32).eff_output.instantiate();
            rebuilt.set(RC_MEMBER, Value::Int(1));
            assert_eq!(proto, &rebuilt);
        }
    }

    #[test]
    fn manual_and_deadline_flags() {
        let auto = CompiledProcess::compile(nested());
        assert!(!auto.root.any_manual);
        assert!(!auto.root.any_deadlines);
        assert!(auto.root.deadline_acts.is_empty());

        let m = wfms_model::Activity::program("M", "pm")
            .for_role("clerk")
            .with_deadline(5);
        let def = ProcessBuilder::new("p").activity(m).build().unwrap();
        let t = CompiledProcess::compile(def);
        assert!(t.root.any_manual);
        assert!(t.root.any_deadlines);
        assert_eq!(t.root.deadline_acts, vec![0]);
    }
}
